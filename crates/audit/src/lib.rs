#![warn(missing_docs)]

//! Incident forensics for the SGXBounds reproduction stack.
//!
//! When a bounds check fires (or should have fired), the interesting
//! question is never just *that* it fired — it is *which object* the
//! pointer escaped, *how* the pointer was derived, *what lives next door*
//! in the heap, and *what the recovery policy did about it*. The rest of
//! the stack already computes most of those answers (the allocator emits
//! alloc/free events, `analyze::prov` classifies every access, the span
//! stream names the enclosing campaign/request, the shrinker produces a
//! minimal repro); this crate joins them into one deterministic record.
//!
//! Three pieces:
//!
//! 1. [`ObjectLedger`] — an append-only ledger of every heap object the
//!    recorder saw: birth timestamp, base, size (so LB = base and
//!    UB = base + size, exactly the bounds the tagged-pointer checks
//!    enforce), and free timestamp. From the ledger, a *heap
//!    neighborhood*: the K objects nearest a faulting address.
//! 2. [`LedgerRecorder`] — a [`Recorder`] that composes the standard
//!    [`TraceRecorder`] (digest, counters, bounded ring) with the ledger,
//!    a snapshot of the first check failure (including the open span path
//!    at that instant), and the recovery-policy trail.
//! 3. [`Incident`] — the assembled report. Serializes to the
//!    `sgxs-incident-v1` schema (validated by
//!    `sgxs_obs::read::parse_incident`) and renders as a human-readable
//!    ASCII block. Both forms are pure functions of simulated state, so
//!    they are byte-identical across execution tiers and reruns.
//!
//! Determinism rules: no wall-clock, no host pointers, no hash-map
//! iteration — every collection is ordered by birth id or event index,
//! and the incident id is an FNV-1a digest of the serialized document
//! itself (computed with the `id` field blanked, so a reader can
//! recompute and verify it).

mod incident;
mod ledger;

pub use incident::{FaultInfo, Incident, IncidentMeta, Neighbor, Relation, ReproInfo, TruthInfo};
pub use ledger::{FaultRecord, LedgerRecorder, ObjectLedger, ObjectRecord, RecoveryTrail};

// Re-exported so downstream forensic runners name the recorder trait
// without a separate obs import.
pub use sgxs_obs::{Recorder, TraceRecorder};

/// Default heap-neighborhood size: the faulting object (when the address
/// resolves to one) plus its nearest neighbors on either side.
pub const NEIGHBOR_K: usize = 5;

/// Default bounded-window size for the incident trace tail — the same
/// 32-event window the differential fuzzer historically rendered.
pub const DEFAULT_TRACE_WINDOW: usize = 32;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x100_0000_01b3;

pub(crate) fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}
