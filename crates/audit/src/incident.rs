//! The assembled incident report: `sgxs-incident-v1` serialization and
//! the ASCII rendering every surfacing path shares.

use crate::ledger::{FaultRecord, LedgerRecorder, ObjectRecord, RecoveryTrail};
use crate::{fnv, FNV_OFFSET, NEIGHBOR_K};
use sgxs_obs::json::Json;

/// A neighbor object's position relative to the faulting address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// The address falls inside the object.
    Contains,
    /// The object lies entirely below the address.
    Before,
    /// The object lies entirely above the address.
    After,
}

impl Relation {
    /// Stable label used in the serialized document.
    pub fn label(&self) -> &'static str {
        match self {
            Relation::Contains => "contains",
            Relation::Before => "before",
            Relation::After => "after",
        }
    }
}

/// One entry of the heap-neighborhood map.
#[derive(Debug, Clone)]
pub struct Neighbor {
    /// The object itself, from the provenance ledger.
    pub object: ObjectRecord,
    /// Where the object sits relative to the faulting address.
    pub relation: Relation,
    /// Byte distance from the faulting address (0 iff `Contains`).
    pub distance: u64,
}

/// The faulting access, decoded from the check-failure event.
#[derive(Debug, Clone, Copy)]
pub struct FaultInfo {
    /// Instruction timestamp (0 for post-run discoveries, e.g. a canary
    /// corruption found after the serve loop finished).
    pub at: u64,
    /// Absolute event index in the forensic run's stream.
    pub index: u64,
    /// Check-site ID, when attributable.
    pub site: Option<u32>,
    /// Raw address as the handler saw it (tagged under sgxbounds).
    pub raw_addr: u64,
    /// Decoded pointer: the low 32 bits of `raw_addr` (SGXBounds packs
    /// the pointer there; untagged schemes use the value as-is).
    pub ptr: u64,
    /// Decoded upper-bound tag: the high 32 bits (nonzero only for
    /// tagged-pointer schemes).
    pub tag_ub: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Whether the access was a store.
    pub is_store: bool,
}

impl FaultInfo {
    /// Decodes a captured [`FaultRecord`] (splitting the tagged address).
    pub fn from_record(r: &FaultRecord) -> FaultInfo {
        FaultInfo {
            at: r.at,
            index: r.index,
            site: r.site,
            raw_addr: r.addr,
            ptr: r.addr & 0xffff_ffff,
            tag_ub: r.addr >> 32,
            size: r.size,
            is_store: r.is_store,
        }
    }

    /// A synthetic fault for violations discovered *after* the run (no
    /// check fired): `addr` is the first corrupted byte, `size` the
    /// corrupted byte count. Timestamp and index are 0 by convention.
    pub fn post_run(addr: u64, size: u32) -> FaultInfo {
        FaultInfo {
            at: 0,
            index: 0,
            site: None,
            raw_addr: addr,
            ptr: addr & 0xffff_ffff,
            tag_ub: addr >> 32,
            size,
            is_store: true,
        }
    }

    /// `load` / `store` label.
    pub fn kind(&self) -> &'static str {
        if self.is_store {
            "store"
        } else {
            "load"
        }
    }
}

/// The injected fault's ground truth, when the incident came from the
/// differential fuzzer (which knows exactly which op it planted).
#[derive(Debug, Clone)]
pub struct TruthInfo {
    /// Injected fault-kind label (e.g. `oob-store`, `heap-underflow`).
    pub kind: String,
    /// Debug rendering of the injected victim op.
    pub op: String,
    /// Index of the victim op in the program's op list.
    pub op_index: u64,
}

/// The ddmin-shrunk minimal reproducer, when the shrinker ran.
#[derive(Debug, Clone)]
pub struct ReproInfo {
    /// Instructions the shrunk program executes.
    pub insts: u64,
    /// Debug renderings of the surviving ops, in order.
    pub ops: Vec<String>,
}

/// Identity of an incident: who detected what, where.
#[derive(Debug, Clone)]
pub struct IncidentMeta {
    /// Producing surface: `fuzz`, `chaos`, `lint`, or `audit`.
    pub origin: String,
    /// Workload label (fuzz seed, server app, demo name).
    pub workload: String,
    /// Scheme label (or `scheme/policy` combo for chaos).
    pub scheme: String,
    /// Execution-tier pinning claim. Production surfaces write `pinned`:
    /// the forensic payload derives entirely from simulated instruction
    /// counts, so the artifact is asserted (and CI-verified by byte-diffing
    /// reference vs compiled outputs) to be byte-identical across tiers.
    /// Ad-hoc single-tier runs may record a tier label instead.
    pub tier: String,
    /// Oracle verdict or gate outcome that triggered the incident.
    pub verdict: String,
}

/// A fully assembled memory-safety incident.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Who detected what, where.
    pub meta: IncidentMeta,
    /// The faulting access; `None` for near-misses (e.g. a `missed`
    /// verdict where ground truth says a violation happened but the
    /// scheme never trapped).
    pub fault: Option<FaultInfo>,
    /// Injected ground truth, when known.
    pub truth: Option<TruthInfo>,
    /// Open spans at fault time, outermost first, as `(name, arg)`.
    pub span_path: Vec<(String, u64)>,
    /// Recovery-policy trail of the forensic run.
    pub recovery: RecoveryTrail,
    /// Total objects the ledger observed.
    pub objects_total: u64,
    /// Objects still live at end of run.
    pub objects_live: u64,
    /// The K objects nearest the faulting address (empty without a fault
    /// address to anchor on).
    pub neighborhood: Vec<Neighbor>,
    /// Pointer-derivation chain from `analyze::prov`, one line per fact.
    pub derivation: Vec<String>,
    /// Ring window the trace tail was captured with.
    pub trace_window: u64,
    /// Total events the forensic run recorded.
    pub trace_total: u64,
    /// Trace tail: `(absolute_index, rendered_line)`, oldest first.
    pub trace: Vec<(u64, String)>,
    /// Shrunk minimal reproducer, when available.
    pub repro: Option<ReproInfo>,
    /// FNV digest of the forensic run's full event stream.
    pub digest: u64,
}

impl Incident {
    /// Assembles an incident from a finished forensic recorder, using the
    /// first captured check failure as the fault (if any fired).
    pub fn assemble(meta: IncidentMeta, rec: &LedgerRecorder, window: usize) -> Incident {
        let fault = rec.fault().map(FaultInfo::from_record);
        Incident::assemble_with(meta, fault, rec, window)
    }

    /// Assembles an incident around an explicit fault — used when the
    /// violation was discovered outside the check path (canary
    /// corruption) or did not fire at all (near-miss).
    pub fn assemble_with(
        meta: IncidentMeta,
        fault: Option<FaultInfo>,
        rec: &LedgerRecorder,
        window: usize,
    ) -> Incident {
        let span_path = rec
            .fault()
            .map(|f| f.span_path.as_slice())
            .unwrap_or_else(|| rec.open_spans())
            .iter()
            .map(|(n, a)| ((*n).to_owned(), *a))
            .collect();
        let neighborhood = match &fault {
            Some(f) => rec
                .ledger()
                .neighborhood(f.ptr, NEIGHBOR_K)
                .into_iter()
                .map(|object| {
                    let relation = if object.contains(f.ptr) {
                        Relation::Contains
                    } else if f.ptr >= object.ub() {
                        Relation::Before
                    } else {
                        Relation::After
                    };
                    Neighbor {
                        distance: object.distance(f.ptr),
                        object,
                        relation,
                    }
                })
                .collect(),
            None => Vec::new(),
        };
        Incident {
            meta,
            fault,
            truth: None,
            span_path,
            recovery: rec.recovery(),
            objects_total: rec.ledger().objects().len() as u64,
            objects_live: rec.ledger().live_count(),
            neighborhood,
            derivation: Vec::new(),
            trace_window: window as u64,
            trace_total: rec.trace().events(),
            trace: rec.trace().last_events_indexed(window),
            repro: None,
            digest: rec.trace().digest(),
        }
    }

    /// The content-derived incident id: 16 hex digits of an FNV-1a hash
    /// over the compact serialization with the `id` field blanked. The
    /// reader recomputes it the same way, so any mutation invalidates.
    pub fn id(&self) -> String {
        let blank = self.doc_with_id("");
        format!("{:016x}", fnv(FNV_OFFSET, blank.to_compact().as_bytes()))
    }

    /// Serializes to the `sgxs-incident-v1` document.
    pub fn to_json(&self) -> Json {
        self.doc_with_id(&self.id())
    }

    fn doc_with_id(&self, id: &str) -> Json {
        let fault = match &self.fault {
            None => Json::Null,
            Some(f) => Json::obj(vec![
                ("at", f.at.into()),
                ("index", f.index.into()),
                ("site", f.site.map(Json::from).unwrap_or(Json::Null)),
                ("raw_addr", f.raw_addr.into()),
                ("ptr", f.ptr.into()),
                ("tag_ub", f.tag_ub.into()),
                ("size", f.size.into()),
                ("kind", f.kind().into()),
            ]),
        };
        let truth = match &self.truth {
            None => Json::Null,
            Some(t) => Json::obj(vec![
                ("kind", t.kind.clone().into()),
                ("op", t.op.clone().into()),
                ("op_index", t.op_index.into()),
            ]),
        };
        let repro = match &self.repro {
            None => Json::Null,
            Some(r) => Json::obj(vec![
                ("insts", r.insts.into()),
                (
                    "ops",
                    Json::Arr(r.ops.iter().map(|o| o.clone().into()).collect()),
                ),
            ]),
        };
        Json::obj(vec![
            ("schema", "sgxs-incident-v1".into()),
            ("id", id.into()),
            ("origin", self.meta.origin.clone().into()),
            ("workload", self.meta.workload.clone().into()),
            ("scheme", self.meta.scheme.clone().into()),
            ("tier", self.meta.tier.clone().into()),
            ("verdict", self.meta.verdict.clone().into()),
            ("fault", fault),
            ("truth", truth),
            (
                "span_path",
                Json::Arr(
                    self.span_path
                        .iter()
                        .map(|(n, a)| {
                            Json::obj(vec![("name", n.clone().into()), ("arg", (*a).into())])
                        })
                        .collect(),
                ),
            ),
            (
                "recovery",
                Json::obj(vec![
                    ("attempts", self.recovery.attempts.into()),
                    ("degraded", self.recovery.degraded.into()),
                    ("gave_up", self.recovery.gave_up.into()),
                    ("decision", self.recovery.decision().into()),
                ]),
            ),
            (
                "heap",
                Json::obj(vec![
                    ("objects_total", self.objects_total.into()),
                    ("objects_live", self.objects_live.into()),
                    (
                        "neighborhood",
                        Json::Arr(
                            self.neighborhood
                                .iter()
                                .map(|n| {
                                    Json::obj(vec![
                                        ("id", n.object.id.into()),
                                        ("base", n.object.lb().into()),
                                        ("size", n.object.size.into()),
                                        ("ub", n.object.ub().into()),
                                        ("birth_at", n.object.birth_at.into()),
                                        (
                                            "free_at",
                                            n.object.free_at.map(Json::from).unwrap_or(Json::Null),
                                        ),
                                        ("relation", n.relation.label().into()),
                                        ("distance", n.distance.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "derivation",
                Json::Arr(self.derivation.iter().map(|d| d.clone().into()).collect()),
            ),
            (
                "trace",
                Json::obj(vec![
                    ("window", self.trace_window.into()),
                    ("total", self.trace_total.into()),
                    (
                        "events",
                        Json::Arr(
                            self.trace
                                .iter()
                                .map(|(i, line)| {
                                    Json::obj(vec![
                                        ("index", (*i).into()),
                                        ("line", line.clone().into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("repro", repro),
            ("digest", format!("{:016x}", self.digest).into()),
        ])
    }

    /// Human-readable ASCII report — the single rendering every surface
    /// (fuzz disagreements, `repro audit`, the example) shares.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let m = &self.meta;
        out.push_str(&format!("== incident {} ==\n", self.id()));
        out.push_str(&format!(
            "origin={} workload={} scheme={} tier={} verdict={}\n",
            m.origin, m.workload, m.scheme, m.tier, m.verdict
        ));
        match &self.fault {
            Some(f) => {
                let site = f.site.map(|s| s.to_string()).unwrap_or_else(|| "?".into());
                out.push_str(&format!(
                    "fault: [ins {}] event #{} {} size={} ptr={:#x} tag_ub={:#x} site={}\n",
                    f.at,
                    f.index,
                    f.kind(),
                    f.size,
                    f.ptr,
                    f.tag_ub,
                    site
                ));
            }
            None => out.push_str("fault: none captured (near-miss: no check fired)\n"),
        }
        if let Some(t) = &self.truth {
            out.push_str(&format!(
                "truth: injected {} at op {}: {}\n",
                t.kind, t.op_index, t.op
            ));
        }
        if !self.span_path.is_empty() {
            let path: Vec<String> = self
                .span_path
                .iter()
                .map(|(n, a)| format!("{n}({a})"))
                .collect();
            out.push_str(&format!("spans: {}\n", path.join(" > ")));
        }
        out.push_str(&format!(
            "recovery: decision={} attempts={} degraded={} gave_up={}\n",
            self.recovery.decision(),
            self.recovery.attempts,
            self.recovery.degraded,
            self.recovery.gave_up
        ));
        out.push_str(&format!(
            "heap: {} live / {} total objects\n",
            self.objects_live, self.objects_total
        ));
        if let Some(f) = &self.fault {
            if !self.neighborhood.is_empty() {
                out.push_str(&format!("neighborhood of {:#x}:\n", f.ptr));
            }
            for n in &self.neighborhood {
                let o = &n.object;
                let life = match o.free_at {
                    Some(fr) => format!("freed@ins{fr}"),
                    None => "live".into(),
                };
                let rel = match n.relation {
                    Relation::Contains => format!("contains (offset {})", f.ptr - o.lb()),
                    Relation::Before => format!("before (distance {})", n.distance),
                    Relation::After => format!("after (distance {})", n.distance),
                };
                out.push_str(&format!(
                    "  obj #{} [{:#x}..{:#x}) size={} born@ins{} {} <- {}\n",
                    o.id,
                    o.lb(),
                    o.ub(),
                    o.size,
                    o.birth_at,
                    life,
                    rel
                ));
            }
        }
        if !self.derivation.is_empty() {
            out.push_str("derivation:\n");
            for d in &self.derivation {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out.push_str(&format!(
            "trace: last {} of {} events (window {}):\n",
            self.trace.len(),
            self.trace_total,
            self.trace_window
        ));
        for (i, line) in &self.trace {
            out.push_str(&format!("  #{i} {line}\n"));
        }
        if let Some(r) = &self.repro {
            out.push_str(&format!("repro: {} ops, {} insts:\n", r.ops.len(), r.insts));
            for (i, op) in r.ops.iter().enumerate() {
                out.push_str(&format!("  op{i}: {op}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_obs::{Event, Recorder};

    fn forensic_recorder() -> LedgerRecorder {
        let mut r = LedgerRecorder::new(4);
        r.record(
            1,
            Event::Alloc {
                addr: 0x100,
                size: 16,
            },
        );
        r.record(
            2,
            Event::Alloc {
                addr: 0x140,
                size: 32,
            },
        );
        r.record(
            3,
            Event::SpanBegin {
                name: "request",
                arg: 9,
            },
        );
        r.record(
            4,
            Event::CheckFail {
                site: Some(2),
                // Tagged pointer: ptr 0x110 (one past object 0), ub tag 0x110.
                addr: (0x110u64 << 32) | 0x110,
                size: 8,
                is_store: true,
            },
        );
        r.record(5, Event::SpanEnd { name: "request" });
        r
    }

    fn meta() -> IncidentMeta {
        IncidentMeta {
            origin: "fuzz".into(),
            workload: "seed-1".into(),
            scheme: "sgxbounds".into(),
            tier: "reference".into(),
            verdict: "detected".into(),
        }
    }

    #[test]
    fn assemble_decodes_tag_and_builds_neighborhood() {
        let rec = forensic_recorder();
        let inc = Incident::assemble(meta(), &rec, 32);
        let f = inc.fault.as_ref().expect("fault captured");
        assert_eq!(f.ptr, 0x110);
        assert_eq!(f.tag_ub, 0x110);
        assert_eq!(inc.span_path, vec![("request".to_owned(), 9)]);
        assert_eq!(inc.objects_total, 2);
        assert_eq!(inc.neighborhood[0].object.id, 0);
        assert_eq!(inc.neighborhood[0].relation, Relation::Before);
        assert_eq!(inc.neighborhood[0].distance, 1);
    }

    #[test]
    fn id_is_content_derived_and_stable() {
        let rec = forensic_recorder();
        let a = Incident::assemble(meta(), &rec, 32);
        let mut b = Incident::assemble(meta(), &rec, 32);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        b.derivation.push("b0 i0 load".into());
        assert_ne!(a.id(), b.id(), "content change moves the id");
    }

    #[test]
    fn trace_tail_carries_absolute_indices() {
        let mut rec = LedgerRecorder::new(2); // tiny ring: early events age out
        for i in 0..6u64 {
            rec.record(
                i,
                Event::Alloc {
                    addr: 0x100 + (i as u32) * 0x40,
                    size: 8,
                },
            );
        }
        let inc = Incident::assemble_with(meta(), Some(FaultInfo::post_run(0x100, 1)), &rec, 2);
        let idx: Vec<u64> = inc.trace.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![4, 5], "ring tail keeps absolute indices");
        assert_eq!(inc.trace_total, 6);
    }

    #[test]
    fn render_names_truth_and_neighbors() {
        let rec = forensic_recorder();
        let mut inc = Incident::assemble(meta(), &rec, 32);
        inc.truth = Some(TruthInfo {
            kind: "oob-store".into(),
            op: "OobStore { obj: Heap(0), slot_off: 2 }".into(),
            op_index: 3,
        });
        let text = inc.render();
        assert!(text.contains("injected oob-store at op 3"));
        assert!(text.contains("OobStore"));
        assert!(text.contains("obj #0"));
        assert!(text.contains("before (distance 1)"));
        assert!(text.contains("spans: request(9)"));
    }
}
