//! The object provenance ledger and the recorder that feeds it.

use sgxs_obs::{Event, Recorder, TraceRecorder};

/// One heap object's lifetime, as observed from alloc/free events.
///
/// `base` is the user base address the allocator handed out — the same
/// LB the SGXBounds tagged pointer carries — and `base + size` is the UB
/// the checks enforce, so the ledger reconstructs exactly the bounds
/// metadata without reading any scheme-private state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Birth-order id (dense, 0-based; the Nth allocation has id N).
    pub id: u32,
    /// User base address (the object's lower bound).
    pub base: u32,
    /// User size in bytes (upper bound = `base + size`).
    pub size: u32,
    /// Instruction timestamp of the allocation.
    pub birth_at: u64,
    /// Instruction timestamp of the free, if the object died.
    pub free_at: Option<u64>,
}

impl ObjectRecord {
    /// Lower bound (inclusive).
    pub fn lb(&self) -> u64 {
        self.base as u64
    }

    /// Upper bound (exclusive).
    pub fn ub(&self) -> u64 {
        self.base as u64 + self.size as u64
    }

    /// Whether the object was still live when observation ended.
    pub fn live(&self) -> bool {
        self.free_at.is_none()
    }

    /// Whether `addr` falls inside `[lb, ub)`.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.lb() && addr < self.ub()
    }

    /// Byte distance from `addr` to this object: 0 when contained,
    /// otherwise the gap to the nearest edge (1 for the byte just past
    /// the upper bound — the classic off-by-one overflow).
    pub fn distance(&self, addr: u64) -> u64 {
        if addr < self.lb() {
            self.lb() - addr
        } else if addr >= self.ub() {
            addr - self.ub() + 1
        } else {
            0
        }
    }
}

/// Append-only ledger of every heap object the recorder observed,
/// in birth order.
#[derive(Debug, Clone, Default)]
pub struct ObjectLedger {
    objects: Vec<ObjectRecord>,
    live: u64,
}

impl ObjectLedger {
    /// Feeds one event into the ledger; events other than alloc/free are
    /// ignored.
    pub fn observe(&mut self, now: u64, ev: &Event) {
        match ev {
            Event::Alloc { addr, size } => {
                let id = self.objects.len() as u32;
                self.objects.push(ObjectRecord {
                    id,
                    base: *addr,
                    size: *size,
                    birth_at: now,
                    free_at: None,
                });
                self.live += 1;
            }
            Event::Free { addr } => {
                // The most recent live object at this base: address reuse
                // after free creates a fresh record, so only the latest
                // can be the one dying.
                if let Some(o) = self
                    .objects
                    .iter_mut()
                    .rev()
                    .find(|o| o.base == *addr && o.free_at.is_none())
                {
                    o.free_at = Some(now);
                    self.live -= 1;
                }
            }
            _ => {}
        }
    }

    /// Every object observed, in birth order.
    pub fn objects(&self) -> &[ObjectRecord] {
        &self.objects
    }

    /// Objects still live when observation ended.
    pub fn live_count(&self) -> u64 {
        self.live
    }

    /// The `k` objects nearest `addr` by byte distance (an object
    /// containing `addr` has distance 0), ties broken by birth id —
    /// fully deterministic.
    pub fn neighborhood(&self, addr: u64, k: usize) -> Vec<ObjectRecord> {
        let mut v = self.objects.clone();
        v.sort_by_key(|o| (o.distance(addr), o.id));
        v.truncate(k);
        v
    }
}

/// Snapshot of the first check failure the recorder saw, taken at the
/// instant the violation handler emitted it.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Instruction timestamp of the failure.
    pub at: u64,
    /// Absolute index of the event in the full stream (0-based).
    pub index: u64,
    /// Check-site ID, when the failing access is attributable.
    pub site: Option<u32>,
    /// Raw address as the violation handler saw it. Under sgxbounds this
    /// is the *tagged* value: low 32 bits are the pointer, high 32 bits
    /// the upper bound.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// Whether the access was a store.
    pub is_store: bool,
    /// Open spans at fault time, outermost first, as `(name, arg)`.
    pub span_path: Vec<(&'static str, u64)>,
}

/// Running counts of recovery-policy events, from which the policy
/// decision is reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTrail {
    /// `recovery.attempt` events (retries issued).
    pub attempts: u64,
    /// `recovery.degraded` events (trap converted to degraded service).
    pub degraded: u64,
    /// `recovery.gave_up` events (retry budget exhausted).
    pub gave_up: u64,
}

impl RecoveryTrail {
    /// Label of the policy decision the counts imply: `gave-up` >
    /// `degraded` > `retried` > `trapped` (no recovery ran at all).
    pub fn decision(&self) -> &'static str {
        if self.gave_up > 0 {
            "gave-up"
        } else if self.degraded > 0 {
            "degraded"
        } else if self.attempts > 0 {
            "retried"
        } else {
            "trapped"
        }
    }
}

/// A [`Recorder`] that composes the standard [`TraceRecorder`] with the
/// provenance ledger, first-fault capture, span tracking, and the
/// recovery trail. Attach it exactly like a `TraceRecorder` — forensic
/// re-runs only, never on the measured path.
#[derive(Debug, Clone)]
pub struct LedgerRecorder {
    inner: TraceRecorder,
    ledger: ObjectLedger,
    spans: Vec<(&'static str, u64)>,
    fault: Option<FaultRecord>,
    recovery: RecoveryTrail,
}

impl LedgerRecorder {
    /// Creates a recorder whose inner trace ring keeps `ring_cap` events.
    pub fn new(ring_cap: usize) -> Self {
        LedgerRecorder {
            inner: TraceRecorder::new(ring_cap),
            ledger: ObjectLedger::default(),
            spans: Vec::new(),
            fault: None,
            recovery: RecoveryTrail::default(),
        }
    }

    /// The composed trace recorder (digest, counters, ring tail).
    pub fn trace(&self) -> &TraceRecorder {
        &self.inner
    }

    /// The object provenance ledger.
    pub fn ledger(&self) -> &ObjectLedger {
        &self.ledger
    }

    /// The first check failure observed, if any.
    pub fn fault(&self) -> Option<&FaultRecord> {
        self.fault.as_ref()
    }

    /// The recovery-policy trail.
    pub fn recovery(&self) -> RecoveryTrail {
        self.recovery
    }

    /// Spans currently open (outermost first).
    pub fn open_spans(&self) -> &[(&'static str, u64)] {
        &self.spans
    }
}

impl Recorder for LedgerRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, now: u64, ev: Event) {
        match &ev {
            Event::SpanBegin { name, arg } => self.spans.push((name, *arg)),
            Event::SpanEnd { name } => {
                // Innermost open span with this name, mirroring the
                // metrics collector's matching rule.
                if let Some(pos) = self.spans.iter().rposition(|(n, _)| n == name) {
                    self.spans.remove(pos);
                }
            }
            Event::CheckFail {
                site,
                addr,
                size,
                is_store,
            } if self.fault.is_none() => {
                self.fault = Some(FaultRecord {
                    at: now,
                    // `events()` counts events already recorded, so it is
                    // exactly this event's absolute index.
                    index: self.inner.events(),
                    site: *site,
                    addr: *addr,
                    size: *size,
                    is_store: *is_store,
                    span_path: self.spans.clone(),
                });
            }
            Event::RecoveryAttempt { .. } => self.recovery.attempts += 1,
            Event::RecoveryDegraded { .. } => self.recovery.degraded += 1,
            Event::RecoveryGaveUp { .. } => self.recovery.gave_up += 1,
            _ => {}
        }
        self.ledger.observe(now, &ev);
        self.inner.record(now, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(addr: u32, size: u32) -> Event {
        Event::Alloc { addr, size }
    }

    #[test]
    fn ledger_tracks_lifetimes_and_reuse() {
        let mut l = ObjectLedger::default();
        l.observe(10, &alloc(0x100, 32));
        l.observe(20, &alloc(0x200, 64));
        l.observe(30, &Event::Free { addr: 0x100 });
        l.observe(40, &alloc(0x100, 16)); // address reuse: fresh record
        assert_eq!(l.objects().len(), 3);
        assert_eq!(l.live_count(), 2);
        assert_eq!(l.objects()[0].free_at, Some(30));
        assert!(l.objects()[2].live());
        assert_eq!(l.objects()[2].size, 16);
    }

    #[test]
    fn distance_is_zero_inside_and_one_just_past_ub() {
        let o = ObjectRecord {
            id: 0,
            base: 0x100,
            size: 16,
            birth_at: 0,
            free_at: None,
        };
        assert_eq!(o.distance(0x100), 0);
        assert_eq!(o.distance(0x10f), 0);
        assert_eq!(o.distance(0x110), 1, "first OOB byte is distance 1");
        assert_eq!(o.distance(0xff), 1);
    }

    #[test]
    fn neighborhood_orders_by_distance_then_id() {
        let mut l = ObjectLedger::default();
        l.observe(1, &alloc(0x100, 16)); // id 0, ub 0x110
        l.observe(2, &alloc(0x120, 16)); // id 1
        l.observe(3, &alloc(0x400, 16)); // id 2, far away
        let n = l.neighborhood(0x110, 2); // first byte past object 0
        assert_eq!(n[0].id, 0, "overflowed object is nearest");
        assert_eq!(n[1].id, 1, "adjacent neighbor next");
    }

    #[test]
    fn recorder_captures_first_fault_with_span_path() {
        let mut r = LedgerRecorder::new(8);
        r.record(1, alloc(0x100, 16));
        r.record(
            2,
            Event::SpanBegin {
                name: "request",
                arg: 7,
            },
        );
        r.record(
            3,
            Event::CheckFail {
                site: Some(4),
                addr: 0x110,
                size: 8,
                is_store: true,
            },
        );
        r.record(
            4,
            Event::CheckFail {
                site: Some(9),
                addr: 0x200,
                size: 1,
                is_store: false,
            },
        );
        r.record(5, Event::SpanEnd { name: "request" });
        let f = r.fault().expect("fault captured");
        assert_eq!((f.at, f.index, f.site), (3, 2, Some(4)));
        assert_eq!(f.span_path, vec![("request", 7)]);
        assert!(r.open_spans().is_empty());
        assert_eq!(r.trace().events(), 5, "inner trace saw everything");
    }

    #[test]
    fn recovery_trail_decision_ladder() {
        let mut t = RecoveryTrail::default();
        assert_eq!(t.decision(), "trapped");
        t.attempts = 2;
        assert_eq!(t.decision(), "retried");
        t.degraded = 1;
        assert_eq!(t.decision(), "degraded");
        t.gave_up = 1;
        assert_eq!(t.decision(), "gave-up");
    }
}
