#![warn(missing_docs)]

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container builds with no crates.io access, so the workspace vendors
//! this minimal drop-in. It keeps the `proptest!` surface the tests are
//! written against — strategies, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `prop::collection::vec`, `any::<T>()` — with two
//! deliberate simplifications:
//!
//! - **Deterministic cases.** Each test derives its RNG seed from its own
//!   name, so runs are reproducible without a persisted failure file.
//! - **No shrinking.** On failure the harness prints the failing case's
//!   inputs (`Debug`) and the case index; minimization is left to the
//!   caller (the `sgxs-fuzz` crate has a real shrinker for the cases where
//!   it matters).

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use rand::prelude::*;

    /// The RNG driving case generation.
    pub type TestRng = SmallRng;

    /// Builds the deterministic per-test RNG: the seed is an FNV-1a hash
    /// of the test name, so every test gets a distinct but stable stream.
    pub fn new_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::prelude::*;
    use rand::SampleUniform;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

    /// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
    pub struct OneOf<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Wraps the given alternatives.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].sample(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::prelude::*;

    /// `Vec` of `len` in `sizes` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.sizes.start..self.sizes.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::prelude::*;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the full range of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Defines property tests. Supports the two parameter forms the workspace
/// uses: `name(x in strategy, ...)` and `name(x: Type, ...)`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    // `x in strategy` parameters.
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run(
                &$cfg,
                stringify!($name),
                |__rng| { ($($crate::strategy::Strategy::sample(&($strat), __rng),)+) },
                |($($arg,)+)| { $body ::std::ops::ControlFlow::Continue(()) },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    // `x: Type` parameters (sugar for `x in any::<Type>()`).
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident : $ty:ty),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run(
                &$cfg,
                stringify!($name),
                |__rng| { ($($crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), __rng),)+) },
                |($($arg,)+)| { $body ::std::ops::ControlFlow::Continue(()) },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Runs `cases` sampled inputs through `body`, reporting the failing case
/// before propagating its panic. Not part of the public API.
#[doc(hidden)]
pub fn __proptest_run<I: std::fmt::Debug>(
    cfg: &ProptestConfig,
    name: &str,
    mut sample: impl FnMut(&mut test_runner::TestRng) -> I,
    mut body: impl FnMut(I) -> std::ops::ControlFlow<()>,
) {
    let mut rng = test_runner::new_rng(name);
    for case in 0..cfg.cases {
        let input = sample(&mut rng);
        let desc = format!("{input:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(input)));
        match result {
            Ok(_) => {}
            Err(payload) => {
                eprintln!("proptest(shim): {name} failed at case {case}/{}", cfg.cases);
                eprintln!("proptest(shim): failing input: {desc}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..100, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn typed_params_cover_full_range(a: u32, b: u64) {
            // Smoke: values exist; no constraint to violate.
            let _ = (a, b);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        use super::strategy::Strategy;
        let s = prop_oneof![
            (0u32..1).prop_map(|_| 1usize),
            (0u32..1).prop_map(|_| 2usize),
            Just(3usize),
        ];
        let mut rng = super::test_runner::new_rng("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        use super::strategy::Strategy;
        let s = prop::collection::vec(0u64..1000, 3..10);
        let a: Vec<Vec<u64>> = {
            let mut rng = super::test_runner::new_rng("det");
            (0..5).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = super::test_runner::new_rng("det");
            (0..5).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
