#![warn(missing_docs)]

//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The container builds with no crates.io access, so the workspace vendors
//! this minimal drop-in: `criterion_group!`/`criterion_main!`, benchmark
//! groups, and a [`Bencher`] that times closures with `std::time::Instant`
//! and prints min/median/mean per benchmark. No statistical analysis, no
//! HTML reports — the bench binaries print the paper artifacts themselves.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup execution, untimed.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut s = b.samples.clone();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{id:<40} min {} median {} mean {} ({} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        s.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} µs", secs * 1e6)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut ran = 0u32;
        run_benchmark("t", 5, |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 1 warmup + 5 samples.
        assert_eq!(ran, 6);
    }

    #[test]
    fn group_macros_compile_and_run() {
        fn bench(c: &mut Criterion) {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        criterion_group!(benches, bench);
        benches();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(0.002).ends_with(" ms"));
        assert!(fmt_time(0.000002).ends_with(" µs"));
    }
}
