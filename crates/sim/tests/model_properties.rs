//! Property tests pitting the cache and EPC models against simple
//! reference implementations.

use proptest::prelude::*;
use sgxs_sim::cache::Cache;
use sgxs_sim::epc::Epc;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache agrees with an exact per-set LRU reference model.
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..1u64 << 16, 1..400)) {
        let size = 4096u32;
        let assoc = 4usize;
        let sets = (size as usize / 64) / assoc;
        let mut cache = Cache::new(size, assoc);
        // Reference: per-set MRU-ordered deque of line tags.
        let mut reference: Vec<VecDeque<u64>> = vec![VecDeque::new(); sets];
        for &a in &addrs {
            let line = a >> 6;
            let set = (line as usize) & (sets - 1);
            let model = &mut reference[set];
            let ref_hit = if let Some(pos) = model.iter().position(|&t| t == line) {
                model.remove(pos);
                model.push_front(line);
                true
            } else {
                model.push_front(line);
                model.truncate(assoc);
                false
            };
            let got = cache.access(a);
            prop_assert_eq!(got, ref_hit, "divergence at address {:#x}", a);
        }
    }

    /// EPC residency never exceeds capacity, and a page that was never
    /// touched is never resident.
    #[test]
    fn epc_capacity_invariant(pages in prop::collection::vec(0u32..64, 1..500), cap in 1usize..32) {
        let mut epc = Epc::new(cap);
        let mut touched = std::collections::HashSet::new();
        let mut faults = 0u64;
        for &p in &pages {
            let (fault, evicted) = epc.touch(p);
            touched.insert(p);
            if fault {
                faults += 1;
            }
            prop_assert!(epc.resident_count() <= cap);
            if evicted {
                prop_assert!(fault, "evictions only happen while faulting");
            }
            prop_assert!(epc.resident(p), "just-touched page must be resident");
        }
        prop_assert_eq!(epc.faults(), faults);
        for p in 64u32..80 {
            prop_assert!(!epc.resident(p), "untouched page resident");
        }
        // Faults at least the number of distinct pages (cold misses).
        prop_assert!(faults >= touched.len() as u64);
    }

    /// Within-capacity access sequences never evict.
    #[test]
    fn epc_no_eviction_within_capacity(pages in prop::collection::vec(0u32..16, 1..300)) {
        let mut epc = Epc::new(16);
        for &p in &pages {
            epc.touch(p);
        }
        prop_assert_eq!(epc.evictions(), 0);
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        prop_assert_eq!(epc.faults(), distinct.len() as u64);
    }
}
