#![warn(missing_docs)]

//! SGX machine model used as the execution substrate for the SGXBounds
//! reproduction.
//!
//! The paper's evaluation is dominated by two architectural effects of Intel
//! SGX (paper §2.1):
//!
//! 1. **Memory encryption (MEE):** every cache-line transfer between the CPU
//!    cache and the Enclave Page Cache is decrypted and integrity-checked,
//!    adding latency to LLC misses inside an enclave.
//! 2. **EPC paging:** the EPC is tiny (~94 MB usable in SGX1). Working sets
//!    larger than the EPC cause pages to be evicted (re-encrypted into
//!    untrusted RAM) and faulted back in, which costs orders of magnitude
//!    more than a regular memory access.
//!
//! This crate models both mechanistically: a sparse paged 32-bit address
//! space ([`mem::PagedMem`]), a set-associative cache hierarchy
//! ([`cache::Cache`]), an EPC residency tracker with CLOCK replacement
//! ([`epc::Epc`]), and a cycle cost model ([`cost::CostModel`]) that the
//! interpreter charges for every instruction and memory access. The
//! [`machine::Machine`] ties them together and exposes `load`/`store` with
//! cycle costs, so the relative overheads of SGXBounds, AddressSanitizer and
//! Intel MPX *emerge* from their memory behaviour instead of being scripted.
//!
//! Nothing in this crate knows about any particular protection scheme.

pub mod cache;
pub mod cost;
pub mod epc;
pub mod machine;
pub mod mem;
pub mod stats;

pub use cost::{CostModel, ExecTier, MachineConfig, Mode, Preset};
pub use machine::{Machine, MemFault, MemFaultKind};
pub use mem::{PagedMem, PAGE_SIZE};
pub use stats::Stats;

/// Re-export of the observability layer, so scheme runtimes and the harness
/// can name event and recorder types without a separate dependency edge.
pub use sgxs_obs as obs;
