//! Hardware event counters collected during a simulated run.
//!
//! These mirror the counters the paper reports in Table 3 and in the §6.2
//! discussion: retired instructions, branches, L1 accesses, LLC misses, and
//! EPC page faults.

/// Aggregate event counters for one simulated execution.
///
/// Counters are monotonically increasing; [`Stats::delta`] subtracts a
/// snapshot to obtain per-phase numbers (the harness uses this to exclude
/// input-generation from measured regions).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Retired IR instructions (all threads).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Data loads issued to the memory hierarchy.
    pub loads: u64,
    /// Data stores issued to the memory hierarchy.
    pub stores: u64,
    /// L1D accesses (loads + stores reaching the cache model).
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Last-level cache misses (these pay DRAM latency, plus MEE inside an
    /// enclave).
    pub llc_misses: u64,
    /// EPC page faults (page not resident in the EPC; enclave mode only).
    pub epc_faults: u64,
    /// EPC evictions performed to make room (each implies re-encryption).
    pub epc_evictions: u64,
    /// Cycles spent in the memory hierarchy (subset of total cycles).
    pub mem_cycles: u64,
}

impl Stats {
    /// Returns a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `self - earlier`, counter-wise.
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if `earlier` is not an earlier
    /// snapshot of the same run — i.e. if any counter would underflow.
    /// Plain `-` would only catch the reversed-arguments mistake in debug
    /// builds and silently wrap in release, poisoning measurements.
    pub fn delta(&self, earlier: &Stats) -> Stats {
        fn sub(now: u64, then: u64, counter: &'static str) -> u64 {
            now.checked_sub(then).unwrap_or_else(|| {
                panic!(
                    "Stats::delta: counter `{counter}` would underflow \
                     ({now} - {then}); snapshots passed in the wrong order?"
                )
            })
        }
        Stats {
            instructions: sub(self.instructions, earlier.instructions, "instructions"),
            branches: sub(self.branches, earlier.branches, "branches"),
            loads: sub(self.loads, earlier.loads, "loads"),
            stores: sub(self.stores, earlier.stores, "stores"),
            l1_accesses: sub(self.l1_accesses, earlier.l1_accesses, "l1_accesses"),
            l1_misses: sub(self.l1_misses, earlier.l1_misses, "l1_misses"),
            l2_misses: sub(self.l2_misses, earlier.l2_misses, "l2_misses"),
            llc_misses: sub(self.llc_misses, earlier.llc_misses, "llc_misses"),
            epc_faults: sub(self.epc_faults, earlier.epc_faults, "epc_faults"),
            epc_evictions: sub(self.epc_evictions, earlier.epc_evictions, "epc_evictions"),
            mem_cycles: sub(self.mem_cycles, earlier.mem_cycles, "mem_cycles"),
        }
    }

    /// LLC miss rate relative to L1 accesses, in percent.
    ///
    /// Returns 0.0 when no memory accesses were recorded.
    pub fn llc_miss_pct(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            100.0 * self.llc_misses as f64 / self.l1_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = Stats {
            instructions: 10,
            loads: 4,
            ..Stats::new()
        };
        let b = Stats {
            instructions: 25,
            loads: 9,
            ..Stats::new()
        };
        let d = b.delta(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.loads, 5);
        assert_eq!(d.stores, 0);
    }

    #[test]
    fn delta_wrong_order_panics_with_counter_name() {
        let early = Stats {
            instructions: 10,
            ..Stats::new()
        };
        let late = Stats {
            instructions: 25,
            ..Stats::new()
        };
        // Correct order works …
        assert_eq!(late.delta(&early).instructions, 15);
        // … reversed order must panic loudly instead of wrapping.
        let err = std::panic::catch_unwind(|| early.delta(&late)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String message");
        assert!(msg.contains("instructions"), "names the counter: {msg}");
        assert!(msg.contains("wrong order"), "explains the cause: {msg}");
    }

    #[test]
    fn llc_miss_pct_handles_zero() {
        assert_eq!(Stats::new().llc_miss_pct(), 0.0);
        let s = Stats {
            l1_accesses: 200,
            llc_misses: 10,
            ..Stats::new()
        };
        assert!((s.llc_miss_pct() - 5.0).abs() < 1e-12);
    }
}
