//! Hardware event counters collected during a simulated run.
//!
//! These mirror the counters the paper reports in Table 3 and in the §6.2
//! discussion: retired instructions, branches, L1 accesses, LLC misses, and
//! EPC page faults.

/// Aggregate event counters for one simulated execution.
///
/// Counters are monotonically increasing; [`Stats::delta`] subtracts a
/// snapshot to obtain per-phase numbers (the harness uses this to exclude
/// input-generation from measured regions).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Retired IR instructions (all threads).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Data loads issued to the memory hierarchy.
    pub loads: u64,
    /// Data stores issued to the memory hierarchy.
    pub stores: u64,
    /// L1D accesses (loads + stores reaching the cache model).
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Last-level cache misses (these pay DRAM latency, plus MEE inside an
    /// enclave).
    pub llc_misses: u64,
    /// EPC page faults (page not resident in the EPC; enclave mode only).
    pub epc_faults: u64,
    /// EPC evictions performed to make room (each implies re-encryption).
    pub epc_evictions: u64,
    /// Cycles spent in the memory hierarchy (subset of total cycles).
    pub mem_cycles: u64,
}

impl Stats {
    /// Returns a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `self - earlier`, counter-wise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot of the
    /// same run (any counter would underflow).
    pub fn delta(&self, earlier: &Stats) -> Stats {
        Stats {
            instructions: self.instructions - earlier.instructions,
            branches: self.branches - earlier.branches,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            epc_faults: self.epc_faults - earlier.epc_faults,
            epc_evictions: self.epc_evictions - earlier.epc_evictions,
            mem_cycles: self.mem_cycles - earlier.mem_cycles,
        }
    }

    /// LLC miss rate relative to L1 accesses, in percent.
    ///
    /// Returns 0.0 when no memory accesses were recorded.
    pub fn llc_miss_pct(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            100.0 * self.llc_misses as f64 / self.l1_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = Stats {
            instructions: 10,
            loads: 4,
            ..Stats::new()
        };
        let b = Stats {
            instructions: 25,
            loads: 9,
            ..Stats::new()
        };
        let d = b.delta(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.loads, 5);
        assert_eq!(d.stores, 0);
    }

    #[test]
    fn llc_miss_pct_handles_zero() {
        assert_eq!(Stats::new().llc_miss_pct(), 0.0);
        let s = Stats {
            l1_accesses: 200,
            llc_misses: 10,
            ..Stats::new()
        };
        assert!((s.llc_miss_pct() - 5.0).abs() < 1e-12);
    }
}
