//! The machine front end: routes every access through cache hierarchy, EPC,
//! and cost model, and surfaces faults.

use crate::cache::{lines_touched, Cache, LINE_BYTES};
use crate::cost::{MachineConfig, Mode};
use crate::epc::Epc;
use crate::mem::{PagedMem, PAGE_SIZE};
use crate::stats::Stats;
use sgxs_obs::{Event, Recorder};
use std::cell::RefCell;
use std::rc::Rc;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// Access touched a page marked inaccessible (e.g. the SGXBounds guard
    /// page at the top of the enclave, paper §4.4).
    ForbiddenPage,
    /// The access range wraps around the 32-bit address space.
    Wraps,
    /// A 64-bit address with non-zero high bits reached the memory system
    /// uninstrumented — in a real enclave this is a #PF outside the enclave
    /// range.
    NonCanonical,
}

/// A memory access fault (translated into a VM trap by the interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting (untruncated) address.
    pub addr: u64,
    /// Fault class.
    pub kind: MemFaultKind,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory fault at {:#x}: {:?}", self.addr, self.kind)
    }
}

/// The simulated machine: memory, caches, EPC, and counters.
pub struct Machine {
    /// Backing memory; runtimes may use it directly for *uncharged* setup
    /// (input staging), but all program accesses must go through
    /// [`Machine::load`]/[`Machine::store`].
    pub mem: PagedMem,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    epc: Option<Epc>,
    cfg: MachineConfig,
    /// Event counters.
    pub stats: Stats,
    recorder: Option<Rc<RefCell<dyn Recorder>>>,
    // Cached `recorder.enabled()` so the guard is a plain bool test.
    obs_on: bool,
    // Span-event opt-in: check-region spans are high-volume, so emitters
    // guard them behind this second bool in addition to `obs_on`.
    spans_on: bool,
    /// Check site currently executing on the active thread, if any — set by
    /// the interpreter before dispatching a runtime intrinsic so violation
    /// handlers can attribute failures to the offending check site.
    pub cur_site: Option<u32>,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let l1 = (0..cfg.cores)
            .map(|_| Cache::new(cfg.l1_bytes, cfg.l1_assoc))
            .collect();
        let l2 = (0..cfg.cores)
            .map(|_| Cache::new(cfg.l2_bytes, cfg.l2_assoc))
            .collect();
        let l3 = Cache::new(cfg.l3_bytes, cfg.l3_assoc);
        let epc = match cfg.mode {
            Mode::Enclave => Some(Epc::new((cfg.epc_bytes / PAGE_SIZE as u64) as usize)),
            Mode::Native => None,
        };
        Machine {
            mem: PagedMem::new(),
            l1,
            l2,
            l3,
            epc,
            cfg,
            stats: Stats::new(),
            recorder: None,
            obs_on: false,
            spans_on: false,
            cur_site: None,
        }
    }

    /// Installs (or removes) an observability recorder.
    ///
    /// With `None` or a recorder whose `enabled()` is false, every emission
    /// site reduces to one always-false bool test on a *rare* path; counters
    /// and cycle accounting are bit-identical to a build without obs calls.
    pub fn set_recorder(&mut self, rec: Option<Rc<RefCell<dyn Recorder>>>) {
        self.obs_on = rec.as_ref().is_some_and(|r| r.borrow().enabled());
        self.recorder = rec;
    }

    /// Whether an enabled recorder is installed.
    #[inline(always)]
    pub fn obs_enabled(&self) -> bool {
        self.obs_on
    }

    /// Opts in (or out of) span-event emission. Spans follow the same
    /// zero-perturbation rule as every other event: emission changes no
    /// counter and charges no cycle, so the flag only controls event
    /// *volume*, never measured numbers.
    pub fn set_span_mode(&mut self, on: bool) {
        self.spans_on = on;
    }

    /// Whether span events should be emitted (recorder enabled *and* span
    /// mode requested).
    #[inline(always)]
    pub fn spans_enabled(&self) -> bool {
        self.obs_on && self.spans_on
    }

    /// Emits an observability event, timestamped with the retired
    /// instruction count. No-op unless an enabled recorder is installed.
    #[inline]
    pub fn emit(&mut self, ev: Event) {
        if self.obs_on {
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().record(self.stats.instructions, ev);
            }
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Execution mode (native or enclave).
    pub fn mode(&self) -> Mode {
        self.cfg.mode
    }

    /// EPC fault count so far (0 in native mode).
    pub fn epc_faults(&self) -> u64 {
        self.epc.as_ref().map_or(0, |e| e.faults())
    }

    /// Current EPC capacity in pages (`None` in native mode).
    pub fn epc_capacity_pages(&self) -> Option<usize> {
        self.epc.as_ref().map(|e| e.capacity())
    }

    /// Clamps (or restores) the EPC capacity mid-run — chaos injection for
    /// EPC pressure storms, where other enclaves steal protected pages.
    /// Shrinking evicts resident pages immediately (counted in the stats);
    /// they fault back in on next access at the usual fault cost. No-op in
    /// native mode; the capacity is floored at one page.
    pub fn set_epc_capacity_pages(&mut self, pages: usize) {
        if let Some(epc) = self.epc.as_mut() {
            let before = epc.evictions();
            epc.set_capacity(pages);
            self.stats.epc_evictions += epc.evictions() - before;
        }
    }

    /// The configured (un-clamped) EPC capacity in pages, from the preset.
    pub fn configured_epc_pages(&self) -> usize {
        (self.cfg.epc_bytes / PAGE_SIZE as u64) as usize
    }

    /// Validates an address range, returning the 32-bit base or a fault.
    #[inline]
    fn check_range(&self, addr: u64, len: u32) -> Result<u32, MemFault> {
        if addr > u32::MAX as u64 {
            return Err(MemFault {
                addr,
                kind: MemFaultKind::NonCanonical,
            });
        }
        let a = addr as u32;
        if len > 0 && a.checked_add(len - 1).is_none() {
            return Err(MemFault {
                addr,
                kind: MemFaultKind::Wraps,
            });
        }
        if self.mem.range_faults(a, len) {
            return Err(MemFault {
                addr,
                kind: MemFaultKind::ForbiddenPage,
            });
        }
        Ok(a)
    }

    /// Charges the hierarchy for one ≤8-byte access and returns its cycle
    /// cost.
    #[inline]
    fn charge(&mut self, core: usize, addr: u32, len: u32) -> u64 {
        // Callers pass an in-range core id; keep the reduction off the hot
        // path (an integer divide per access) for that common case.
        let core = if core < self.cfg.cores {
            core
        } else {
            core % self.cfg.cores
        };
        // Fast path: the access stays within one line and hits L1 — the
        // overwhelmingly common case on every workload.
        if (addr & (LINE_BYTES - 1)) + len.max(1) <= LINE_BYTES {
            let line = (addr as u64) & !((LINE_BYTES - 1) as u64);
            self.stats.l1_accesses += 1;
            if self.l1[core].access(line) {
                self.stats.mem_cycles += self.cfg.cost.l1_hit;
                return self.cfg.cost.l1_hit;
            }
            self.stats.l1_misses += 1;
            let cycles = self.charge_below_l1(core, line);
            self.stats.mem_cycles += cycles;
            return cycles;
        }
        let mut cycles = 0;
        for line in lines_touched(addr, len) {
            self.stats.l1_accesses += 1;
            if self.l1[core].access(line) {
                cycles += self.cfg.cost.l1_hit;
                continue;
            }
            self.stats.l1_misses += 1;
            cycles += self.charge_below_l1(core, line);
        }
        self.stats.mem_cycles += cycles;
        cycles
    }

    /// L1-miss continuation: walks L2 → L3 → DRAM/EPC for one line and
    /// returns the cycle cost (caller accounts `mem_cycles`).
    fn charge_below_l1(&mut self, core: usize, line: u64) -> u64 {
        if self.l2[core].access(line) {
            return self.cfg.cost.l2_hit;
        }
        self.stats.l2_misses += 1;
        if self.l3.access(line) {
            return self.cfg.cost.l3_hit;
        }
        self.stats.llc_misses += 1;
        let mut cycles = self.cfg.cost.dram;
        if let Some(epc) = self.epc.as_mut() {
            cycles += self.cfg.cost.mee_extra;
            let page = (line >> 12) as u32;
            let (fault, evicted) = epc.touch(page);
            if fault {
                self.stats.epc_faults += 1;
                cycles += self.cfg.cost.epc_fault;
                if self.obs_on {
                    self.emit(Event::EpcFault { page });
                }
            }
            if evicted {
                self.stats.epc_evictions += 1;
                cycles += self.cfg.cost.epc_evict;
                if self.obs_on {
                    self.emit(Event::EpcEvict { page });
                }
            }
        }
        cycles
    }

    /// Loads `len` ∈ {1,2,4,8} bytes at `addr` on behalf of `core`.
    ///
    /// Returns the zero-extended value and the cycle cost.
    #[inline]
    pub fn load(&mut self, core: usize, addr: u64, len: u8) -> Result<(u64, u64), MemFault> {
        let a = self.check_range(addr, len as u32)?;
        self.stats.loads += 1;
        let cycles = self.charge(core, a, len as u32);
        let val = self.mem.read(a, len);
        Ok((val, cycles))
    }

    /// Stores the low `len` ∈ {1,2,4,8} bytes of `val` at `addr`.
    ///
    /// Returns the cycle cost.
    #[inline]
    pub fn store(&mut self, core: usize, addr: u64, len: u8, val: u64) -> Result<u64, MemFault> {
        let a = self.check_range(addr, len as u32)?;
        self.stats.stores += 1;
        let cycles = self.charge(core, a, len as u32);
        self.mem.write(a, len, val);
        Ok(cycles)
    }

    /// Charges a bulk transfer of `len` bytes at `addr` (one hierarchy access
    /// per cache line) without moving data — used by `memcpy`-style
    /// intrinsics that move bytes via [`Machine::mem`] directly.
    pub fn charge_bulk(
        &mut self,
        core: usize,
        addr: u64,
        len: u32,
        is_store: bool,
    ) -> Result<u64, MemFault> {
        let a = self.check_range(addr, len)?;
        if len == 0 {
            return Ok(0);
        }
        if is_store {
            self.stats.stores += (len as u64).div_ceil(LINE_BYTES as u64);
        } else {
            self.stats.loads += (len as u64).div_ceil(LINE_BYTES as u64);
        }
        Ok(self.charge(core, a, len))
    }

    /// Resets caches, EPC residency, and counters, keeping memory contents.
    ///
    /// The harness uses this between the warm-up and measured phases.
    pub fn reset_metrics(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        for c in &mut self.l2 {
            c.reset();
        }
        self.l3.reset();
        if let Some(_epc) = self.epc.as_ref() {
            let pages = (self.cfg.epc_bytes / PAGE_SIZE as u64) as usize;
            self.epc = Some(Epc::new(pages));
        }
        self.stats = Stats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Preset;

    fn tiny(mode: Mode) -> Machine {
        Machine::new(MachineConfig::preset(Preset::Tiny, mode))
    }

    #[test]
    fn load_store_roundtrip_with_costs() {
        let mut m = tiny(Mode::Native);
        let c1 = m.store(0, 0x1000, 8, 42).unwrap();
        let (v, c2) = m.load(0, 0x1000, 8).unwrap();
        assert_eq!(v, 42);
        // First touch misses all levels; second hits L1.
        assert!(c1 > c2);
        assert_eq!(c2, m.config().cost.l1_hit);
    }

    #[test]
    fn non_canonical_address_faults() {
        let mut m = tiny(Mode::Native);
        let err = m.load(0, 0x1_0000_0000, 8).unwrap_err();
        assert_eq!(err.kind, MemFaultKind::NonCanonical);
        // A tagged pointer used raw faults the same way.
        let tagged = (0x2000u64 << 32) | 0x1000;
        assert!(m.load(0, tagged, 4).is_err());
    }

    #[test]
    fn wrapping_range_faults() {
        let mut m = tiny(Mode::Native);
        let err = m.store(0, u32::MAX as u64, 8, 0).unwrap_err();
        assert_eq!(err.kind, MemFaultKind::Wraps);
    }

    #[test]
    fn forbidden_page_faults() {
        let mut m = tiny(Mode::Native);
        m.mem.forbid_page(5);
        let err = m.load(0, 5 * PAGE_SIZE as u64, 1).unwrap_err();
        assert_eq!(err.kind, MemFaultKind::ForbiddenPage);
        // Neighbouring pages stay accessible.
        assert!(m.load(0, 4 * PAGE_SIZE as u64, 1).is_ok());
        assert!(m.load(0, 6 * PAGE_SIZE as u64, 1).is_ok());
    }

    #[test]
    fn enclave_mode_counts_epc_faults() {
        let mut m = tiny(Mode::Enclave);
        let epc_pages = (m.config().epc_bytes / PAGE_SIZE as u64) as u32;
        // Touch twice as many pages as the EPC holds, twice.
        for round in 0..2 {
            for p in 0..(2 * epc_pages) {
                m.load(0, (p * PAGE_SIZE) as u64, 8).unwrap();
            }
            let _ = round;
        }
        assert!(m.stats.epc_faults > epc_pages as u64);
        assert!(m.stats.epc_evictions > 0);
    }

    #[test]
    fn native_mode_never_pages() {
        let mut m = tiny(Mode::Native);
        for p in 0..4096u64 {
            m.load(0, p * PAGE_SIZE as u64, 8).unwrap();
        }
        assert_eq!(m.stats.epc_faults, 0);
    }

    #[test]
    fn enclave_llc_miss_costs_more_than_native() {
        let mut native = tiny(Mode::Native);
        let mut enclave = tiny(Mode::Enclave);
        let (_, cn) = native.load(0, 0x4000, 8).unwrap();
        let (_, ce) = enclave.load(0, 0x4000, 8).unwrap();
        assert!(ce > cn, "MEE + fault must make enclave misses dearer");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut m = tiny(Mode::Native);
        m.load(0, 60, 8).unwrap();
        assert_eq!(m.stats.l1_accesses, 2);
    }

    #[test]
    fn charge_bulk_charges_per_line() {
        let mut m = tiny(Mode::Native);
        let c = m.charge_bulk(0, 0, 4 * LINE_BYTES, false).unwrap();
        assert_eq!(m.stats.l1_accesses, 4);
        assert!(c >= 4 * m.config().cost.dram);
        assert_eq!(m.charge_bulk(0, 0, 0, false).unwrap(), 0);
    }

    #[test]
    fn reset_metrics_keeps_memory() {
        let mut m = tiny(Mode::Enclave);
        m.store(0, 0x100, 8, 7).unwrap();
        m.reset_metrics();
        assert_eq!(m.stats.loads, 0);
        let (v, _) = m.load(0, 0x100, 8).unwrap();
        assert_eq!(v, 7);
    }
}

#[cfg(test)]
mod paging_asymmetry_tests {
    use super::*;
    use crate::cost::{MachineConfig, Mode, Preset};

    /// Paper §2.1: paging costs ~2x for sequential access patterns and
    /// orders of magnitude more for random ones. Reproduce the asymmetry
    /// with a working set twice the EPC.
    #[test]
    fn sequential_paging_is_cheap_random_is_catastrophic() {
        let cfg = MachineConfig::preset(Preset::Tiny, Mode::Enclave);
        let ws = cfg.epc_bytes * 2;
        let accesses = ws / 64;

        // Sequential: walk the working set twice, line by line.
        let mut seq = Machine::new(cfg);
        let mut seq_cycles = 0u64;
        for round in 0..2u64 {
            let _ = round;
            for i in 0..accesses {
                let (_, c) = seq.load(0, i * 64 % ws, 8).unwrap();
                seq_cycles += c;
            }
        }

        // Random: same number of accesses, page-sized strides with a
        // full-range permutation-ish pattern.
        let mut rnd = Machine::new(cfg);
        let mut rnd_cycles = 0u64;
        let mut a = 12345u64;
        for _ in 0..2 * accesses {
            a = a
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (a % ws) & !7;
            let (_, c) = rnd.load(0, addr, 8).unwrap();
            rnd_cycles += c;
        }

        let seq_per = seq_cycles as f64 / (2 * accesses) as f64;
        let rnd_per = rnd_cycles as f64 / (2 * accesses) as f64;
        assert!(
            rnd_per > seq_per * 10.0,
            "random paging must be at least an order of magnitude dearer: \
             sequential {seq_per:.0} cyc/access vs random {rnd_per:.0}"
        );
        // Sequential thrashing stays within a small factor of a fitting
        // working set (the paper's ~2x).
        let mut fit = Machine::new(cfg);
        let mut fit_cycles = 0u64;
        let half = cfg.epc_bytes / 2;
        for _ in 0..2 {
            for i in 0..accesses {
                let (_, c) = fit.load(0, (i * 64) % half, 8).unwrap();
                fit_cycles += c;
            }
        }
        let fit_per = fit_cycles as f64 / (2 * accesses) as f64;
        assert!(
            seq_per < fit_per * 8.0,
            "sequential overcommit must stay within a small factor: \
             fitting {fit_per:.1} vs thrashing {seq_per:.1}"
        );
    }
}
