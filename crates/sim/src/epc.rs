//! Enclave Page Cache residency tracking with CLOCK replacement.
//!
//! SGX keeps enclave pages in the EPC, a small protected region (paper §2.1:
//! 128 MB total, ~94 MB usable). When a working set exceeds the EPC, the OS
//! evicts pages (re-encrypting them into untrusted memory) and faults them
//! back on access — the dominant cost for large working sets and the reason
//! metadata-hungry schemes (ASan shadow memory, MPX bounds tables) collapse
//! inside enclaves.
//!
//! Replacement uses the CLOCK (second chance) algorithm, a good approximation
//! of the Linux SGX driver's behaviour with O(1) amortized cost.

use std::collections::HashMap;

/// EPC residency tracker.
pub struct Epc {
    capacity: usize,
    /// page -> slot index.
    map: HashMap<u32, usize>,
    /// (page, referenced bit) per occupied slot.
    slots: Vec<(u32, bool)>,
    hand: usize,
    faults: u64,
    evictions: u64,
}

impl Epc {
    /// Creates an EPC holding `capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "EPC must hold at least one page");
        Epc {
            capacity: capacity_pages,
            map: HashMap::new(),
            slots: Vec::with_capacity(capacity_pages),
            hand: 0,
            faults: 0,
            evictions: 0,
        }
    }

    /// Records an access to `page`.
    ///
    /// Returns `(faulted, evicted)`: whether the page had to be brought in,
    /// and whether another page was evicted to make room.
    pub fn touch(&mut self, page: u32) -> (bool, bool) {
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].1 = true;
            return (false, false);
        }
        self.faults += 1;
        if self.slots.len() < self.capacity {
            self.map.insert(page, self.slots.len());
            self.slots.push((page, true));
            return (true, false);
        }
        // CLOCK: advance the hand until a slot with a clear referenced bit.
        loop {
            let (victim_page, referenced) = self.slots[self.hand];
            if referenced {
                self.slots[self.hand].1 = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                self.map.remove(&victim_page);
                self.map.insert(page, self.hand);
                self.slots[self.hand] = (page, true);
                self.hand = (self.hand + 1) % self.capacity;
                self.evictions += 1;
                return (true, true);
            }
        }
    }

    /// Re-sizes the EPC in place (chaos injection: EPC pressure storms
    /// model other enclaves grabbing protected pages mid-run).
    ///
    /// Shrinking evicts resident pages with the same CLOCK second-chance
    /// scan `touch` uses until the survivors fit, counting each eviction;
    /// the evicted pages fault back in on their next access. Growing just
    /// raises the ceiling. The capacity is floored at one page.
    pub fn set_capacity(&mut self, capacity_pages: usize) {
        let cap = capacity_pages.max(1);
        while self.slots.len() > cap {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            let (victim, referenced) = self.slots[self.hand];
            if referenced {
                self.slots[self.hand].1 = false;
                self.hand += 1;
                continue;
            }
            self.map.remove(&victim);
            self.slots.remove(self.hand);
            // Slots after the hand shifted down one; re-point their map
            // entries (bounded by capacity, which is small).
            for (i, (p, _)) in self.slots.iter().enumerate().skip(self.hand) {
                self.map.insert(*p, i);
            }
            self.evictions += 1;
        }
        self.capacity = cap;
        if self.hand >= self.capacity {
            self.hand = 0;
        }
    }

    /// Returns `true` if `page` is currently resident.
    pub fn resident(&self, page: u32) -> bool {
        self.map.contains_key(&page)
    }

    /// Total page faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of pages the EPC can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_touch_faults_once() {
        let mut e = Epc::new(4);
        assert_eq!(e.touch(7), (true, false));
        assert_eq!(e.touch(7), (false, false));
        assert_eq!(e.faults(), 1);
    }

    #[test]
    fn fills_before_evicting() {
        let mut e = Epc::new(3);
        e.touch(1);
        e.touch(2);
        e.touch(3);
        assert_eq!(e.evictions(), 0);
        assert_eq!(e.resident_count(), 3);
        let (fault, evict) = e.touch(4);
        assert!(fault && evict);
        assert_eq!(e.resident_count(), 3);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut e = Epc::new(2);
        e.touch(1);
        e.touch(2);
        // Both referenced; inserting 3 clears bits and evicts page 1 (hand
        // starts at slot 0).
        e.touch(3);
        assert!(!e.resident(1));
        assert!(e.resident(2));
        assert!(e.resident(3));
        // Re-touch 2 so it survives the next insertion.
        e.touch(2);
        e.touch(4);
        assert!(e.resident(2) || e.resident(4));
    }

    #[test]
    fn working_set_within_capacity_never_thrashes() {
        let mut e = Epc::new(16);
        for _ in 0..10 {
            for p in 0..16u32 {
                e.touch(p);
            }
        }
        assert_eq!(e.faults(), 16);
        assert_eq!(e.evictions(), 0);
    }

    #[test]
    fn capacity_clamp_evicts_and_recovers() {
        let mut e = Epc::new(8);
        for p in 0..8u32 {
            e.touch(p);
        }
        assert_eq!(e.resident_count(), 8);
        // Storm: clamp to 3 pages. Five pages must leave, counted as
        // evictions, and the tracker stays internally consistent.
        e.set_capacity(3);
        assert_eq!(e.capacity(), 3);
        assert_eq!(e.resident_count(), 3);
        assert_eq!(e.evictions(), 5);
        let survivors: Vec<u32> = (0..8).filter(|&p| e.resident(p)).collect();
        assert_eq!(survivors.len(), 3);
        // Each evicted page faults back in exactly once when re-touched.
        let evicted: Vec<u32> = (0..8).filter(|&p| !e.resident(p)).collect();
        let faults_before = e.faults();
        for &p in &evicted {
            e.touch(p);
        }
        assert_eq!(e.faults() - faults_before, 5);
        // Storm passes: restore capacity, everything fits again.
        e.set_capacity(8);
        for p in 0..8u32 {
            e.touch(p);
        }
        let f2 = e.faults();
        for p in 0..8u32 {
            e.touch(p);
        }
        assert_eq!(e.faults(), f2, "no faults once the storm passes");
    }

    #[test]
    fn capacity_clamp_floors_at_one_page() {
        let mut e = Epc::new(4);
        e.touch(1);
        e.touch(2);
        e.set_capacity(0);
        assert_eq!(e.capacity(), 1);
        assert_eq!(e.resident_count(), 1);
        e.touch(3);
        assert!(e.resident(3));
    }

    #[test]
    fn cyclic_overcommit_thrashes() {
        // A sequential cyclic scan over capacity+1 pages defeats CLOCK and
        // faults on every touch — the paper's EPC-thrashing pathology.
        let mut e = Epc::new(8);
        let mut faults_round2 = 0;
        for round in 0..2 {
            for p in 0..9u32 {
                let (f, _) = e.touch(p);
                if round == 1 && f {
                    faults_round2 += 1;
                }
            }
        }
        assert!(
            faults_round2 >= 8,
            "expected thrashing, got {faults_round2}"
        );
    }
}
