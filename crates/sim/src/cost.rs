//! Cycle cost model and machine configuration presets.
//!
//! Constants are set once from published measurements — the paper's Skylake
//! testbed (§6.1), the SGX paging costs it cites (§2.1: 2× for sequential,
//! up to three orders of magnitude for random access patterns), and typical
//! MEE overheads — and are never tuned per benchmark. All relative results
//! in the reproduction emerge from these constants plus each scheme's actual
//! memory behaviour.

/// Whether the simulated program runs inside an SGX enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal process: full cache hierarchy, no EPC, no MEE.
    Native,
    /// Shielded execution: LLC misses pay MEE latency, and pages beyond the
    /// EPC capacity are demand-paged at high cost.
    Enclave,
}

/// Per-event cycle costs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Simple ALU op (add/sub/logic/shift/cmp).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Floating add/sub/compare/convert.
    pub fsimple: u64,
    /// Floating multiply.
    pub fmul: u64,
    /// Floating divide / sqrt.
    pub fdiv: u64,
    /// Pointer-arithmetic (gep) instruction. Zero by default: address
    /// generation folds into x86 addressing modes, which is exactly why
    /// SGXBounds' explicit masking of every pointer arithmetic shows up as
    /// real overhead outside the enclave (paper §6.7).
    pub gep: u64,
    /// Conditional or unconditional branch.
    pub branch: u64,
    /// Call/return overhead.
    pub call: u64,
    /// L1D hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// L3 (LLC) hit latency.
    pub l3_hit: u64,
    /// DRAM access latency (LLC miss, native).
    pub dram: u64,
    /// Extra latency the MEE adds to an in-enclave LLC miss (decrypt +
    /// integrity check of the line).
    pub mee_extra: u64,
    /// Base cost of an EPC page fault (exception, EWB/ELDU, re-decrypt).
    pub epc_fault: u64,
    /// Additional cost when the fault also evicts (re-encrypts) a page.
    pub epc_evict: u64,
    /// Cost of an atomic read-modify-write beyond the plain access.
    pub atomic_extra: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 21,
            gep: 0,
            fsimple: 3,
            fmul: 4,
            fdiv: 14,
            branch: 1,
            call: 2,
            l1_hit: 4,
            l2_hit: 12,
            l3_hit: 40,
            dram: 160,
            mee_extra: 110,
            epc_fault: 12_000,
            epc_evict: 8_000,
            atomic_extra: 18,
        }
    }
}

/// Scale presets for the machine model.
///
/// Interpreting paper-scale working sets (hundreds of MB) is infeasible, so
/// the default presets scale the cache hierarchy and the EPC down together,
/// keeping the working-set-to-EPC and working-set-to-LLC *ratios* — the
/// quantities that drive every effect in the paper — intact. EXPERIMENTS.md
/// records which preset produced each reported number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Paper-faithful sizes: 32 KB L1, 256 KB L2, 8 MB L3, 94 MB EPC.
    Paper,
    /// Everything divided by 32: 4 KB L1, 32 KB L2, 256 KB L3, ~3 MB EPC.
    /// Used by the `repro` binary.
    Mini,
    /// Divided by 128: 2 KB L1, 8 KB L2, 64 KB L3, 736 KB EPC. Used by unit
    /// tests and Criterion benches for speed.
    Tiny,
}

/// Which execution tier runs MIR on this machine.
///
/// The machine model itself is tier-agnostic — both tiers charge cycles
/// through the same [`crate::machine::Machine`] — but the choice is carried
/// here so every runner (harness, fuzz, resil) can thread it through one
/// configuration value. The reference interpreter is the semantic oracle;
/// the compiled tier (`sgxs-exec`) must be bit-identical to it in digests,
/// stats, cycles, and observability events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// The tree-walking reference interpreter in `sgxs-mir` (the oracle).
    #[default]
    Reference,
    /// The pre-lowered fast tier in `sgxs-exec`.
    Compiled,
}

impl ExecTier {
    /// Stable lowercase label used by the CLI and in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Reference => "reference",
            ExecTier::Compiled => "compiled",
        }
    }

    /// Parses a CLI spelling (`reference`/`ref`/`interp`, `compiled`/`exec`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reference" | "ref" | "interp" | "interpreter" => Some(ExecTier::Reference),
            "compiled" | "exec" | "fast" => Some(ExecTier::Compiled),
            _ => None,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Enclave or native execution.
    pub mode: Mode,
    /// Number of cores (private L1/L2 each); the paper's testbed has 4 cores
    /// / 8 hyperthreads, which we model as 8 logical cores sharing the LLC.
    pub cores: usize,
    /// L1D size in bytes per core.
    pub l1_bytes: u32,
    /// L1D associativity.
    pub l1_assoc: usize,
    /// L2 size in bytes per core.
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Shared L3 size in bytes.
    pub l3_bytes: u32,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// Usable EPC size in bytes (enclave mode only).
    pub epc_bytes: u64,
    /// Cycle costs.
    pub cost: CostModel,
    /// Which execution tier runs on this machine (cost-neutral: both tiers
    /// charge identical cycles; this only selects the dispatch loop).
    pub tier: ExecTier,
}

impl MachineConfig {
    /// Builds a configuration from a scale preset and execution mode.
    pub fn preset(preset: Preset, mode: Mode) -> Self {
        let (l1, l2, l3, epc) = match preset {
            Preset::Paper => (32 << 10, 256 << 10, 8 << 20, 94u64 << 20),
            Preset::Mini => (4 << 10, 32 << 10, 256 << 10, 3u64 << 20),
            Preset::Tiny => (2 << 10, 8 << 10, 64 << 10, 736u64 << 10),
        };
        MachineConfig {
            mode,
            cores: 8,
            l1_bytes: l1,
            l1_assoc: 4,
            l2_bytes: l2,
            l2_assoc: 8,
            l3_bytes: l3,
            l3_assoc: 16,
            epc_bytes: epc,
            cost: CostModel::default(),
            tier: ExecTier::Reference,
        }
    }

    /// The scale divisor of a preset relative to paper sizes (1, 32, 128).
    ///
    /// Workload generators divide paper-scale working sets by this factor so
    /// working-set-to-EPC ratios are preserved.
    pub fn scale_of(preset: Preset) -> u64 {
        match preset {
            Preset::Paper => 1,
            Preset::Mini => 32,
            Preset::Tiny => 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_epc_to_llc_ratio() {
        for p in [Preset::Paper, Preset::Mini, Preset::Tiny] {
            let c = MachineConfig::preset(p, Mode::Enclave);
            let ratio = c.epc_bytes as f64 / c.l3_bytes as f64;
            assert!(
                (ratio - 11.75).abs() < 0.5,
                "preset {p:?} ratio {ratio} drifted from paper's ~11.75"
            );
        }
    }

    #[test]
    fn paging_dominates_dram_by_orders_of_magnitude() {
        let c = CostModel::default();
        assert!(
            c.epc_fault / c.dram >= 50,
            "EPC faults must dwarf DRAM hits"
        );
        assert!(c.mee_extra > 0 && c.mee_extra < c.epc_fault);
    }

    #[test]
    fn scale_factors_match_geometry() {
        let paper = MachineConfig::preset(Preset::Paper, Mode::Enclave);
        let mini = MachineConfig::preset(Preset::Mini, Mode::Enclave);
        assert_eq!(
            paper.l3_bytes / mini.l3_bytes,
            MachineConfig::scale_of(Preset::Mini) as u32
        );
    }
}
