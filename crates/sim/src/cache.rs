//! Set-associative cache model with LRU replacement.
//!
//! The model tracks tags only — data always lives in [`crate::mem::PagedMem`]
//! — because only hit/miss behaviour matters for the cost model. Coherence
//! between per-core L1/L2 caches is not modelled (the simulated workloads
//! partition data between threads, and the paper's effects of interest are
//! capacity effects, not coherence misses); this simplification is recorded
//! in DESIGN.md.

/// Number of bytes in a cache line (matches the paper's Skylake testbed).
pub const LINE_BYTES: u32 = 64;
const LINE_SHIFT: u32 = 6;

/// One set-associative cache level.
pub struct Cache {
    /// Tag per way, `sets * assoc` entries, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Age per way; 0 = most recently used.
    ages: Vec<u8>,
    sets: usize,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with associativity `assoc`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two, non-zero number
    /// of sets.
    pub fn new(size_bytes: u32, assoc: usize) -> Self {
        let lines = (size_bytes / LINE_BYTES) as usize;
        assert!(assoc > 0 && lines >= assoc, "cache too small for assoc");
        let sets = lines / assoc;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        Cache {
            tags: vec![u64::MAX; sets * assoc],
            ages: vec![u8::MAX; sets * assoc],
            sets,
            assoc,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the line containing `addr`, inserting it on a miss.
    ///
    /// Returns `true` on a hit.
    ///
    /// The common associativities are dispatched to a const-generic body so
    /// the way scan and LRU update fully unroll — this is the innermost loop
    /// of every simulated memory access. All variants implement the *same*
    /// policy bit-for-bit (including the evict-the-last-oldest-way tie
    /// break), so the choice of body never changes simulated behaviour.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> LINE_SHIFT;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        match self.assoc {
            4 => self.access_ways::<4>(base, line),
            8 => self.access_ways::<8>(base, line),
            16 => self.access_ways::<16>(base, line),
            _ => self.access_ways_dyn(base, line, self.assoc),
        }
    }

    #[inline]
    fn access_ways<const A: usize>(&mut self, base: usize, tag: u64) -> bool {
        let tags: &mut [u64; A] = (&mut self.tags[base..base + A])
            .try_into()
            .expect("geometry");
        let ages: &mut [u8; A] = (&mut self.ages[base..base + A])
            .try_into()
            .expect("geometry");
        let hit_way = tags.iter().position(|&t| t == tag);
        let (w, hit) = match hit_way {
            Some(w) => {
                self.hits += 1;
                (w, true)
            }
            None => {
                self.misses += 1;
                // Evict the oldest way; ties go to the *last* oldest.
                let mut victim = 0;
                for w in 1..A {
                    if ages[w] >= ages[victim] {
                        victim = w;
                    }
                }
                tags[victim] = tag;
                (victim, false)
            }
        };
        let old = ages[w];
        for a in ages.iter_mut() {
            if *a < old {
                *a = a.saturating_add(1);
            }
        }
        ages[w] = 0;
        hit
    }

    fn access_ways_dyn(&mut self, base: usize, tag: u64, assoc: usize) -> bool {
        let ways = &mut self.tags[base..base + assoc];
        let mut hit_way = None;
        for (w, t) in ways.iter().enumerate() {
            if *t == tag {
                hit_way = Some(w);
                break;
            }
        }
        match hit_way {
            Some(w) => {
                self.hits += 1;
                self.touch(base, w);
                true
            }
            None => {
                self.misses += 1;
                // Evict the oldest way.
                let ages = &self.ages[base..base + assoc];
                let victim = ages
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, a)| **a)
                    .map(|(w, _)| w)
                    .expect("assoc > 0");
                self.tags[base + victim] = tag;
                self.touch(base, victim);
                false
            }
        }
    }

    /// Marks way `w` in the set starting at `base` as most recently used.
    fn touch(&mut self, base: usize, w: usize) {
        let ages = &mut self.ages[base..base + self.assoc];
        let old = ages[w];
        for a in ages.iter_mut() {
            if *a < old {
                *a = a.saturating_add(1);
            }
        }
        ages[w] = 0;
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and resets counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.ages.fill(u8::MAX);
        self.hits = 0;
        self.misses = 0;
    }
}

/// Splits an access `[addr, addr+len)` into the distinct cache lines it
/// touches (at most two for `len <= 8`, more for bulk transfers).
pub fn lines_touched(addr: u32, len: u32) -> impl Iterator<Item = u64> {
    let first = (addr as u64) >> LINE_SHIFT;
    let last = (addr as u64 + len.max(1) as u64 - 1) >> LINE_SHIFT;
    (first..=last).map(|l| l << LINE_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(4096, 4);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13F & !0x3F)); // Same line.
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = Cache::new(4096, 4);
        c.access(0x1000);
        assert!(c.access(0x1004));
        assert!(c.access(0x103F));
        assert!(!c.access(0x1040)); // Next line.
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct construct a tiny cache: 4 lines, 4-way => 1 set.
        let mut c = Cache::new(256, 4);
        // Fill the set with 4 distinct lines.
        for i in 0..4u64 {
            assert!(!c.access(i * 64));
        }
        // Touch line 0 to refresh it.
        assert!(c.access(0));
        // Insert a 5th line: victim must be line 1 (oldest), not line 0.
        assert!(!c.access(4 * 64));
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 1 must have been evicted");
    }

    #[test]
    fn capacity_eviction_round_trip() {
        let mut c = Cache::new(1024, 2); // 16 lines.
        for i in 0..32u64 {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), 32);
        // A second pass over a working set 2x the cache also misses fully
        // (LRU with a sequential scan has zero reuse).
        for i in 0..32u64 {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn lines_touched_splits_correctly() {
        let v: Vec<u64> = lines_touched(60, 8).collect();
        assert_eq!(v, vec![0, 64]);
        let v: Vec<u64> = lines_touched(64, 8).collect();
        assert_eq!(v, vec![64]);
        let v: Vec<u64> = lines_touched(0, 200).collect();
        assert_eq!(v, vec![0, 64, 128, 192]);
        let v: Vec<u64> = lines_touched(100, 0).collect();
        assert_eq!(v, vec![64]);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(4096, 4);
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }
}
