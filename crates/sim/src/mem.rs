//! Sparse, commit-on-touch 32-bit address space.
//!
//! SGXBounds is premised on enclave address spaces fitting in 32 bits (paper
//! §3.1), so the simulated machine exposes exactly that: addresses are `u32`,
//! and a 64-bit value whose high bits are non-zero is *not* a valid address —
//! it is a tagged pointer that the instrumentation must strip first.
//!
//! Pages are materialized on first touch, which models `mmap` reserve/commit
//! behaviour: reserving virtual memory (ASan's 512 MB shadow, MPX's bounds
//! directory) is cheap until the pages are actually written. The paper's
//! memory-consumption metric is *maximum reserved virtual memory* (§6.1), so
//! [`PagedMem`] tracks reservations and their peak separately from committed
//! (touched) pages.

/// Size of a simulated page in bytes.
pub const PAGE_SIZE: u32 = 4096;
const PAGE_SHIFT: u32 = 12;

type Page = [u8; PAGE_SIZE as usize];
/// Second-level page-table node: one slot per page in a 4 MB stripe.
type PageDir = Box<[Option<Box<Page>>]>;
/// Slots per page-table level: 2^10 directories × 2^10 pages = 2^20 pages.
const DIR_SLOTS: usize = 1 << 10;

/// A sparse paged memory with a 32-bit address space.
///
/// Reads of never-written memory return zeroes (fresh anonymous pages).
/// Individual pages can be marked forbidden (used by SGXBounds to poison the
/// last enclave page as an arithmetic-overflow guard, paper §4.4).
///
/// Pages live behind a two-level radix table — every load and store in the
/// simulator funnels through [`PagedMem::read`]/[`PagedMem::write`], so the
/// lookup is two array indexes rather than a hash.
pub struct PagedMem {
    dirs: Vec<Option<PageDir>>,
    committed_pages: u64,
    /// Forbidden page indexes; stays tiny (SGXBounds poisons one page), so a
    /// linear scan beats hashing on the access fast path.
    forbidden: Vec<u32>,
    /// Currently reserved virtual bytes (heap extents, shadow regions, …).
    reserved: u64,
    peak_reserved: u64,
    peak_committed_pages: u64,
}

impl Default for PagedMem {
    fn default() -> Self {
        Self::new()
    }
}

impl PagedMem {
    /// Creates an empty address space with nothing reserved.
    pub fn new() -> Self {
        PagedMem {
            dirs: vec![None; DIR_SLOTS],
            committed_pages: 0,
            forbidden: Vec::new(),
            reserved: 0,
            peak_reserved: 0,
            peak_committed_pages: 0,
        }
    }

    /// Registers `bytes` of reserved virtual memory (e.g. a shadow region).
    pub fn reserve(&mut self, bytes: u64) {
        self.reserved += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// Releases previously [`reserve`](Self::reserve)d virtual memory.
    ///
    /// # Panics
    ///
    /// Panics if more is released than is currently reserved.
    pub fn unreserve(&mut self, bytes: u64) {
        assert!(bytes <= self.reserved, "unreserve underflow");
        self.reserved -= bytes;
    }

    /// Currently reserved virtual bytes.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Peak reserved virtual bytes over the lifetime of this memory.
    ///
    /// This is the paper's memory-overhead metric (§6.1: "maximum amount of
    /// reserved virtual memory").
    pub fn peak_reserved(&self) -> u64 {
        self.peak_reserved
    }

    /// Bytes in committed (touched) pages right now.
    pub fn committed(&self) -> u64 {
        self.committed_pages * PAGE_SIZE as u64
    }

    /// Peak committed bytes over the lifetime of this memory.
    pub fn peak_committed(&self) -> u64 {
        self.peak_committed_pages * PAGE_SIZE as u64
    }

    /// Marks a page as inaccessible; any access to it faults.
    pub fn forbid_page(&mut self, page_index: u32) {
        if !self.forbidden.contains(&page_index) {
            self.forbidden.push(page_index);
        }
    }

    /// Returns `true` if the page at `page_index` is forbidden.
    pub fn is_forbidden(&self, page_index: u32) -> bool {
        self.forbidden.contains(&page_index)
    }

    /// Returns `true` if any byte of `[addr, addr + len)` lies in a
    /// forbidden page or the range wraps around the address space.
    pub fn range_faults(&self, addr: u32, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return true;
        };
        if self.forbidden.is_empty() {
            return false;
        }
        let first = addr >> PAGE_SHIFT;
        let last = end >> PAGE_SHIFT;
        (first..=last).any(|p| self.is_forbidden(p))
    }

    #[inline]
    fn page_mut(&mut self, index: u32) -> &mut Page {
        let dir = &mut self.dirs[(index >> 10) as usize];
        let dir = dir.get_or_insert_with(|| vec![None; DIR_SLOTS].into_boxed_slice());
        let slot = &mut dir[(index & 0x3FF) as usize];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE as usize]));
            self.committed_pages += 1;
            if self.committed_pages > self.peak_committed_pages {
                self.peak_committed_pages = self.committed_pages;
            }
        }
        slot.as_mut().expect("page just inserted")
    }

    /// Reads `len` (1, 2, 4, or 8) bytes at `addr`, little-endian,
    /// zero-extended to `u64`.
    ///
    /// Does not check forbidden pages; the [`crate::Machine`] front end does.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not one of 1, 2, 4, 8 or the range wraps.
    pub fn read(&mut self, addr: u32, len: u8) -> u64 {
        debug_assert!(matches!(len, 1 | 2 | 4 | 8));
        let page = addr >> PAGE_SHIFT;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + len as usize <= PAGE_SIZE as usize {
            let p = self.page_mut(page);
            // Width-specialized so each arm is a fixed-size load rather
            // than a variable-length copy (which lowers to a memcpy call
            // on the hottest path in the simulator).
            match len {
                1 => p[off] as u64,
                2 => u16::from_le_bytes([p[off], p[off + 1]]) as u64,
                4 => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]) as u64,
                _ => u64::from_le_bytes([
                    p[off],
                    p[off + 1],
                    p[off + 2],
                    p[off + 3],
                    p[off + 4],
                    p[off + 5],
                    p[off + 6],
                    p[off + 7],
                ]),
            }
        } else {
            // Crosses a page boundary: fall back to byte-wise.
            let mut v: u64 = 0;
            for i in 0..len as u32 {
                let b = self.read_byte(addr.checked_add(i).expect("read wraps address space"));
                v |= (b as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `len` (1, 2, 4, or 8) bytes of `val` at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not one of 1, 2, 4, 8 or the range wraps.
    pub fn write(&mut self, addr: u32, len: u8, val: u64) {
        debug_assert!(matches!(len, 1 | 2 | 4 | 8));
        let page = addr >> PAGE_SHIFT;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + len as usize <= PAGE_SIZE as usize {
            let p = self.page_mut(page);
            let b = val.to_le_bytes();
            // Width-specialized like `read` (fixed-size stores, no memcpy).
            match len {
                1 => p[off] = b[0],
                2 => p[off..off + 2].copy_from_slice(&b[..2]),
                4 => p[off..off + 4].copy_from_slice(&b[..4]),
                _ => p[off..off + 8].copy_from_slice(&b[..8]),
            }
        } else {
            for i in 0..len as u32 {
                let b = (val >> (8 * i)) as u8;
                self.write_byte(addr.checked_add(i).expect("write wraps address space"), b);
            }
        }
    }

    fn read_byte(&mut self, addr: u32) -> u8 {
        let p = self.page_mut(addr >> PAGE_SHIFT);
        p[(addr & (PAGE_SIZE - 1)) as usize]
    }

    fn write_byte(&mut self, addr: u32, val: u8) {
        let p = self.page_mut(addr >> PAGE_SHIFT);
        p[(addr & (PAGE_SIZE - 1)) as usize] = val;
    }

    /// Copies `len` bytes out of memory into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range wraps the address space.
    pub fn read_bytes(&mut self, addr: u32, buf: &mut [u8]) {
        let mut a = addr;
        let mut done = 0;
        while done < buf.len() {
            let page = a >> PAGE_SHIFT;
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let p = self.page_mut(page);
            buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]);
            done += chunk;
            if done < buf.len() {
                a = a
                    .checked_add(chunk as u32)
                    .expect("read wraps address space");
            }
        }
    }

    /// Copies `buf` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range wraps the address space.
    pub fn write_bytes(&mut self, addr: u32, buf: &[u8]) {
        let mut a = addr;
        let mut done = 0;
        while done < buf.len() {
            let page = a >> PAGE_SHIFT;
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let chunk = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let p = self.page_mut(page);
            p[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
            if done < buf.len() {
                a = a
                    .checked_add(chunk as u32)
                    .expect("write wraps address space");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mut m = PagedMem::new();
        assert_eq!(m.read(0x1234, 8), 0);
        assert_eq!(m.read(u32::MAX - 8, 4), 0);
    }

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = PagedMem::new();
        for (len, val) in [
            (1u8, 0xABu64),
            (2, 0xBEEF),
            (4, 0xDEAD_BEEF),
            (8, 0x0123_4567_89AB_CDEF),
        ] {
            m.write(0x8000, len, val);
            assert_eq!(m.read(0x8000, len), val, "width {len}");
        }
    }

    #[test]
    fn narrow_write_does_not_clobber_neighbours() {
        let mut m = PagedMem::new();
        m.write(0x100, 8, u64::MAX);
        m.write(0x102, 1, 0);
        assert_eq!(m.read(0x100, 8), 0xFFFF_FFFF_FF00_FFFF);
        assert_eq!(m.read(0x102, 1), 0);
        assert_eq!(m.read(0x103, 1), 0xFF);
    }

    #[test]
    fn cross_page_access_roundtrips() {
        let mut m = PagedMem::new();
        let addr = PAGE_SIZE - 3; // Crosses into page 1.
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        // Both pages were committed.
        assert_eq!(m.committed(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn bulk_bytes_roundtrip_across_pages() {
        let mut m = PagedMem::new();
        let data: Vec<u8> = (0..10000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(PAGE_SIZE - 100, &data);
        let mut back = vec![0u8; data.len()];
        m.read_bytes(PAGE_SIZE - 100, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn reservation_peak_tracking() {
        let mut m = PagedMem::new();
        m.reserve(100);
        m.reserve(50);
        m.unreserve(120);
        m.reserve(10);
        assert_eq!(m.reserved(), 40);
        assert_eq!(m.peak_reserved(), 150);
    }

    #[test]
    fn forbidden_page_detection() {
        let mut m = PagedMem::new();
        m.forbid_page(10);
        assert!(m.range_faults(10 * PAGE_SIZE, 1));
        assert!(m.range_faults(10 * PAGE_SIZE - 1, 2));
        assert!(!m.range_faults(10 * PAGE_SIZE - 1, 1));
        assert!(!m.range_faults(11 * PAGE_SIZE, 8));
        // Wrapping ranges always fault.
        assert!(m.range_faults(u32::MAX, 2));
    }

    #[test]
    fn committed_peak_grows_monotonically() {
        let mut m = PagedMem::new();
        m.write(0, 1, 1);
        m.write(5 * PAGE_SIZE, 1, 1);
        assert_eq!(m.peak_committed(), 2 * PAGE_SIZE as u64);
    }
}
