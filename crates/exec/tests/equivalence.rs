//! In-crate equivalence pins: the compiled tier must be bit-identical to
//! the reference interpreter on real workloads — results, cycles,
//! instruction/branch counters, memory peaks, output, and the complete
//! observability event stream (digest + count). The corpus-wide and
//! chaos-campaign oracles live in the repository-level test suite; these
//! are the fast, always-on versions.

use sgxbounds::SbConfig;
use sgxs_mir::{verify, Module, RunOutcome, Vm, VmConfig};
use sgxs_rt::{install_base, AllocOpts, Stager};
use sgxs_sim::obs::TraceRecorder;
use sgxs_sim::{MachineConfig, Mode, Preset, Stats};
use sgxs_workloads::apps::nginx;
use sgxs_workloads::apps::server::INPUT_BYTES;
use sgxs_workloads::{by_name, Params};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a run exposes, in one comparable value.
type Key = (
    Result<u64, String>,
    u64,         // wall_cycles
    u64,         // cpu_cycles
    Stats,       // instructions, branches, cache/EPC counters
    u64,         // peak_reserved
    u64,         // peak_committed
    Vec<String>, // output
    u64,         // event digest
    u64,         // event count
);

fn key(o: &RunOutcome, rec: &Rc<RefCell<TraceRecorder>>) -> Key {
    (
        o.result.clone().map_err(|t| t.to_string()),
        o.wall_cycles,
        o.cpu_cycles,
        o.stats,
        o.peak_reserved,
        o.peak_committed,
        o.output.clone(),
        rec.borrow().digest(),
        rec.borrow().events(),
    )
}

fn instrumented_module(name: &str) -> Module {
    let p = Params::new(MachineConfig::scale_of(Preset::Tiny));
    let w = by_name(name).expect("workload exists");
    let mut module = w.build(&p);
    sgxbounds::instrument(&mut module, &SbConfig::default()).expect("instrumentation");
    verify(&module).expect("module verifies");
    module
}

/// Benchmarks with threads, atomics, floats, and indirect calls all agree.
#[test]
fn workloads_are_bit_identical_across_tiers() {
    for name in ["kmeans", "histogram", "swaptions"] {
        let p = Params::new(MachineConfig::scale_of(Preset::Tiny));
        let w = by_name(name).expect("workload exists");
        let mut module = w.build(&p);
        sgxbounds::instrument(&mut module, &SbConfig::default()).expect("instrumentation");
        verify(&module).expect("module verifies");
        let run = |compiled: bool| -> Key {
            let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
            cfg.max_instructions = 400_000_000;
            let mut vm = Vm::new(&module, cfg);
            let rec = Rc::new(RefCell::new(TraceRecorder::new(256)));
            vm.machine.set_recorder(Some(rec.clone()));
            let heap = install_base(&mut vm, AllocOpts::default());
            sgxbounds::install_sgxbounds(&mut vm, heap, &SbConfig::default(), None);
            let mut st = Stager::new();
            let args = w.stage(&mut vm, &mut st, &p);
            if compiled {
                sgxs_exec::attach(&mut vm);
            }
            let out = vm.run("main", &args);
            key(&out, &rec)
        };
        let reference = run(false);
        let compiled = run(true);
        assert_eq!(reference, compiled, "tier divergence on {name}");
        assert!(reference.0.is_ok(), "{name} failed: {:?}", reference.0);
    }
}

/// The nginx server app (setup + per-request entry points, re-running the
/// same VM) agrees request-for-request.
#[test]
fn server_requests_are_bit_identical_across_tiers() {
    let mut module = nginx::server_module();
    sgxbounds::instrument(&mut module, &SbConfig::default()).expect("instrumentation");
    verify(&module).expect("module verifies");
    let run = |compiled: bool| -> Vec<(u64, u64, u64)> {
        let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        cfg.max_instructions = 500_000_000;
        let mut vm = Vm::new(&module, cfg);
        let heap = install_base(&mut vm, AllocOpts::default());
        sgxbounds::install_sgxbounds(&mut vm, heap, &SbConfig::default(), None);
        if compiled {
            sgxs_exec::attach(&mut vm);
        }
        let input: Vec<u8> = (0..INPUT_BYTES).map(|i| (i % 251 + 1) as u8).collect();
        let mut st = Stager::new();
        let addr = st.stage(&mut vm, &input);
        vm.run("setup", &[addr as u64, INPUT_BYTES as u64])
            .result
            .expect("setup");
        (0..12u32)
            .map(|r| {
                let out = vm.run("handle", &[r as u64, 16 + (r as u64 * 37) % 180, 64]);
                (
                    out.result.expect("benign request"),
                    out.wall_cycles,
                    out.stats.instructions,
                )
            })
            .collect()
    };
    assert_eq!(run(false), run(true));
}

/// A trapping program traps identically: same trap, same counters.
#[test]
fn traps_are_bit_identical_across_tiers() {
    let p = Params::new(MachineConfig::scale_of(Preset::Tiny));
    let w = by_name("kmeans").expect("workload exists");
    let mut module = w.build(&p);
    sgxbounds::instrument(&mut module, &SbConfig::default()).expect("instrumentation");
    verify(&module).expect("module verifies");
    // Run with a tiny instruction budget: both tiers must hit the limit at
    // the same quantum with identical partial counters.
    let run = |compiled: bool| -> Key {
        let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        cfg.max_instructions = 10_000;
        let mut vm = Vm::new(&module, cfg);
        let rec = Rc::new(RefCell::new(TraceRecorder::new(64)));
        vm.machine.set_recorder(Some(rec.clone()));
        let heap = install_base(&mut vm, AllocOpts::default());
        sgxbounds::install_sgxbounds(&mut vm, heap, &SbConfig::default(), None);
        let mut st = Stager::new();
        let args = w.stage(&mut vm, &mut st, &p);
        if compiled {
            sgxs_exec::attach(&mut vm);
        }
        let out = vm.run("main", &args);
        key(&out, &rec)
    };
    let reference = run(false);
    assert!(
        reference.0.is_err(),
        "expected the instruction limit to hit"
    );
    assert_eq!(reference, run(true));
}

/// The deliberate perturbation hook diverges — the oracle can fail.
#[test]
fn perturbed_engine_is_caught() {
    let p = Params::new(MachineConfig::scale_of(Preset::Tiny));
    let w = by_name("histogram").expect("workload exists");
    let mut module = w.build(&p);
    sgxbounds::instrument(&mut module, &SbConfig::default()).expect("instrumentation");
    verify(&module).expect("module verifies");
    let run = |mode: u8| -> u64 {
        let cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        let mut vm = Vm::new(&module, cfg);
        let heap = install_base(&mut vm, AllocOpts::default());
        sgxbounds::install_sgxbounds(&mut vm, heap, &SbConfig::default(), None);
        let mut st = Stager::new();
        let args = w.stage(&mut vm, &mut st, &p);
        match mode {
            1 => sgxs_exec::attach(&mut vm),
            2 => sgxs_exec::attach_perturbed(&mut vm),
            _ => {}
        }
        vm.run("main", &args).wall_cycles
    };
    assert_eq!(run(0), run(1), "clean compiled tier must agree");
    assert_ne!(run(0), run(2), "perturbed tier must diverge");
}

/// Lowered code survives display -> parse bit-for-bit.
#[test]
fn lowered_text_round_trips() {
    let module = instrumented_module("kmeans");
    let cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
    let vm = Vm::new(&module, cfg);
    let engine = sgxs_exec::compile(&vm);
    for code in engine.code() {
        let text = sgxs_exec::text::display_func(code);
        let p = sgxs_exec::text::parse_func(&text).expect("parses back");
        assert_eq!(p.name, code.name);
        assert_eq!(p.nregs, code.nregs, "nregs drifted for {}", p.name);
        assert_eq!(
            p.consts.as_slice(),
            &code.consts[..],
            "consts drifted for {}",
            p.name
        );
        assert_eq!(
            p.ops.as_slice(),
            &code.ops[..],
            "ops drifted for {}",
            p.name
        );
        assert_eq!(
            p.block_start.as_slice(),
            &code.block_start[..],
            "block starts drifted for {}",
            p.name
        );
    }
}
