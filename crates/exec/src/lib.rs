#![warn(missing_docs)]

//! `sgxs-exec` — the pre-compiled fast execution tier for the MIR VM.
//!
//! The reference interpreter in `sgxs-mir` walks the IR tree per
//! instruction: three indexed lookups to find the current instruction, an
//! operand decode, and a cost-model match, every step. This crate lowers
//! each function once into a dense opcode array ([`lower::FuncCode`]) —
//! resolved jump offsets, interned operands, pre-resolved global/function
//! addresses, baked cycle charges, inline caches for indirect calls, and
//! superinstruction fusion over the trap-free register runs the sgxbounds
//! passes emit (`gep → extract-bounds → compare` chains) — then executes it
//! with a flat dispatch loop ([`engine::CompiledEngine`]).
//!
//! **The tier is pinned bit-identical to the reference interpreter**: same
//! digests, same named stats counters, same cycle charges, same obs events
//! in the same order, same trap and recovery behavior (DESIGN.md §10
//! documents the oracle; `tests/tier_equivalence.rs` and the CI
//! tier-equivalence job enforce it corpus-wide). Selection is by
//! [`sgxs_sim::ExecTier`] threaded through every runner, with
//! `ExecTier::Reference` staying the default oracle.
//!
//! ```no_run
//! # use sgxs_mir::{Vm, VmConfig, Module};
//! # use sgxs_sim::{MachineConfig, Mode, Preset};
//! # let module: Module = unimplemented!();
//! let mut vm = Vm::new(&module, VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave)));
//! // ... install runtimes/schemes ...
//! sgxs_exec::attach(&mut vm);   // from here on, quanta run on the fast tier
//! let out = vm.run("main", &[]);
//! ```

pub mod engine;
pub mod lower;
pub mod text;

pub use engine::CompiledEngine;
pub use lower::{FuncCode, Op};

use sgxs_mir::Vm;

/// Lowers `vm`'s module and returns the compiled engine (not yet
/// installed). The lowering snapshots the global address layout and cost
/// model, both fixed for the VM's lifetime.
pub fn compile(vm: &Vm<'_>) -> CompiledEngine {
    let cost = vm.config().machine.cost;
    let mut ic_count = 0u32;
    let globals: Vec<u32> = (0..vm.module.globals.len())
        .map(|g| vm.global_addr(sgxs_mir::GlobalId(g as u32)))
        .collect();
    let lookup = |g: u32| globals[g as usize];
    let funcs: Vec<FuncCode> = vm
        .module
        .funcs
        .iter()
        .map(|f| lower::lower_func(f, &lookup, &cost, &mut ic_count))
        .collect();
    let arity: Vec<u32> = vm
        .module
        .funcs
        .iter()
        .map(|f| f.params.len() as u32)
        .collect();
    CompiledEngine::new(funcs, arity, ic_count, cost, vm.config().quantum)
}

/// Compiles `vm`'s module and installs the fast tier. Call after `Vm::new`
/// (any time before `run`; installed runtimes are unaffected because
/// intrinsic binding stays in the VM).
pub fn attach(vm: &mut Vm<'_>) {
    let engine = compile(vm);
    vm.set_frame_consts(engine.const_pools());
    vm.set_engine(Box::new(engine));
}

/// Test hook: installs the fast tier with a deliberate single-cycle
/// accounting fault on the first executed op. The tier-equivalence oracle
/// must flag the resulting run as divergent — the CI negative test that
/// proves the gate can fail.
pub fn attach_perturbed(vm: &mut Vm<'_>) {
    let mut engine = compile(vm);
    engine.perturb = true;
    vm.set_frame_consts(engine.const_pools());
    vm.set_engine(Box::new(engine));
}
