//! The compiled tier's dispatch loop.
//!
//! [`CompiledEngine`] implements [`QuantumEngine`]: it replaces only the
//! reference interpreter's inner instruction loop. Everything that could
//! drift — scheduling, intrinsic dispatch, call-frame construction, return
//! bookkeeping, recovery — is delegated back to the VM through its engine
//! entry points, so both tiers share one implementation of the cold paths.
//!
//! Bit-identity invariants replicated here (see DESIGN.md §10):
//!
//! - `stats.instructions` increments *before* an op executes; site markers
//!   are consumed uncounted and uncharged, and only while quantum slots
//!   remain (a marker after the quantum's last counted op waits for the
//!   next quantum, preserving event order across thread interleavings).
//!   The engine accumulates the counter in a register and syncs it before
//!   anything that can observe it — memory accesses (EPC events timestamp
//!   with it), event emission, intrinsics, calls/returns, traps, and
//!   quantum exit — so every observable read sees the exact value.
//! - Cycle charges per op match the reference exactly, including the
//!   zero-cost `ReadLocal`/`WriteLocal` and the charge-after-success rule
//!   for trapping ops (a trapped op retires in the instruction counter but
//!   charges nothing).
//! - On any trap or block, the exact `(block, ip)` of the responsible op is
//!   written back to the frame, so retries and wakeups re-enter exactly
//!   where the reference would.
//! - Fused runs execute only when the whole run fits in the remaining
//!   quantum; otherwise each op runs individually.

use crate::lower::{FuncCode, Op};
use sgxs_mir::interp::func_of_code_addr;
use sgxs_mir::{BinOp, CastKind, CmpOp, FBinOp, FCmpOp, Frame, QuantumEngine, Reg, Trap, Vm};
use sgxs_sim::obs::Event;
use sgxs_sim::CostModel;

/// Inline-cache entry for one `CallIndirect` site: the last validated
/// target address and the function index it resolved to. Code addresses
/// are never 0, so 0 marks an empty slot.
#[derive(Debug, Clone, Copy)]
struct IC {
    target: u64,
    func: u32,
}

/// The pre-lowered fast execution tier (install with [`crate::attach`]).
pub struct CompiledEngine {
    funcs: Box<[FuncCode]>,
    /// Per-function parameter count, for indirect-call validation.
    arity: Box<[u32]>,
    ics: Vec<IC>,
    argbuf: Vec<u64>,
    /// Cost model snapshot (fixed for the VM's lifetime, like the charges
    /// already baked into the lowered ops).
    cost: CostModel,
    /// Scheduling quantum snapshot.
    quantum: u32,
    /// Test hook: charge one bogus cycle on the next executed op. Used by
    /// the negative tier-equivalence test to prove the oracle trips.
    pub(crate) perturb: bool,
}

impl CompiledEngine {
    pub(crate) fn new(
        funcs: Vec<FuncCode>,
        arity: Vec<u32>,
        ic_count: u32,
        cost: CostModel,
        quantum: u32,
    ) -> Self {
        CompiledEngine {
            funcs: funcs.into_boxed_slice(),
            arity: arity.into_boxed_slice(),
            ics: vec![IC { target: 0, func: 0 }; ic_count as usize],
            argbuf: Vec::new(),
            cost,
            quantum,
            perturb: false,
        }
    }

    /// The lowered code of every function (used by the text round-trip).
    pub fn code(&self) -> &[FuncCode] {
        &self.funcs
    }

    /// The per-function frame constant pools (install with
    /// `Vm::set_frame_consts`).
    pub fn const_pools(&self) -> Vec<Box<[u64]>> {
        self.funcs.iter().map(|f| f.consts.clone()).collect()
    }
}

#[inline(always)]
fn bin_val(op: BinOp, x: u64, y: u64) -> u64 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::LShr => x.wrapping_shr(y as u32),
        BinOp::AShr => ((x as i64).wrapping_shr(y as u32)) as u64,
        // Division is lowered to Op::DivRem, never Op::Bin.
        BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => unreachable!("div in Op::Bin"),
    }
}

#[inline(always)]
fn cmp_val(op: CmpOp, x: u64, y: u64) -> u64 {
    let v = match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::ULt => x < y,
        CmpOp::ULe => x <= y,
        CmpOp::UGt => x > y,
        CmpOp::UGe => x >= y,
        CmpOp::SLt => (x as i64) < y as i64,
        CmpOp::SLe => (x as i64) <= y as i64,
        CmpOp::SGt => (x as i64) > y as i64,
        CmpOp::SGe => (x as i64) >= y as i64,
    };
    v as u64
}

#[inline(always)]
fn fbin_val(op: FBinOp, xb: u64, yb: u64) -> u64 {
    let x = f64::from_bits(xb);
    let y = f64::from_bits(yb);
    let v = match op {
        FBinOp::Add => x + y,
        FBinOp::Sub => x - y,
        FBinOp::Mul => x * y,
        FBinOp::Div => x / y,
        FBinOp::Min => x.min(y),
        FBinOp::Max => x.max(y),
    };
    v.to_bits()
}

#[inline(always)]
fn fcmp_val(op: FCmpOp, xb: u64, yb: u64) -> u64 {
    let x = f64::from_bits(xb);
    let y = f64::from_bits(yb);
    let v = match op {
        FCmpOp::Eq => x == y,
        FCmpOp::Ne => x != y,
        FCmpOp::Lt => x < y,
        FCmpOp::Le => x <= y,
        FCmpOp::Gt => x > y,
        FCmpOp::Ge => x >= y,
    };
    v as u64
}

#[inline(always)]
fn cast_val(kind: CastKind, x: u64) -> u64 {
    match kind {
        CastKind::Sext(8) => (x as i8) as i64 as u64,
        CastKind::Sext(16) => (x as i16) as i64 as u64,
        CastKind::Sext(32) => (x as i32) as i64 as u64,
        CastKind::Sext(_) => x,
        CastKind::Trunc(n) => {
            if n >= 64 {
                x
            } else {
                x & ((1u64 << n) - 1)
            }
        }
        CastKind::SiToF => ((x as i64) as f64).to_bits(),
        CastKind::UiToF => (x as f64).to_bits(),
        CastKind::FToSi => (f64::from_bits(x) as i64) as u64,
        CastKind::Bitcast => x,
        CastKind::FAbs => f64::from_bits(x).abs().to_bits(),
        CastKind::FSqrt => f64::from_bits(x).sqrt().to_bits(),
    }
}

/// Executes one trap-free register-only op (a fused-run constituent)
/// without touching counters. Semantics shared with the main dispatch via
/// the `*_val` helpers above.
#[inline(always)]
fn exec_pure(op: &Op, frame: &mut Frame) {
    let regs = &mut frame.regs;
    match op {
        Op::Bin { op, dst, a, b, .. } => {
            let v = bin_val(*op, regs[*a as usize], regs[*b as usize]);
            regs[*dst as usize] = v;
        }
        Op::Cmp { op, dst, a, b } => {
            let v = cmp_val(*op, regs[*a as usize], regs[*b as usize]);
            regs[*dst as usize] = v;
        }
        Op::FBin { op, dst, a, b, .. } => {
            let v = fbin_val(*op, regs[*a as usize], regs[*b as usize]);
            regs[*dst as usize] = v;
        }
        Op::FCmp { op, dst, a, b } => {
            let v = fcmp_val(*op, regs[*a as usize], regs[*b as usize]);
            regs[*dst as usize] = v;
        }
        Op::Cast { kind, dst, src, .. } => {
            let v = cast_val(*kind, regs[*src as usize]);
            regs[*dst as usize] = v;
        }
        Op::Select { dst, cond, t, f } => {
            let i = if regs[*cond as usize] != 0 { *t } else { *f };
            regs[*dst as usize] = regs[i as usize];
        }
        Op::Gep {
            dst,
            base,
            index,
            scale,
            disp,
        } => {
            let v = regs[*base as usize]
                .wrapping_add(regs[*index as usize].wrapping_mul(*scale as u64))
                .wrapping_add(*disp as u64);
            regs[*dst as usize] = v;
        }
        Op::ReadLocal { dst, local } => {
            regs[*dst as usize] = frame.locals[*local as usize];
        }
        Op::WriteLocal { local, val } => {
            frame.locals[*local as usize] = regs[*val as usize];
        }
        Op::SlotAddr { dst, slot } => {
            regs[*dst as usize] = frame.slots[*slot as usize] as u64;
        }
        Op::Addr { dst, imm } => {
            regs[*dst as usize] = *imm;
        }
        _ => unreachable!("non-pure op in fused run"),
    }
}

/// What the inner loop hands back to the outer (vm-borrow-free) loop.
enum Pending {
    /// Push a frame for `func`; args are in the scratch buffer, the
    /// caller's ip is already advanced and the call cost charged.
    Call { func: u32, ret_dst: Option<Reg> },
    /// Run intrinsic `idx`; the frame's ip points *at* the CallIntrinsic op
    /// located at `pc`.
    Intrinsic {
        idx: u32,
        dst: Option<u32>,
        pc: usize,
    },
    /// Pop the frame, returning `val`.
    Ret { val: u64 },
}

impl QuantumEngine for CompiledEngine {
    fn run_quantum(&mut self, vm: &mut Vm<'_>, tid: usize) -> Result<(), Trap> {
        let CompiledEngine {
            funcs,
            arity,
            ics,
            argbuf,
            cost,
            quantum,
            perturb,
        } = self;
        let cost = *cost;
        let quantum = *quantum;
        let max_insts = vm.config().max_instructions;
        let mut left = quantum;
        'outer: loop {
            if !vm.engine_runnable(tid) {
                return Ok(());
            }
            let (rival_lo, rival_hi) = vm.engine_rival_cycles(tid);
            let hot = vm.engine_hot(tid);
            let machine = hot.machine;
            let frame = hot.frame;
            let cycles = hot.cycles;
            let obs_site = hot.obs_site;
            let core = hot.core;
            let code = &funcs[frame.func];
            let mut pc = code.pc_of(frame.block, frame.ip);
            if *perturb {
                // Deliberate single-cycle accounting fault (test hook).
                *perturb = false;
                *cycles += 1;
            }
            // Retired ops, branches, and cycle charges accumulated in
            // locals; synced to the machine counters and the thread's cycle
            // clock before anything that can observe them.
            let mut done: u64 = 0;
            let mut brs: u64 = 0;
            let mut cyc_acc: u64 = 0;
            macro_rules! sync {
                () => {{
                    machine.stats.instructions += done;
                    machine.stats.branches += brs;
                    *cycles += cyc_acc;
                    // Dead at return sites, live at continue sites.
                    #[allow(unused_assignments)]
                    {
                        done = 0;
                        brs = 0;
                        cyc_acc = 0;
                    }
                }};
            }
            // Flush the architectural (block, ip) and counters on the way
            // out of the quantum (trap, block, or slots exhausted).
            macro_rules! flush {
                ($pc:expr) => {{
                    let (b, i) = code.loc[$pc];
                    frame.block = b;
                    frame.ip = i;
                    sync!();
                }};
            }
            let pending = loop {
                if left == 0 {
                    // Quantum exhausted. The scheduler round-trip is
                    // unobservable when this thread would be re-picked and
                    // the instruction limit is not hit (see
                    // `Vm::engine_rival_cycles`), so refill in place.
                    sync!();
                    if machine.stats.instructions <= max_insts
                        && *cycles < rival_lo
                        && *cycles <= rival_hi
                    {
                        left = quantum;
                        continue;
                    }
                    let (b, i) = code.loc[pc];
                    frame.block = b;
                    frame.ip = i;
                    return Ok(());
                }
                // One dispatch per iteration: superinstruction headers,
                // site markers, and plain ops are all arms of a single
                // match. `ct!()` retires one instruction (the reference
                // counts before an op executes); headers batch their own
                // counts and `continue`, falling through to per-op
                // stepping of their constituents when the sequence does
                // not fit the remaining quantum.
                macro_rules! ct {
                    () => {{
                        done += 1;
                        left -= 1;
                    }};
                }
                match &code.ops[pc] {
                    // Site markers: transparent, consumed outside the
                    // counted stream (identical to the reference prelude).
                    Op::Site { site, begin } => {
                        if machine.obs_enabled() {
                            sync!();
                            if *begin {
                                *obs_site = Some((*site, *cycles));
                                if machine.spans_enabled() {
                                    machine.emit(Event::SpanBegin {
                                        name: "check",
                                        arg: *site as u64,
                                    });
                                }
                            } else if let Some((begin_site, at)) = obs_site.take() {
                                machine.emit(Event::CheckExec {
                                    site: begin_site,
                                    cycles: cycles.saturating_sub(at),
                                });
                                // Emission order pinned to the interpreter:
                                // CheckExec first, then the span close.
                                if machine.spans_enabled() {
                                    machine.emit(Event::SpanEnd { name: "check" });
                                }
                            }
                        }
                    }
                    Op::Fused { len, cyc } => {
                        if left >= *len {
                            for op in &code.ops[pc + 1..pc + 1 + *len as usize] {
                                exec_pure(op, frame);
                            }
                            done += *len as u64;
                            cyc_acc += cyc;
                            left -= *len;
                            pc += 1 + *len as usize;
                            continue;
                        }
                        // Does not fit: step the constituents one at a time.
                    }
                    Op::FusedLoad { len, cyc } => {
                        if left > *len {
                            for op in &code.ops[pc + 1..pc + 1 + *len as usize] {
                                exec_pure(op, frame);
                            }
                            done += *len as u64 + 1;
                            cyc_acc += cyc;
                            left -= *len + 1;
                            let lpc = pc + 1 + *len as usize;
                            let Op::Load { dst, addr, width } = &code.ops[lpc] else {
                                unreachable!("FusedLoad not followed by a load")
                            };
                            let a = frame.regs[*addr as usize];
                            sync!();
                            match machine.load(core, a, *width) {
                                Ok((v, c)) => {
                                    frame.regs[*dst as usize] = v;
                                    cyc_acc += c;
                                }
                                Err(e) => {
                                    flush!(lpc);
                                    return Err(Trap::Mem(e));
                                }
                            }
                            pc = lpc + 1;
                            continue;
                        }
                    }
                    Op::FusedStore { len, cyc } => {
                        if left > *len {
                            for op in &code.ops[pc + 1..pc + 1 + *len as usize] {
                                exec_pure(op, frame);
                            }
                            done += *len as u64 + 1;
                            cyc_acc += cyc;
                            left -= *len + 1;
                            let spc = pc + 1 + *len as usize;
                            let Op::Store { addr, val, width } = &code.ops[spc] else {
                                unreachable!("FusedStore not followed by a store")
                            };
                            let a = frame.regs[*addr as usize];
                            let v = frame.regs[*val as usize];
                            sync!();
                            match machine.store(core, a, *width, v) {
                                Ok(c) => cyc_acc += c,
                                Err(e) => {
                                    flush!(spc);
                                    return Err(Trap::Mem(e));
                                }
                            }
                            pc = spc + 1;
                            continue;
                        }
                    }
                    Op::FusedBr { len, cyc } => {
                        if left > *len {
                            for op in &code.ops[pc + 1..pc + 1 + *len as usize] {
                                exec_pure(op, frame);
                            }
                            done += *len as u64 + 1;
                            brs += 1;
                            cyc_acc += cyc;
                            left -= *len + 1;
                            let Op::Br { cond, t, f } = &code.ops[pc + 1 + *len as usize] else {
                                unreachable!("FusedBr not followed by a branch")
                            };
                            let c = frame.regs[*cond as usize];
                            pc = (if c != 0 { *t } else { *f }) as usize;
                            continue;
                        }
                    }
                    Op::FusedJmp { len, cyc } => {
                        if left > *len {
                            for op in &code.ops[pc + 1..pc + 1 + *len as usize] {
                                exec_pure(op, frame);
                            }
                            done += *len as u64 + 1;
                            cyc_acc += cyc;
                            left -= *len + 1;
                            let Op::Jmp { target } = &code.ops[pc + 1 + *len as usize] else {
                                unreachable!("FusedJmp not followed by a jump")
                            };
                            pc = *target as usize;
                            continue;
                        }
                    }
                    Op::SbCheck { cyc_pre, cyc_post } => {
                        if left >= 8 {
                            // The whole check runs straight-line: the
                            // lowering pattern pinned each constituent's
                            // opcode, so the semantics are hardcoded here
                            // (destructuring only re-checks the shape) and
                            // no per-op dispatch happens. Values are
                            // re-read from the register file between steps,
                            // so operand aliasing behaves exactly as
                            // per-op execution.
                            let (
                                &Op::Bin {
                                    dst: d0,
                                    a: a0,
                                    b: b0,
                                    ..
                                },
                                &Op::Bin {
                                    dst: d1,
                                    a: a1,
                                    b: b1,
                                    ..
                                },
                                &Op::Bin {
                                    dst: d2,
                                    a: a2,
                                    b: b2,
                                    ..
                                },
                                &Op::Cmp {
                                    dst: d3,
                                    a: a3,
                                    b: b3,
                                    ..
                                },
                                &Op::Load { dst, addr, width },
                                &Op::Cmp {
                                    dst: d5,
                                    a: a5,
                                    b: b5,
                                    ..
                                },
                                &Op::Bin {
                                    dst: d6,
                                    a: a6,
                                    b: b6,
                                    ..
                                },
                                &Op::Br { cond, t, f },
                            ) = (
                                &code.ops[pc + 1],
                                &code.ops[pc + 2],
                                &code.ops[pc + 3],
                                &code.ops[pc + 4],
                                &code.ops[pc + 5],
                                &code.ops[pc + 6],
                                &code.ops[pc + 7],
                                &code.ops[pc + 8],
                            )
                            else {
                                unreachable!("SbCheck constituents out of shape")
                            };
                            let r = &mut frame.regs;
                            // and: lower bound from the tagged pointer.
                            r[d0 as usize] = r[a0 as usize] & r[b0 as usize];
                            // lshr: upper-bound pointer from the tag.
                            r[d1 as usize] = r[a1 as usize].wrapping_shr(r[b1 as usize] as u32);
                            // add: end of the access.
                            r[d2 as usize] = r[a2 as usize].wrapping_add(r[b2 as usize]);
                            // cmp.ugt: past the upper bound?
                            r[d3 as usize] = (r[a3 as usize] > r[b3 as usize]) as u64;
                            done += 5;
                            cyc_acc += cyc_pre;
                            left -= 8;
                            // Lower-bound fetch (the one op that can trap;
                            // it retires before executing, like the
                            // reference, and charges only on success).
                            let a = frame.regs[addr as usize];
                            sync!();
                            match machine.load(core, a, width) {
                                Ok((v, c)) => {
                                    frame.regs[dst as usize] = v;
                                    cyc_acc += c;
                                }
                                Err(e) => {
                                    flush!(pc + 5);
                                    return Err(Trap::Mem(e));
                                }
                            }
                            let r = &mut frame.regs;
                            // cmp.ult: before the lower bound?
                            r[d5 as usize] = (r[a5 as usize] < r[b5 as usize]) as u64;
                            // or: combined verdict.
                            r[d6 as usize] = r[a6 as usize] | r[b6 as usize];
                            done += 3;
                            brs += 1;
                            cyc_acc += cyc_post;
                            let c = frame.regs[cond as usize];
                            pc = (if c != 0 { t } else { f }) as usize;
                            continue;
                        }
                    }
                    Op::Bin { op, dst, a, b, cyc } => {
                        ct!();
                        let x = frame.regs[*a as usize];
                        let y = frame.regs[*b as usize];
                        frame.regs[*dst as usize] = bin_val(*op, x, y);
                        cyc_acc += cyc;
                    }
                    Op::DivRem { op, dst, a, b } => {
                        ct!();
                        let x = frame.regs[*a as usize];
                        let y = frame.regs[*b as usize];
                        if y == 0 {
                            flush!(pc);
                            return Err(Trap::DivByZero);
                        }
                        frame.regs[*dst as usize] = match op {
                            BinOp::UDiv => x / y,
                            BinOp::SDiv => (x as i64).wrapping_div(y as i64) as u64,
                            BinOp::URem => x % y,
                            BinOp::SRem => (x as i64).wrapping_rem(y as i64) as u64,
                            _ => unreachable!("non-division in Op::DivRem"),
                        };
                        cyc_acc += cost.div;
                    }
                    Op::Cmp { op, dst, a, b } => {
                        ct!();
                        let x = frame.regs[*a as usize];
                        let y = frame.regs[*b as usize];
                        frame.regs[*dst as usize] = cmp_val(*op, x, y);
                        cyc_acc += cost.alu;
                    }
                    Op::FBin { op, dst, a, b, cyc } => {
                        ct!();
                        let x = frame.regs[*a as usize];
                        let y = frame.regs[*b as usize];
                        frame.regs[*dst as usize] = fbin_val(*op, x, y);
                        cyc_acc += cyc;
                    }
                    Op::FCmp { op, dst, a, b } => {
                        ct!();
                        let x = frame.regs[*a as usize];
                        let y = frame.regs[*b as usize];
                        frame.regs[*dst as usize] = fcmp_val(*op, x, y);
                        cyc_acc += cost.fsimple;
                    }
                    Op::Cast {
                        kind,
                        dst,
                        src,
                        cyc,
                    } => {
                        ct!();
                        let x = frame.regs[*src as usize];
                        frame.regs[*dst as usize] = cast_val(*kind, x);
                        cyc_acc += cyc;
                    }
                    Op::Select { dst, cond, t, f } => {
                        ct!();
                        let c = frame.regs[*cond as usize];
                        let i = if c != 0 { *t } else { *f };
                        frame.regs[*dst as usize] = frame.regs[i as usize];
                        cyc_acc += cost.alu;
                    }
                    Op::Gep {
                        dst,
                        base,
                        index,
                        scale,
                        disp,
                    } => {
                        ct!();
                        let b = frame.regs[*base as usize];
                        let i = frame.regs[*index as usize];
                        frame.regs[*dst as usize] = b
                            .wrapping_add(i.wrapping_mul(*scale as u64))
                            .wrapping_add(*disp as u64);
                        cyc_acc += cost.gep;
                    }
                    Op::Load { dst, addr, width } => {
                        ct!();
                        let a = frame.regs[*addr as usize];
                        sync!();
                        match machine.load(core, a, *width) {
                            Ok((v, c)) => {
                                frame.regs[*dst as usize] = v;
                                cyc_acc += c;
                            }
                            Err(e) => {
                                flush!(pc);
                                return Err(Trap::Mem(e));
                            }
                        }
                    }
                    Op::Store { addr, val, width } => {
                        ct!();
                        let a = frame.regs[*addr as usize];
                        let v = frame.regs[*val as usize];
                        sync!();
                        match machine.store(core, a, *width, v) {
                            Ok(c) => cyc_acc += c,
                            Err(e) => {
                                flush!(pc);
                                return Err(Trap::Mem(e));
                            }
                        }
                    }
                    Op::AtomicRmw {
                        op,
                        dst,
                        addr,
                        val,
                        width,
                    } => {
                        ct!();
                        let a = frame.regs[*addr as usize];
                        let v = frame.regs[*val as usize];
                        sync!();
                        let (old, c1) = match machine.load(core, a, *width) {
                            Ok(r) => r,
                            Err(e) => {
                                flush!(pc);
                                return Err(Trap::Mem(e));
                            }
                        };
                        let new = match op {
                            BinOp::Add => old.wrapping_add(v),
                            BinOp::Sub => old.wrapping_sub(v),
                            BinOp::And => old & v,
                            BinOp::Or => old | v,
                            BinOp::Xor => old ^ v,
                            _ => v, // Exchange semantics for other ops.
                        };
                        let c2 = match machine.store(core, a, *width, new) {
                            Ok(c) => c,
                            Err(e) => {
                                flush!(pc);
                                return Err(Trap::Mem(e));
                            }
                        };
                        frame.regs[*dst as usize] = old;
                        cyc_acc += c1 + c2 + cost.atomic_extra;
                    }
                    Op::AtomicCas {
                        dst,
                        addr,
                        expected,
                        new,
                        width,
                    } => {
                        ct!();
                        let a = frame.regs[*addr as usize];
                        let exp = frame.regs[*expected as usize];
                        let newv = frame.regs[*new as usize];
                        sync!();
                        let (old, c1) = match machine.load(core, a, *width) {
                            Ok(r) => r,
                            Err(e) => {
                                flush!(pc);
                                return Err(Trap::Mem(e));
                            }
                        };
                        let mut c2 = 0;
                        if old == exp {
                            c2 = match machine.store(core, a, *width, newv) {
                                Ok(c) => c,
                                Err(e) => {
                                    flush!(pc);
                                    return Err(Trap::Mem(e));
                                }
                            };
                        }
                        frame.regs[*dst as usize] = old;
                        cyc_acc += c1 + c2 + cost.atomic_extra;
                    }
                    Op::ReadLocal { dst, local } => {
                        ct!();
                        frame.regs[*dst as usize] = frame.locals[*local as usize];
                    }
                    Op::WriteLocal { local, val } => {
                        ct!();
                        frame.locals[*local as usize] = frame.regs[*val as usize];
                    }
                    Op::SlotAddr { dst, slot } => {
                        ct!();
                        frame.regs[*dst as usize] = frame.slots[*slot as usize] as u64;
                        cyc_acc += cost.alu;
                    }
                    Op::Addr { dst, imm } => {
                        ct!();
                        frame.regs[*dst as usize] = *imm;
                        cyc_acc += cost.alu;
                    }
                    Op::Call { dst, func, args } => {
                        ct!();
                        argbuf.clear();
                        argbuf.extend(args.iter().map(|a| frame.regs[*a as usize]));
                        let (b, i) = code.loc[pc];
                        frame.block = b;
                        frame.ip = i + 1; // Return past the call.
                        cyc_acc += cost.call;
                        sync!();
                        break Pending::Call {
                            func: *func,
                            ret_dst: dst.map(Reg),
                        };
                    }
                    Op::CallIndirect {
                        dst,
                        target,
                        args,
                        ic,
                    } => {
                        ct!();
                        let t = frame.regs[*target as usize];
                        let slot = &mut ics[*ic as usize];
                        // Inline cache: a hit skips decode and arity
                        // validation (both depend only on the target).
                        let func = if slot.target == t {
                            slot.func
                        } else {
                            let Some(fid) = func_of_code_addr(t, arity.len()) else {
                                flush!(pc);
                                return Err(Trap::BadIndirectCall { target: t });
                            };
                            if arity[fid.0 as usize] as usize != args.len() {
                                flush!(pc);
                                return Err(Trap::BadIndirectCall { target: t });
                            }
                            *slot = IC {
                                target: t,
                                func: fid.0,
                            };
                            fid.0
                        };
                        argbuf.clear();
                        argbuf.extend(args.iter().map(|a| frame.regs[*a as usize]));
                        let (b, i) = code.loc[pc];
                        frame.block = b;
                        frame.ip = i + 1;
                        cyc_acc += cost.call + cost.branch;
                        sync!();
                        break Pending::Call {
                            func,
                            ret_dst: dst.map(Reg),
                        };
                    }
                    Op::CallIntrinsic {
                        dst,
                        intrinsic,
                        args,
                    } => {
                        ct!();
                        argbuf.clear();
                        argbuf.extend(args.iter().map(|a| frame.regs[*a as usize]));
                        // ip stays *at* the op: a blocked thread retries it
                        // on wake, a retryable trap re-executes it.
                        flush!(pc);
                        break Pending::Intrinsic {
                            idx: *intrinsic,
                            dst: *dst,
                            pc,
                        };
                    }
                    Op::Jmp { target } => {
                        ct!();
                        cyc_acc += cost.branch;
                        pc = *target as usize;
                        continue;
                    }
                    Op::Br { cond, t, f } => {
                        ct!();
                        let c = frame.regs[*cond as usize];
                        pc = if c != 0 { *t } else { *f } as usize;
                        brs += 1;
                        cyc_acc += cost.branch;
                        continue;
                    }
                    Op::Ret { val } => {
                        ct!();
                        let v = val.map(|s| frame.regs[s as usize]).unwrap_or(0);
                        sync!();
                        break Pending::Ret { val: v };
                    }
                    Op::Unreachable => {
                        // Retires like any op (`left` is dead: we trap out).
                        done += 1;
                        flush!(pc);
                        return Err(Trap::Unreachable);
                    }
                }
                pc += 1;
            };
            // Cold paths: delegate to the VM so call/return/intrinsic
            // semantics are shared with the reference tier.
            match pending {
                Pending::Call { func, ret_dst } => {
                    vm.engine_call(tid, func as usize, argbuf, ret_dst)?;
                }
                Pending::Intrinsic { idx, dst, pc } => {
                    let res = vm.engine_intrinsic(tid, idx as usize, argbuf)?;
                    if !vm.engine_runnable(tid) {
                        return Ok(());
                    }
                    let hot = vm.engine_hot(tid);
                    if let (Some(d), Some(v)) = (dst, res) {
                        hot.frame.regs[d as usize] = v;
                    }
                    let (b, i) = funcs[hot.frame.func].loc[pc];
                    hot.frame.block = b;
                    hot.frame.ip = i + 1;
                    if vm.engine_exited() {
                        return Ok(());
                    }
                }
                Pending::Ret { val } => {
                    vm.engine_ret(tid, val);
                }
            }
            continue 'outer;
        }
    }
}
