//! Textual display and parser for lowered code.
//!
//! One line per opcode, prefixed with a register/constant-pool header and
//! block-start markers, lossless for everything the equivalence oracle
//! cares about: `parse_func(display_func(c))` reconstructs the exact op
//! array, constant pool, and block starts, so instruction counts, jump
//! targets, and site-id markers round-trip bit-for-bit (the PR 2
//! zero-counter-perturbation pin, extended to the compiled tier).
//!
//! All operands print as `rN`: indices below `nregs` are architectural
//! registers, indices at or above it address the interned constant pool
//! appended to the frame's register file (see [`crate::lower::FuncCode`]).

use crate::lower::{FuncCode, Op};
use sgxs_mir::{BinOp, CastKind, CmpOp, FBinOp, FCmpOp};
use std::fmt::Write as _;

fn dst_str(d: Option<u32>) -> String {
    match d {
        Some(d) => format!("r{d}"),
        None => "_".into(),
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::UDiv => "udiv",
        BinOp::SDiv => "sdiv",
        BinOp::URem => "urem",
        BinOp::SRem => "srem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::LShr => "lshr",
        BinOp::AShr => "ashr",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::ULt => "ult",
        CmpOp::ULe => "ule",
        CmpOp::UGt => "ugt",
        CmpOp::UGe => "uge",
        CmpOp::SLt => "slt",
        CmpOp::SLe => "sle",
        CmpOp::SGt => "sgt",
        CmpOp::SGe => "sge",
    }
}

fn fbin_name(op: FBinOp) -> &'static str {
    match op {
        FBinOp::Add => "fadd",
        FBinOp::Sub => "fsub",
        FBinOp::Mul => "fmul",
        FBinOp::Div => "fdiv",
        FBinOp::Min => "fmin",
        FBinOp::Max => "fmax",
    }
}

fn fcmp_name(op: FCmpOp) -> &'static str {
    match op {
        FCmpOp::Eq => "feq",
        FCmpOp::Ne => "fne",
        FCmpOp::Lt => "flt",
        FCmpOp::Le => "fle",
        FCmpOp::Gt => "fgt",
        FCmpOp::Ge => "fge",
    }
}

fn cast_name(kind: CastKind) -> String {
    match kind {
        CastKind::Sext(n) => format!("sext{n}"),
        CastKind::Trunc(n) => format!("trunc{n}"),
        CastKind::SiToF => "sitof".into(),
        CastKind::UiToF => "uitof".into(),
        CastKind::FToSi => "ftosi".into(),
        CastKind::Bitcast => "bitcast".into(),
        CastKind::FAbs => "fabs".into(),
        CastKind::FSqrt => "fsqrt".into(),
    }
}

/// Renders one lowered function as line-oriented text.
pub fn display_func(code: &FuncCode) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "func {}", code.name);
    let _ = writeln!(out, "nregs {}", code.nregs);
    for c in code.consts.iter() {
        let _ = writeln!(out, "const {c}");
    }
    let mut next_block = 0usize;
    for (pc, op) in code.ops.iter().enumerate() {
        while next_block < code.block_start.len() && code.block_start[next_block] as usize == pc {
            let _ = writeln!(out, "block {next_block}");
            next_block += 1;
        }
        let line = match op {
            Op::Bin { op, dst, a, b, cyc } => {
                format!("bin {} r{dst} r{a} r{b} {cyc}", bin_name(*op))
            }
            Op::DivRem { op, dst, a, b } => {
                format!("divrem {} r{dst} r{a} r{b}", bin_name(*op))
            }
            Op::Cmp { op, dst, a, b } => format!("cmp {} r{dst} r{a} r{b}", cmp_name(*op)),
            Op::FBin { op, dst, a, b, cyc } => {
                format!("fbin {} r{dst} r{a} r{b} {cyc}", fbin_name(*op))
            }
            Op::FCmp { op, dst, a, b } => format!("fcmp {} r{dst} r{a} r{b}", fcmp_name(*op)),
            Op::Cast {
                kind,
                dst,
                src,
                cyc,
            } => format!("cast {} r{dst} r{src} {cyc}", cast_name(*kind)),
            Op::Select { dst, cond, t, f } => format!("select r{dst} r{cond} r{t} r{f}"),
            Op::Gep {
                dst,
                base,
                index,
                scale,
                disp,
            } => format!("gep r{dst} r{base} r{index} {scale} {disp}"),
            Op::Load { dst, addr, width } => format!("load r{dst} r{addr} {width}"),
            Op::Store { addr, val, width } => format!("store r{addr} r{val} {width}"),
            Op::AtomicRmw {
                op,
                dst,
                addr,
                val,
                width,
            } => format!("armw {} r{dst} r{addr} r{val} {width}", bin_name(*op)),
            Op::AtomicCas {
                dst,
                addr,
                expected,
                new,
                width,
            } => format!("acas r{dst} r{addr} r{expected} r{new} {width}"),
            Op::ReadLocal { dst, local } => format!("rdloc r{dst} l{local}"),
            Op::WriteLocal { local, val } => format!("wrloc l{local} r{val}"),
            Op::SlotAddr { dst, slot } => format!("slot r{dst} s{slot}"),
            Op::Addr { dst, imm } => format!("addr r{dst} {imm}"),
            Op::Call { dst, func, args } => {
                let mut s = format!("call {} f{func}", dst_str(*dst));
                for a in args.iter() {
                    let _ = write!(s, " r{a}");
                }
                s
            }
            Op::CallIndirect {
                dst,
                target,
                args,
                ic,
            } => {
                let mut s = format!("icall {} r{target} ic{ic}", dst_str(*dst));
                for a in args.iter() {
                    let _ = write!(s, " r{a}");
                }
                s
            }
            Op::CallIntrinsic {
                dst,
                intrinsic,
                args,
            } => {
                let mut s = format!("intr {} n{intrinsic}", dst_str(*dst));
                for a in args.iter() {
                    let _ = write!(s, " r{a}");
                }
                s
            }
            Op::Site { site, begin } => {
                format!("site {site} {}", if *begin { "begin" } else { "end" })
            }
            Op::Fused { len, cyc } => format!("fused {len} {cyc}"),
            Op::FusedLoad { len, cyc } => format!("fused.load {len} {cyc}"),
            Op::FusedStore { len, cyc } => format!("fused.store {len} {cyc}"),
            Op::FusedBr { len, cyc } => format!("fused.br {len} {cyc}"),
            Op::FusedJmp { len, cyc } => format!("fused.jmp {len} {cyc}"),
            Op::SbCheck { cyc_pre, cyc_post } => format!("sbcheck {cyc_pre} {cyc_post}"),
            Op::Jmp { target } => format!("jmp {target}"),
            Op::Br { cond, t, f } => format!("br r{cond} {t} {f}"),
            Op::Ret { val } => match val {
                Some(v) => format!("ret r{v}"),
                None => "ret _".into(),
            },
            Op::Unreachable => "unreachable".into(),
        };
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn parse_reg(tok: &str) -> Result<u32, String> {
    tok.strip_prefix('r')
        .and_then(|r| r.parse().ok())
        .ok_or_else(|| format!("bad register '{tok}'"))
}

fn parse_dst(tok: &str) -> Result<Option<u32>, String> {
    if tok == "_" {
        Ok(None)
    } else {
        parse_reg(tok).map(Some)
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str) -> Result<T, String> {
    tok.parse().map_err(|_| format!("bad number '{tok}'"))
}

fn parse_pfx<T: std::str::FromStr>(tok: &str, pfx: char) -> Result<T, String> {
    tok.strip_prefix(pfx)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad '{pfx}'-token '{tok}'"))
}

fn parse_bin_name(tok: &str) -> Result<BinOp, String> {
    Ok(match tok {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "udiv" => BinOp::UDiv,
        "sdiv" => BinOp::SDiv,
        "urem" => BinOp::URem,
        "srem" => BinOp::SRem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        _ => return Err(format!("bad binop '{tok}'")),
    })
}

fn parse_cmp_name(tok: &str) -> Result<CmpOp, String> {
    Ok(match tok {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "ult" => CmpOp::ULt,
        "ule" => CmpOp::ULe,
        "ugt" => CmpOp::UGt,
        "uge" => CmpOp::UGe,
        "slt" => CmpOp::SLt,
        "sle" => CmpOp::SLe,
        "sgt" => CmpOp::SGt,
        "sge" => CmpOp::SGe,
        _ => return Err(format!("bad cmp '{tok}'")),
    })
}

fn parse_fbin_name(tok: &str) -> Result<FBinOp, String> {
    Ok(match tok {
        "fadd" => FBinOp::Add,
        "fsub" => FBinOp::Sub,
        "fmul" => FBinOp::Mul,
        "fdiv" => FBinOp::Div,
        "fmin" => FBinOp::Min,
        "fmax" => FBinOp::Max,
        _ => return Err(format!("bad fbin '{tok}'")),
    })
}

fn parse_fcmp_name(tok: &str) -> Result<FCmpOp, String> {
    Ok(match tok {
        "feq" => FCmpOp::Eq,
        "fne" => FCmpOp::Ne,
        "flt" => FCmpOp::Lt,
        "fle" => FCmpOp::Le,
        "fgt" => FCmpOp::Gt,
        "fge" => FCmpOp::Ge,
        _ => return Err(format!("bad fcmp '{tok}'")),
    })
}

fn parse_cast_name(tok: &str) -> Result<CastKind, String> {
    Ok(match tok {
        "sitof" => CastKind::SiToF,
        "uitof" => CastKind::UiToF,
        "ftosi" => CastKind::FToSi,
        "bitcast" => CastKind::Bitcast,
        "fabs" => CastKind::FAbs,
        "fsqrt" => CastKind::FSqrt,
        _ => {
            if let Some(n) = tok.strip_prefix("sext") {
                CastKind::Sext(parse_num(n)?)
            } else if let Some(n) = tok.strip_prefix("trunc") {
                CastKind::Trunc(parse_num(n)?)
            } else {
                return Err(format!("bad cast '{tok}'"));
            }
        }
    })
}

/// A lowered function reconstructed from text by [`parse_func`].
pub struct ParsedFunc {
    /// Function name from the `func` header.
    pub name: String,
    /// Architectural register count from the `nregs` header.
    pub nregs: u32,
    /// Interned constant pool from the `const` lines, in order.
    pub consts: Vec<u64>,
    /// The opcode array.
    pub ops: Vec<Op>,
    /// Dense-pc index of each block's first op.
    pub block_start: Vec<u32>,
}

/// Parses the output of [`display_func`] back into a [`ParsedFunc`].
pub fn parse_func(text: &str) -> Result<ParsedFunc, String> {
    let mut name = None;
    let mut nregs: Option<u32> = None;
    let mut consts: Vec<u64> = Vec::new();
    let mut ops: Vec<Op> = Vec::new();
    let mut block_start: Vec<u32> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |m: String| format!("line {}: {m}", ln + 1);
        match toks[0] {
            "func" => {
                name = Some(
                    toks.get(1)
                        .ok_or_else(|| err("missing name".into()))?
                        .to_string(),
                );
                continue;
            }
            "nregs" => {
                nregs = Some(
                    parse_num(toks.get(1).ok_or_else(|| err("missing nregs".into()))?)
                        .map_err(err)?,
                );
                continue;
            }
            "const" => {
                consts.push(
                    parse_num(toks.get(1).ok_or_else(|| err("missing const".into()))?)
                        .map_err(err)?,
                );
                continue;
            }
            "block" => {
                let b: usize = parse_num(toks.get(1).ok_or_else(|| err("missing block".into()))?)
                    .map_err(err)?;
                if b != block_start.len() {
                    return Err(err(format!("block {b} out of order")));
                }
                block_start.push(ops.len() as u32);
                continue;
            }
            _ => {}
        }
        let need = |i: usize| -> Result<&str, String> {
            toks.get(i)
                .copied()
                .ok_or_else(|| format!("line {}: missing field {i}", ln + 1))
        };
        let op = match toks[0] {
            "bin" => Op::Bin {
                op: parse_bin_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                a: parse_reg(need(3)?).map_err(&err)?,
                b: parse_reg(need(4)?).map_err(&err)?,
                cyc: parse_num(need(5)?).map_err(&err)?,
            },
            "divrem" => Op::DivRem {
                op: parse_bin_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                a: parse_reg(need(3)?).map_err(&err)?,
                b: parse_reg(need(4)?).map_err(&err)?,
            },
            "cmp" => Op::Cmp {
                op: parse_cmp_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                a: parse_reg(need(3)?).map_err(&err)?,
                b: parse_reg(need(4)?).map_err(&err)?,
            },
            "fbin" => Op::FBin {
                op: parse_fbin_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                a: parse_reg(need(3)?).map_err(&err)?,
                b: parse_reg(need(4)?).map_err(&err)?,
                cyc: parse_num(need(5)?).map_err(&err)?,
            },
            "fcmp" => Op::FCmp {
                op: parse_fcmp_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                a: parse_reg(need(3)?).map_err(&err)?,
                b: parse_reg(need(4)?).map_err(&err)?,
            },
            "cast" => Op::Cast {
                kind: parse_cast_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                src: parse_reg(need(3)?).map_err(&err)?,
                cyc: parse_num(need(4)?).map_err(&err)?,
            },
            "select" => Op::Select {
                dst: parse_reg(need(1)?).map_err(&err)?,
                cond: parse_reg(need(2)?).map_err(&err)?,
                t: parse_reg(need(3)?).map_err(&err)?,
                f: parse_reg(need(4)?).map_err(&err)?,
            },
            "gep" => Op::Gep {
                dst: parse_reg(need(1)?).map_err(&err)?,
                base: parse_reg(need(2)?).map_err(&err)?,
                index: parse_reg(need(3)?).map_err(&err)?,
                scale: parse_num(need(4)?).map_err(&err)?,
                disp: parse_num(need(5)?).map_err(&err)?,
            },
            "load" => Op::Load {
                dst: parse_reg(need(1)?).map_err(&err)?,
                addr: parse_reg(need(2)?).map_err(&err)?,
                width: parse_num(need(3)?).map_err(&err)?,
            },
            "store" => Op::Store {
                addr: parse_reg(need(1)?).map_err(&err)?,
                val: parse_reg(need(2)?).map_err(&err)?,
                width: parse_num(need(3)?).map_err(&err)?,
            },
            "armw" => Op::AtomicRmw {
                op: parse_bin_name(need(1)?).map_err(&err)?,
                dst: parse_reg(need(2)?).map_err(&err)?,
                addr: parse_reg(need(3)?).map_err(&err)?,
                val: parse_reg(need(4)?).map_err(&err)?,
                width: parse_num(need(5)?).map_err(&err)?,
            },
            "acas" => Op::AtomicCas {
                dst: parse_reg(need(1)?).map_err(&err)?,
                addr: parse_reg(need(2)?).map_err(&err)?,
                expected: parse_reg(need(3)?).map_err(&err)?,
                new: parse_reg(need(4)?).map_err(&err)?,
                width: parse_num(need(5)?).map_err(&err)?,
            },
            "rdloc" => Op::ReadLocal {
                dst: parse_reg(need(1)?).map_err(&err)?,
                local: parse_pfx(need(2)?, 'l').map_err(&err)?,
            },
            "wrloc" => Op::WriteLocal {
                local: parse_pfx(need(1)?, 'l').map_err(&err)?,
                val: parse_reg(need(2)?).map_err(&err)?,
            },
            "slot" => Op::SlotAddr {
                dst: parse_reg(need(1)?).map_err(&err)?,
                slot: parse_pfx(need(2)?, 's').map_err(&err)?,
            },
            "addr" => Op::Addr {
                dst: parse_reg(need(1)?).map_err(&err)?,
                imm: parse_num(need(2)?).map_err(&err)?,
            },
            "call" => Op::Call {
                dst: parse_dst(need(1)?).map_err(&err)?,
                func: parse_pfx(need(2)?, 'f').map_err(&err)?,
                args: toks[3..]
                    .iter()
                    .map(|t| parse_reg(t))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&err)?
                    .into(),
            },
            "icall" => Op::CallIndirect {
                dst: parse_dst(need(1)?).map_err(&err)?,
                target: parse_reg(need(2)?).map_err(&err)?,
                ic: need(3)?
                    .strip_prefix("ic")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad ic slot".into()))?,
                args: toks[4..]
                    .iter()
                    .map(|t| parse_reg(t))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&err)?
                    .into(),
            },
            "intr" => Op::CallIntrinsic {
                dst: parse_dst(need(1)?).map_err(&err)?,
                intrinsic: parse_pfx(need(2)?, 'n').map_err(&err)?,
                args: toks[3..]
                    .iter()
                    .map(|t| parse_reg(t))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&err)?
                    .into(),
            },
            "site" => Op::Site {
                site: parse_num(need(1)?).map_err(&err)?,
                begin: match need(2)? {
                    "begin" => true,
                    "end" => false,
                    other => return Err(err(format!("bad marker '{other}'"))),
                },
            },
            "fused" => Op::Fused {
                len: parse_num(need(1)?).map_err(&err)?,
                cyc: parse_num(need(2)?).map_err(&err)?,
            },
            "fused.load" => Op::FusedLoad {
                len: parse_num(need(1)?).map_err(&err)?,
                cyc: parse_num(need(2)?).map_err(&err)?,
            },
            "fused.store" => Op::FusedStore {
                len: parse_num(need(1)?).map_err(&err)?,
                cyc: parse_num(need(2)?).map_err(&err)?,
            },
            "fused.br" => Op::FusedBr {
                len: parse_num(need(1)?).map_err(&err)?,
                cyc: parse_num(need(2)?).map_err(&err)?,
            },
            "fused.jmp" => Op::FusedJmp {
                len: parse_num(need(1)?).map_err(&err)?,
                cyc: parse_num(need(2)?).map_err(&err)?,
            },
            "sbcheck" => Op::SbCheck {
                cyc_pre: parse_num(need(1)?).map_err(&err)?,
                cyc_post: parse_num(need(2)?).map_err(&err)?,
            },
            "jmp" => Op::Jmp {
                target: parse_num(need(1)?).map_err(&err)?,
            },
            "br" => Op::Br {
                cond: parse_reg(need(1)?).map_err(&err)?,
                t: parse_num(need(2)?).map_err(&err)?,
                f: parse_num(need(3)?).map_err(&err)?,
            },
            "ret" => Op::Ret {
                val: match need(1)? {
                    "_" => None,
                    tok => Some(parse_reg(tok).map_err(&err)?),
                },
            },
            "unreachable" => Op::Unreachable,
            other => return Err(err(format!("unknown opcode '{other}'"))),
        };
        ops.push(op);
    }
    Ok(ParsedFunc {
        name: name.ok_or("missing 'func' header")?,
        nregs: nregs.ok_or("missing 'nregs' header")?,
        consts,
        ops,
        block_start,
    })
}
