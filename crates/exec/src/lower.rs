//! Lowering from MIR to the dense opcode arrays executed by the compiled
//! tier.
//!
//! Each function flattens into one contiguous `Box<[Op]>`: every basic
//! block's instructions followed by its terminator (also an [`Op`]), with
//! superinstruction *headers* interleaved by the fusion pass (see below).
//! The reference interpreter's architectural `(block, ip)` coordinates map
//! to pcs through [`FuncCode::pc_of`] (an interned coordinate → pc table)
//! and back through `loc`, which is what makes mid-quantum state handoff
//! (traps, retries, blocked intrinsics) trivially exact.
//!
//! **Superinstruction fusion.** The fusion pass pattern-matches each block
//! and inserts header ops in front of fusable sequences: [`Op::Fused`]
//! before a maximal run of trap-free register-only ops,
//! [`Op::FusedLoad`]/[`Op::FusedStore`]/[`Op::FusedBr`]/[`Op::FusedJmp`]
//! when such a run feeds directly into a memory access or branch (the
//! terminal op is absorbed into the same dispatch), and [`Op::SbCheck`]
//! for the eight-op bounds-check sequence the sgxbounds passes emit
//! (`and → lshr → add → cmp → load → cmp → or → br`: extract the lower
//! bound and upper-bound pointer from the tagged pointer, compare against
//! the access end, fetch the lower bound, and branch to the trap block).
//! A header executes its whole sequence with one dispatch and one batched
//! counter update when the sequence fits the remaining quantum; otherwise
//! the engine skips the header and steps the constituent ops — which
//! always follow it verbatim — one at a time. Headers are transparent to
//! the architectural state: they are uncounted, uncharged, and share the
//! `(block, ip)` of their first constituent.
//!
//! Lowering also pre-decodes everything the reference interpreter resolves
//! per-execution: jump targets become absolute pcs, `GlobalAddr`/`FuncAddr`
//! collapse to [`Op::Addr`] immediates (the address layout is fixed at
//! `Vm::new`), per-op cycle charges are baked in from the cost model,
//! intrinsic ids are carried verbatim (their binding to builtins/handlers
//! stays in the VM, shared with the reference tier), and each
//! `CallIndirect` site gets an inline-cache slot.
//!
//! **Operand interning.** Every operand — register or immediate — lowers to
//! one `u32` index into the frame's value file. Immediates are deduplicated
//! into a per-function constant pool ([`FuncCode::consts`]) that the VM
//! appends after the architectural registers when it builds a frame (see
//! `Vm::set_frame_consts`), so the dispatch loop reads all operands with a
//! single indexed load and zero branches. The reference tier never touches
//! the appended slots, so frame semantics are unchanged.

use sgxs_mir::interp::code_addr;
use sgxs_mir::{BinOp, CastKind, CmpOp, FBinOp, FCmpOp, Function, Inst, Operand, SiteMarker, Term};
use sgxs_sim::CostModel;

/// One lowered opcode. Operands are `u32` indexes into the frame's unified
/// value file (`regs ++ consts`). Arithmetic variants carry their cycle
/// charge (`cyc`) pre-computed from the cost model; trapping division is
/// split out of [`Op::Bin`] so everything left in `Bin` is trap-free and
/// fusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Trap-free integer binary op (never `udiv`/`sdiv`/`urem`/`srem`).
    Bin {
        /// Operation (verified non-division by lowering).
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
        /// Baked cycle charge (`mul` or `alu`).
        cyc: u64,
    },
    /// Integer division/remainder; traps on a zero divisor.
    DivRem {
        /// Operation (one of the four division ops).
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Dividend.
        a: u32,
        /// Divisor.
        b: u32,
    },
    /// Integer comparison producing 0/1.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// Floating binary op on f64 bit patterns.
    FBin {
        /// Operation.
        op: FBinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
        /// Baked cycle charge (`fmul`, `fdiv` or `fsimple`).
        cyc: u64,
    },
    /// Floating comparison producing 0/1.
    FCmp {
        /// Predicate.
        op: FCmpOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: u32,
        /// Right operand.
        b: u32,
    },
    /// Integer/float conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Destination register.
        dst: u32,
        /// Source operand.
        src: u32,
        /// Baked cycle charge.
        cyc: u64,
    },
    /// `dst = cond != 0 ? t : f`.
    Select {
        /// Destination register.
        dst: u32,
        /// Condition operand.
        cond: u32,
        /// Value if true.
        t: u32,
        /// Value if false.
        f: u32,
    },
    /// Address arithmetic: `dst = base + index*scale + disp`.
    Gep {
        /// Destination register.
        dst: u32,
        /// Base address operand.
        base: u32,
        /// Index operand.
        index: u32,
        /// Element size.
        scale: u32,
        /// Constant displacement.
        disp: i64,
    },
    /// Memory load of `width` bytes.
    Load {
        /// Destination register.
        dst: u32,
        /// Address operand.
        addr: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// Memory store of `width` bytes.
    Store {
        /// Address operand.
        addr: u32,
        /// Value operand.
        val: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// Atomic read-modify-write; `dst` receives the old value.
    AtomicRmw {
        /// Combining operation (exchange for non-bitwise/add ops).
        op: BinOp,
        /// Destination register (old value).
        dst: u32,
        /// Address operand.
        addr: u32,
        /// Operand value.
        val: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// Atomic compare-and-swap; `dst` receives the old value.
    AtomicCas {
        /// Destination register (old value).
        dst: u32,
        /// Address operand.
        addr: u32,
        /// Expected value.
        expected: u32,
        /// Replacement value.
        new: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// `dst = local` (zero-cycle).
    ReadLocal {
        /// Destination register.
        dst: u32,
        /// Local index.
        local: u32,
    },
    /// `local = val` (zero-cycle).
    WriteLocal {
        /// Local index.
        local: u32,
        /// Value operand.
        val: u32,
    },
    /// `dst = address of stack slot`.
    SlotAddr {
        /// Destination register.
        dst: u32,
        /// Slot index.
        slot: u32,
    },
    /// Pre-resolved address constant (`GlobalAddr` / `FuncAddr`).
    Addr {
        /// Destination register.
        dst: u32,
        /// The resolved address.
        imm: u64,
    },
    /// Direct call.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<u32>,
        /// Callee function index.
        func: u32,
        /// Argument operands.
        args: Box<[u32]>,
    },
    /// Indirect call through a code address, with an inline-cache slot.
    CallIndirect {
        /// Register receiving the return value, if any.
        dst: Option<u32>,
        /// Target address operand.
        target: u32,
        /// Argument operands.
        args: Box<[u32]>,
        /// Index of this site's inline-cache entry.
        ic: u32,
    },
    /// Call into the host runtime.
    CallIntrinsic {
        /// Register receiving the return value, if any.
        dst: Option<u32>,
        /// Intrinsic index (bound by the VM at run time, like the
        /// reference tier).
        intrinsic: u32,
        /// Argument operands.
        args: Box<[u32]>,
    },
    /// Transparent check-site marker (uncounted, uncharged).
    Site {
        /// Check-site id.
        site: u32,
        /// True for `Begin`, false for `End`.
        begin: bool,
    },
    /// Superinstruction header: the next `len` ops are a trap-free
    /// register-only run, executed with one dispatch and one batched
    /// counter update when the run fits the remaining quantum. Headers are
    /// uncounted and uncharged; the engine falls back to stepping the
    /// constituents when the run does not fit.
    Fused {
        /// Number of constituent ops following the header.
        len: u32,
        /// Total baked cycle charge of the run.
        cyc: u64,
    },
    /// Header: `len` pure ops feeding a [`Op::Load`] (all absorbed into
    /// one dispatch; the load's memory cost stays dynamic).
    FusedLoad {
        /// Number of pure ops between the header and the load.
        len: u32,
        /// Baked cycle charge of the pure run (excludes the load).
        cyc: u64,
    },
    /// Header: `len` pure ops feeding a [`Op::Store`].
    FusedStore {
        /// Number of pure ops between the header and the store.
        len: u32,
        /// Baked cycle charge of the pure run (excludes the store).
        cyc: u64,
    },
    /// Header: `len` pure ops feeding a [`Op::Br`].
    FusedBr {
        /// Number of pure ops between the header and the branch.
        len: u32,
        /// Baked cycle charge of the run *including* the branch.
        cyc: u64,
    },
    /// Header: `len` pure ops feeding a [`Op::Jmp`].
    FusedJmp {
        /// Number of pure ops between the header and the jump.
        len: u32,
        /// Baked cycle charge of the run *including* the jump.
        cyc: u64,
    },
    /// Header for the eight-op sgxbounds check sequence
    /// (`and, lshr, add, cmp.ugt, load.4, cmp.ult, or, br`): the whole
    /// check — bounds extraction, limit compare, lower-bound fetch, and
    /// the trap branch — executes as one dispatch. The match is purely
    /// structural (the engine executes the constituents' own operands in
    /// order), so it is exact for any sequence of that shape.
    SbCheck {
        /// Baked cycle charge of the four ops before the bound load.
        cyc_pre: u64,
        /// Baked charge of the two compares/or plus the branch after it.
        cyc_post: u64,
    },
    /// Unconditional jump to an absolute pc (a block start).
    Jmp {
        /// Target pc.
        target: u32,
    },
    /// Conditional branch on `cond != 0`.
    Br {
        /// Condition operand.
        cond: u32,
        /// Target pc if true.
        t: u32,
        /// Target pc if false.
        f: u32,
    },
    /// Function return.
    Ret {
        /// Returned operand (0 if absent).
        val: Option<u32>,
    },
    /// Verifier-unreachable terminator; traps.
    Unreachable,
}

/// One function lowered to a dense opcode array plus its side tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCode {
    /// Function name (for display/diagnostics).
    pub name: String,
    /// Architectural register count; constant-pool slots start here.
    pub nregs: u32,
    /// Interned immediates, appended to `regs` at frame construction.
    pub consts: Box<[u64]>,
    /// The flattened opcode array: per block, instructions then terminator,
    /// with superinstruction headers interleaved by the fusion pass.
    pub ops: Box<[Op]>,
    /// Starting pc of each block (jump targets land only here; the first
    /// op may be a fusion header).
    pub block_start: Box<[u32]>,
    /// Inverse map `pc -> (block, ip)` for interpreter-state writeback.
    /// Headers share the coordinate of their first constituent.
    pub loc: Box<[(u32, u32)]>,
    /// Per-block base into `pc_map`'s dense architectural coordinates
    /// (block `b`, ip `i` lives at `ir_start[b] + i`).
    pub ir_start: Box<[u32]>,
    /// Architectural coordinate -> pc. Where a header shares a coordinate
    /// with its first constituent, the header's (smaller) pc wins, so
    /// re-entering at a run boundary re-enters the fused path.
    pub pc_map: Box<[u32]>,
}

impl FuncCode {
    /// The pc addressing interpreter coordinates `(block, ip)`.
    #[inline]
    pub fn pc_of(&self, block: u32, ip: u32) -> usize {
        self.pc_map[(self.ir_start[block as usize] + ip) as usize] as usize
    }
}

/// Per-function immediate interner: immediates share constant-pool slots.
struct Pool {
    nregs: u32,
    consts: Vec<u64>,
}

impl Pool {
    fn src(&mut self, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => r.0,
            Operand::Imm(v) => self.imm(v),
        }
    }

    fn imm(&mut self, v: u64) -> u32 {
        let idx = match self.consts.iter().position(|c| *c == v) {
            Some(i) => i,
            None => {
                self.consts.push(v);
                self.consts.len() - 1
            }
        };
        self.nregs + idx as u32
    }
}

/// Cycle charge of a trap-free register-only op, or `None` if the op can
/// trap, touch memory, transfer control, or emit events — the fusion
/// boundary. Mirrors the reference interpreter's per-instruction charges.
fn pure_cyc(op: &Op, cost: &CostModel) -> Option<u64> {
    match op {
        Op::Bin { cyc, .. } | Op::FBin { cyc, .. } | Op::Cast { cyc, .. } => Some(*cyc),
        Op::Cmp { .. } | Op::Select { .. } => Some(cost.alu),
        Op::FCmp { .. } => Some(cost.fsimple),
        Op::Gep { .. } => Some(cost.gep),
        Op::ReadLocal { .. } | Op::WriteLocal { .. } => Some(0),
        Op::SlotAddr { .. } | Op::Addr { .. } => Some(cost.alu),
        _ => None,
    }
}

fn bin_cyc(op: BinOp, cost: &CostModel) -> u64 {
    match op {
        BinOp::Mul => cost.mul,
        BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => cost.div,
        _ => cost.alu,
    }
}

fn fbin_cyc(op: FBinOp, cost: &CostModel) -> u64 {
    match op {
        FBinOp::Mul => cost.fmul,
        FBinOp::Div => cost.fdiv,
        _ => cost.fsimple,
    }
}

fn cast_cyc(kind: CastKind, cost: &CostModel) -> u64 {
    match kind {
        CastKind::FSqrt => cost.fdiv,
        CastKind::SiToF | CastKind::UiToF | CastKind::FToSi | CastKind::FAbs => cost.fsimple,
        _ => cost.alu,
    }
}

/// Lowers one function. `global_addr` maps global indices to their runtime
/// addresses (fixed at `Vm::new`); `ic_count` allocates inline-cache slots
/// across the whole module.
pub fn lower_func(
    f: &Function,
    global_addr: &dyn Fn(u32) -> u32,
    cost: &CostModel,
    ic_count: &mut u32,
) -> FuncCode {
    // Pass A: lower each block's instructions and terminator. Jump targets
    // are carried as block ids here and rewritten to pcs in pass C, after
    // fusion has fixed every block's final length.
    let mut pool = Pool {
        nregs: f.reg_tys.len() as u32,
        consts: Vec::new(),
    };
    let mut ir_start = Vec::with_capacity(f.blocks.len());
    let mut ir_total = 0u32;
    let mut blocks: Vec<Vec<Op>> = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        ir_start.push(ir_total);
        ir_total += b.insts.len() as u32 + 1;
        let mut ops = Vec::with_capacity(b.insts.len() + 1);
        for inst in &b.insts {
            ops.push(lower_inst(inst, global_addr, cost, ic_count, &mut pool));
        }
        ops.push(match &b.term {
            Term::Jmp(t) => Op::Jmp { target: t.0 },
            Term::Br { cond, t, f: fb } => Op::Br {
                cond: pool.src(*cond),
                t: t.0,
                f: fb.0,
            },
            Term::Ret(v) => Op::Ret {
                val: v.map(|s| pool.src(s)),
            },
            Term::Unreachable => Op::Unreachable,
        });
        blocks.push(ops);
    }

    // Pass B: per-block superinstruction selection. Sequences never span
    // Site markers (their events read intermediate cycle counts) or block
    // boundaries, so a fused sequence with one batched counter update is
    // observationally identical to per-op execution.
    let fused: Vec<Vec<(Op, u32)>> = blocks.iter().map(|ops| fuse_block(ops, cost)).collect();

    // Pass C: concatenate, resolve block-id targets to pcs, and build the
    // pc <-> (block, ip) maps.
    let mut block_start = Vec::with_capacity(fused.len());
    let mut pc = 0u32;
    for fb in &fused {
        block_start.push(pc);
        pc += fb.len() as u32;
    }
    let total = pc as usize;
    let mut ops = Vec::with_capacity(total);
    let mut loc = Vec::with_capacity(total);
    let mut pc_map = vec![u32::MAX; ir_total as usize];
    for (bi, fb) in fused.into_iter().enumerate() {
        for (mut op, ir_ip) in fb {
            let coord = (ir_start[bi] + ir_ip) as usize;
            // First writer wins: a header precedes its first constituent,
            // so re-entry at the coordinate lands on the header.
            if pc_map[coord] == u32::MAX {
                pc_map[coord] = ops.len() as u32;
            }
            loc.push((bi as u32, ir_ip));
            match &mut op {
                Op::Jmp { target } => *target = block_start[*target as usize],
                Op::Br { t, f, .. } => {
                    *t = block_start[*t as usize];
                    *f = block_start[*f as usize];
                }
                _ => {}
            }
            ops.push(op);
        }
    }
    debug_assert_eq!(ops.len(), total);
    debug_assert!(pc_map.iter().all(|p| *p != u32::MAX));

    FuncCode {
        name: f.name.clone(),
        nregs: pool.nregs,
        consts: pool.consts.into_boxed_slice(),
        ops: ops.into_boxed_slice(),
        block_start: block_start.into_boxed_slice(),
        loc: loc.into_boxed_slice(),
        ir_start: ir_start.into_boxed_slice(),
        pc_map: pc_map.into_boxed_slice(),
    }
}

/// The eight-op bounds-check shape emitted by the sgxbounds passes:
/// extract `lo`/`ub` from the tagged pointer, add the access size, compare
/// against the upper bound, fetch the 4-byte lower bound from the object
/// footer, compare, or the verdicts together, branch to the trap block.
fn is_sbcheck(w: &[Op]) -> bool {
    matches!(w[0], Op::Bin { op: BinOp::And, .. })
        && matches!(
            w[1],
            Op::Bin {
                op: BinOp::LShr,
                ..
            }
        )
        && matches!(w[2], Op::Bin { op: BinOp::Add, .. })
        && matches!(w[3], Op::Cmp { op: CmpOp::UGt, .. })
        && matches!(w[4], Op::Load { width: 4, .. })
        && matches!(w[5], Op::Cmp { op: CmpOp::ULt, .. })
        && matches!(w[6], Op::Bin { op: BinOp::Or, .. })
        && matches!(w[7], Op::Br { .. })
}

/// Selects superinstruction headers over one block's lowered ops. Returns
/// `(op, ip)` pairs, where `ip` is the op's architectural instruction
/// index; headers share the `ip` of their first constituent (they are
/// transparent to the architectural state).
fn fuse_block(ops: &[Op], cost: &CostModel) -> Vec<(Op, u32)> {
    let n = ops.len();
    let mut out = Vec::with_capacity(n + n / 4);
    let mut i = 0usize;
    while i < n {
        // The sgxbounds check sequence fuses whole, bound load and trap
        // branch included: one dispatch per check.
        if i + 8 <= n && is_sbcheck(&ops[i..i + 8]) {
            let cyc_pre: u64 = ops[i..i + 4]
                .iter()
                .map(|o| pure_cyc(o, cost).expect("pre-load check ops are pure"))
                .sum();
            let cyc_post: u64 = ops[i + 5..i + 7]
                .iter()
                .map(|o| pure_cyc(o, cost).expect("post-load check ops are pure"))
                .sum::<u64>()
                + cost.branch;
            out.push((Op::SbCheck { cyc_pre, cyc_post }, i as u32));
            for (k, op) in ops[i..i + 8].iter().enumerate() {
                out.push((op.clone(), (i + k) as u32));
            }
            i += 8;
            continue;
        }
        // Maximal run of trap-free register-only ops starting here.
        let mut j = i;
        let mut run_cyc = 0u64;
        while j < n {
            match pure_cyc(&ops[j], cost) {
                Some(c) => {
                    run_cyc += c;
                    j += 1;
                }
                None => break,
            }
        }
        let len = (j - i) as u32;
        if len == 0 {
            out.push((ops[i].clone(), i as u32));
            i += 1;
            continue;
        }
        // Absorb the op the run feeds into when it is a memory access or
        // branch: address/condition computation and its consumer become
        // one dispatch. A lone pure op is only worth a header when it
        // absorbs something.
        let header = match ops.get(j) {
            Some(Op::Load { .. }) => Some(Op::FusedLoad { len, cyc: run_cyc }),
            Some(Op::Store { .. }) => Some(Op::FusedStore { len, cyc: run_cyc }),
            Some(Op::Br { .. }) => Some(Op::FusedBr {
                len,
                cyc: run_cyc + cost.branch,
            }),
            Some(Op::Jmp { .. }) => Some(Op::FusedJmp {
                len,
                cyc: run_cyc + cost.branch,
            }),
            _ => None,
        };
        match header {
            Some(h) => {
                out.push((h, i as u32));
                for (k, op) in ops[i..=j].iter().enumerate() {
                    out.push((op.clone(), (i + k) as u32));
                }
                i = j + 1;
            }
            None if len >= 2 => {
                out.push((Op::Fused { len, cyc: run_cyc }, i as u32));
                for (k, op) in ops[i..j].iter().enumerate() {
                    out.push((op.clone(), (i + k) as u32));
                }
                i = j;
            }
            None => {
                out.push((ops[i].clone(), i as u32));
                i = j;
            }
        }
    }
    out
}

fn lower_inst(
    inst: &Inst,
    global_addr: &dyn Fn(u32) -> u32,
    cost: &CostModel,
    ic_count: &mut u32,
    pool: &mut Pool,
) -> Op {
    match inst {
        Inst::Bin { op, dst, a, b } => match op {
            BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => Op::DivRem {
                op: *op,
                dst: dst.0,
                a: pool.src(*a),
                b: pool.src(*b),
            },
            _ => Op::Bin {
                op: *op,
                dst: dst.0,
                a: pool.src(*a),
                b: pool.src(*b),
                cyc: bin_cyc(*op, cost),
            },
        },
        Inst::Cmp { op, dst, a, b } => Op::Cmp {
            op: *op,
            dst: dst.0,
            a: pool.src(*a),
            b: pool.src(*b),
        },
        Inst::FBin { op, dst, a, b } => Op::FBin {
            op: *op,
            dst: dst.0,
            a: pool.src(*a),
            b: pool.src(*b),
            cyc: fbin_cyc(*op, cost),
        },
        Inst::FCmp { op, dst, a, b } => Op::FCmp {
            op: *op,
            dst: dst.0,
            a: pool.src(*a),
            b: pool.src(*b),
        },
        Inst::Cast { kind, dst, src } => Op::Cast {
            kind: *kind,
            dst: dst.0,
            src: pool.src(*src),
            cyc: cast_cyc(*kind, cost),
        },
        Inst::Select { dst, cond, t, f } => Op::Select {
            dst: dst.0,
            cond: pool.src(*cond),
            t: pool.src(*t),
            f: pool.src(*f),
        },
        Inst::Gep {
            dst,
            base,
            index,
            scale,
            disp,
            ..
        } => Op::Gep {
            dst: dst.0,
            base: pool.src(*base),
            index: pool.src(*index),
            scale: *scale,
            disp: *disp,
        },
        Inst::Load { dst, addr, ty, .. } => Op::Load {
            dst: dst.0,
            addr: pool.src(*addr),
            width: ty.width(),
        },
        Inst::Store { addr, val, ty, .. } => Op::Store {
            addr: pool.src(*addr),
            val: pool.src(*val),
            width: ty.width(),
        },
        Inst::AtomicRmw {
            op,
            dst,
            addr,
            val,
            ty,
            ..
        } => Op::AtomicRmw {
            op: *op,
            dst: dst.0,
            addr: pool.src(*addr),
            val: pool.src(*val),
            width: ty.width(),
        },
        Inst::AtomicCas {
            dst,
            addr,
            expected,
            new,
            ty,
            ..
        } => Op::AtomicCas {
            dst: dst.0,
            addr: pool.src(*addr),
            expected: pool.src(*expected),
            new: pool.src(*new),
            width: ty.width(),
        },
        Inst::ReadLocal { dst, local } => Op::ReadLocal {
            dst: dst.0,
            local: local.0,
        },
        Inst::WriteLocal { local, val } => Op::WriteLocal {
            local: local.0,
            val: pool.src(*val),
        },
        Inst::SlotAddr { dst, slot } => Op::SlotAddr {
            dst: dst.0,
            slot: slot.0,
        },
        Inst::GlobalAddr { dst, global } => Op::Addr {
            dst: dst.0,
            imm: global_addr(global.0) as u64,
        },
        Inst::FuncAddr { dst, func } => Op::Addr {
            dst: dst.0,
            imm: code_addr(*func),
        },
        Inst::Call { dst, func, args } => Op::Call {
            dst: dst.map(|r| r.0),
            func: func.0,
            args: args.iter().map(|a| pool.src(*a)).collect(),
        },
        Inst::CallIndirect { dst, target, args } => {
            let ic = *ic_count;
            *ic_count += 1;
            Op::CallIndirect {
                dst: dst.map(|r| r.0),
                target: pool.src(*target),
                args: args.iter().map(|a| pool.src(*a)).collect(),
                ic,
            }
        }
        Inst::CallIntrinsic {
            dst,
            intrinsic,
            args,
        } => Op::CallIntrinsic {
            dst: dst.map(|r| r.0),
            intrinsic: intrinsic.0,
            args: args.iter().map(|a| pool.src(*a)).collect(),
        },
        Inst::Site { site, marker } => Op::Site {
            site: *site,
            begin: matches!(marker, SiteMarker::Begin),
        },
    }
}
