//! Request-level crash isolation for the server workloads.
//!
//! One [`serve`] call runs one server (nginx / apache / memcached
//! per-request module from `sgxs-workloads`) under one protection scheme
//! and one recovery [`PolicySet`] against one [`ChaosSchedule`]. Each
//! request is a separate `vm.run("handle", ..)` invocation, so a trap is
//! naturally scoped to the request that raised it:
//!
//! * with a fail-stop policy (`Abort` for safety violations) the first
//!   propagated trap kills the whole server — every request still queued is
//!   *lost*, which is exactly the availability cost the paper's §4.2
//!   attributes to fail-stop schemes;
//! * with crash-only policies (`GracefulExit`, `Boundless`, retry
//!   overrides) only the poisoned request is dropped (degraded) and the
//!   server keeps draining the queue.
//!
//! After the run the host checks the two canary objects adjacent to the
//! request buffer against their setup-time fill: any non-pattern byte is
//! cross-object corruption that the scheme failed to contain.

use crate::chaos::{ChaosKind, ChaosSchedule};
use sgxs_metrics::Hist;
use sgxs_mir::{
    verify, GlobalId, PolicySet, RecoveryPolicy, RecoveryStats, TrapClass, Vm, VmConfig,
};
use sgxs_obs::{Event, Recorder};
use sgxs_rt::{install_base, AllocOpts, Stager};
use sgxs_sim::{ExecTier, MachineConfig, Mode, Preset};
use sgxs_workloads::apps::server::{
    BENIGN_MAX, CANARY_BYTES, CANARY_PATTERN, EVIL_LEN, INPUT_BYTES, STATE_CANARY_A, STATE_CANARY_B,
};
use sgxs_workloads::apps::{apache, memcached, nginx};
use std::cell::RefCell;
use std::rc::Rc;

/// Which server application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerApp {
    /// Event server, buffers reused across requests.
    Nginx,
    /// Per-request APR-style pools (heaviest allocator pressure).
    Apache,
    /// Slab items; overflow runs into the neighbouring items.
    Memcached,
}

impl ServerApp {
    /// All apps, campaign rotation order.
    pub const ALL: [ServerApp; 3] = [ServerApp::Nginx, ServerApp::Apache, ServerApp::Memcached];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            ServerApp::Nginx => "nginx",
            ServerApp::Apache => "apache",
            ServerApp::Memcached => "memcached",
        }
    }

    fn module(&self) -> sgxs_mir::Module {
        match self {
            ServerApp::Nginx => nginx::server_module(),
            ServerApp::Apache => apache::server_module(),
            ServerApp::Memcached => memcached::server_module(),
        }
    }
}

/// Protection scheme for a server run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RScheme {
    /// Uninstrumented: overflows silently corrupt neighbours.
    Native,
    /// SGXBounds, fail-stop.
    SgxBounds,
    /// SGXBounds with boundless memory: overflows are redirected into the
    /// overlay, the request completes, neighbours stay intact.
    Boundless,
}

impl RScheme {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            RScheme::Native => "native",
            RScheme::SgxBounds => "sgxbounds",
            RScheme::Boundless => "sb-boundless",
        }
    }

    fn sb_config(&self) -> Option<sgxbounds::SbConfig> {
        match self {
            RScheme::Native => None,
            RScheme::SgxBounds => Some(sgxbounds::SbConfig::default()),
            RScheme::Boundless => Some(sgxbounds::SbConfig {
                boundless: true,
                ..sgxbounds::SbConfig::default()
            }),
        }
    }
}

/// Per-request connection scratch passed to every `handle` call.
const SCRATCH_BYTES: u64 = 64;

/// One server run's availability ledger.
#[derive(Debug, Clone)]
pub struct AvailabilityReport {
    /// Application label.
    pub app: &'static str,
    /// Scheme label.
    pub scheme: &'static str,
    /// Schedule seed.
    pub seed: u64,
    /// Requests the schedule contained.
    pub total: u32,
    /// Requests served cleanly.
    pub served: u32,
    /// Requests completed via a degrading recovery (graceful exit /
    /// tolerated violation).
    pub degraded: u32,
    /// Requests aborted by a propagated trap (crash-only isolation: only
    /// that request dies).
    pub aborted: u32,
    /// Requests never attempted because the server died (fail-stop only).
    pub lost: u32,
    /// Interpreter recovery counters accumulated over the run.
    pub recovery: RecoveryStats,
    /// Canary bytes that no longer hold the setup pattern — cross-object
    /// corruption the scheme failed to contain.
    pub corrupted_canary_bytes: u32,
    /// AEX re-entry cycles charged by the chaos schedule.
    pub aex_penalty_cycles: u64,
    /// Boundless overlay violations tolerated (0 for other schemes).
    pub tolerated_violations: u64,
    /// Per-request wall-cycle latency (one sample per *attempted* request:
    /// served, degraded, or aborted — lost requests never ran). Simulated
    /// cycles, so the histogram is byte-identical across execution tiers.
    pub latency: Hist,
}

impl AvailabilityReport {
    /// Fraction of requests that produced a response (served or degraded).
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.served + self.degraded) as f64 / self.total as f64
    }

    /// True when no canary byte was corrupted.
    pub fn intact(&self) -> bool {
        self.corrupted_canary_bytes == 0
    }
}

/// Benign request length for request `r`: deterministic, never overflowing
/// (memcached leaves 8 bytes of key slack, hence [`BENIGN_MAX`]).
fn benign_len(r: u32) -> u64 {
    16 + (r as u64 * 37) % (BENIGN_MAX - 16)
}

/// Runs `app` under `scheme` with recovery `policies` against `schedule`.
///
/// Panics if the server's `setup` entry fails — the chaos tier only
/// injects faults from the first request onward.
pub fn serve(
    app: ServerApp,
    scheme: RScheme,
    policies: &PolicySet,
    schedule: &ChaosSchedule,
) -> AvailabilityReport {
    serve_tier(app, scheme, policies, schedule, ExecTier::default())
}

/// Like [`serve_traced`] but with a full [`sgxs_audit::LedgerRecorder`]
/// attached, for incident forensics. Returns the report, the recovered
/// recorder (object ledger, span path, trace ring), and the plain address
/// of the first corrupted canary byte, when the run corrupted any.
///
/// The report is identical to the untraced run's — same zero-perturbation
/// contract as [`serve_traced`].
pub fn serve_forensic(
    app: ServerApp,
    scheme: RScheme,
    policies: &PolicySet,
    schedule: &ChaosSchedule,
    tier: ExecTier,
    ring_cap: usize,
) -> (AvailabilityReport, sgxs_audit::LedgerRecorder, Option<u32>) {
    let rec = Rc::new(RefCell::new(sgxs_audit::LedgerRecorder::new(ring_cap)));
    let (report, first_corrupted) =
        serve_inner(app, scheme, policies, schedule, tier, Some(rec.clone()));
    let rec = Rc::try_unwrap(rec)
        .expect("server dropped its recorder handle")
        .into_inner();
    (report, rec, first_corrupted)
}

/// Like [`serve`] but on an explicit execution tier. Every field of the
/// report — availability ledger, recovery counters, canary corruption,
/// AEX penalties — must be identical across tiers; the chaos-campaign
/// equivalence tests enforce this seed-for-seed.
pub fn serve_tier(
    app: ServerApp,
    scheme: RScheme,
    policies: &PolicySet,
    schedule: &ChaosSchedule,
    tier: ExecTier,
) -> AvailabilityReport {
    serve_inner(app, scheme, policies, schedule, tier, None).0
}

/// Like [`serve_tier`] but with an observability recorder attached for the
/// whole run: span events (`serve` → `request` → `check`) and every other
/// obs event flow into `rec`. Recording never charges a simulated cycle,
/// so the returned report is identical to the untraced run's — the
/// zero-perturbation pin in `tests/metrics_pin.rs` enforces this.
pub fn serve_traced(
    app: ServerApp,
    scheme: RScheme,
    policies: &PolicySet,
    schedule: &ChaosSchedule,
    tier: ExecTier,
    rec: Rc<RefCell<dyn Recorder>>,
) -> AvailabilityReport {
    serve_inner(app, scheme, policies, schedule, tier, Some(rec)).0
}

fn serve_inner(
    app: ServerApp,
    scheme: RScheme,
    policies: &PolicySet,
    schedule: &ChaosSchedule,
    tier: ExecTier,
    rec: Option<Rc<RefCell<dyn Recorder>>>,
) -> (AvailabilityReport, Option<u32>) {
    let mut module = app.module();
    // Tracing turns site markers on so check-region spans exist; markers
    // never retire instructions or charge cycles (the PR 2 pin), so the
    // report stays identical either way.
    let mut sb_cfg = scheme.sb_config();
    if rec.is_some() {
        if let Some(c) = &mut sb_cfg {
            c.site_markers = true;
        }
    }
    if let Some(cfg) = &sb_cfg {
        sgxbounds::instrument(&mut module, cfg).expect("server instrumentation");
    }
    verify(&module).expect("server module verifies");

    let mut machine_cfg = MachineConfig::preset(Preset::Tiny, Mode::Enclave);
    machine_cfg.tier = tier;
    let mut cfg = VmConfig::new(machine_cfg);
    cfg.max_instructions = 500_000_000;
    let mut vm = Vm::new(&module, cfg);
    if tier == ExecTier::Compiled {
        sgxs_exec::attach(&mut vm);
    }
    let heap = install_base(&mut vm, AllocOpts::default());
    let sb_rt = sb_cfg
        .as_ref()
        .map(|cfg| sgxbounds::install_sgxbounds(&mut vm, heap.clone(), cfg, None));

    // Stage the request input: INPUT_BYTES of seeded bytes, none zero (so
    // boundless zero-reads are distinguishable) and none the canary pattern.
    let mut input = vec![0u8; INPUT_BYTES as usize];
    let mut s = schedule.seed.wrapping_mul(0x6C62_272E_07BB_0142) | 1;
    for b in input.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let mut v = (s >> 32) as u8;
        if v == 0 || v == CANARY_PATTERN {
            v = 1;
        }
        *b = v;
    }
    let mut st = Stager::new();
    let addr = st.stage(&mut vm, &input);

    let out = vm.run("setup", &[addr as u64, INPUT_BYTES as u64]);
    out.result.expect("server setup must succeed");

    // The state global is always GlobalId(0) in the server modules; the
    // low 32 bits of each slot are the plain address under every scheme.
    let state = vm.global_addr(GlobalId(0));
    let canary_a = vm.machine.mem.read(state + STATE_CANARY_A as u32, 8) as u32;
    let canary_b = vm.machine.mem.read(state + STATE_CANARY_B as u32, 8) as u32;

    vm.set_recovery(policies.clone());
    // Fail-stop servers die with their first propagated safety trap;
    // crash-only configurations isolate the failure to the request.
    let fail_stop = policies.policy_for(TrapClass::Safety) == RecoveryPolicy::Abort;

    // Attach the recorder only after setup, so traces start at the first
    // request; span timestamps ride the monotone instruction counter.
    if let Some(rec) = rec {
        vm.machine.set_recorder(Some(rec));
        vm.machine.set_span_mode(true);
        vm.machine.emit(Event::SpanBegin {
            name: "serve",
            arg: schedule.seed,
        });
    }

    let mut report = AvailabilityReport {
        app: app.label(),
        scheme: scheme.label(),
        seed: schedule.seed,
        total: schedule.requests,
        served: 0,
        degraded: 0,
        aborted: 0,
        lost: 0,
        recovery: RecoveryStats::default(),
        corrupted_canary_bytes: 0,
        aex_penalty_cycles: 0,
        tolerated_violations: 0,
        latency: Hist::new(),
    };

    let mut active: Vec<bool> = vec![false; schedule.events.len()];
    for r in 0..schedule.requests {
        // Open and close environmental fault windows.
        for (i, ev) in schedule.events.iter().enumerate() {
            let covers = ev.covers(r);
            if covers && !active[i] {
                match ev.kind {
                    ChaosKind::EpcStorm { clamp_pages } => {
                        vm.machine.set_epc_capacity_pages(clamp_pages);
                    }
                    ChaosKind::AllocFaults { .. } => {
                        heap.borrow_mut().set_fault_plan(schedule.fault_plan(i));
                    }
                    ChaosKind::OverlayClamp { cap_bytes } => {
                        if let Some(rt) = &sb_rt {
                            if let Some(bl) = &rt.boundless {
                                bl.borrow_mut().set_cap_bytes(cap_bytes);
                            }
                        }
                    }
                    ChaosKind::AexStorm { .. } => {}
                }
            } else if !covers && active[i] {
                match ev.kind {
                    ChaosKind::EpcStorm { .. } => {
                        let pages = vm.machine.configured_epc_pages();
                        vm.machine.set_epc_capacity_pages(pages);
                    }
                    ChaosKind::AllocFaults { .. } => {
                        heap.borrow_mut().set_fault_plan(None);
                    }
                    ChaosKind::OverlayClamp { .. } => {
                        if let Some(rt) = &sb_rt {
                            if let Some(bl) = &rt.boundless {
                                bl.borrow_mut()
                                    .set_cap_bytes(sgxbounds::boundless::CACHE_CAP_BYTES);
                            }
                        }
                    }
                    ChaosKind::AexStorm { .. } => {}
                }
            }
            active[i] = covers;
            if covers {
                if let ChaosKind::AexStorm { reentry_cycles } = ev.kind {
                    report.aex_penalty_cycles += reentry_cycles;
                }
            }
        }

        let len = if schedule.is_attack(r) {
            EVIL_LEN
        } else {
            benign_len(r)
        };
        let degraded_before = vm.recovery_stats().degraded;
        let violations_before = sb_rt
            .as_ref()
            .map(|rt| *rt.violations.borrow())
            .unwrap_or(0);
        if vm.machine.spans_enabled() {
            vm.machine.emit(Event::SpanBegin {
                name: "request",
                arg: r as u64,
            });
        }
        let out = vm.run("handle", &[r as u64, len, SCRATCH_BYTES]);
        if vm.machine.spans_enabled() {
            vm.machine.emit(Event::SpanEnd { name: "request" });
        }
        // Every attempted request contributes a latency sample, including
        // the aborted ones (their wall time was still spent).
        report.latency.record(out.wall_cycles);
        match out.result {
            Ok(_) => {
                let tolerated = sb_rt
                    .as_ref()
                    .map(|rt| *rt.violations.borrow())
                    .unwrap_or(0)
                    > violations_before;
                if vm.recovery_stats().degraded > degraded_before || tolerated {
                    report.degraded += 1;
                } else {
                    report.served += 1;
                }
            }
            Err(_) => {
                report.aborted += 1;
                if fail_stop {
                    report.lost = schedule.requests - r - 1;
                    break;
                }
            }
        }
    }

    if vm.machine.spans_enabled() {
        vm.machine.emit(Event::SpanEnd { name: "serve" });
    }
    report.recovery = vm.recovery_stats();
    report.tolerated_violations = sb_rt
        .as_ref()
        .map(|rt| *rt.violations.borrow())
        .unwrap_or(0);
    let mut first_corrupted = None;
    for base in [canary_a, canary_b] {
        for i in 0..CANARY_BYTES {
            if vm.machine.mem.read(base + i, 1) as u8 != CANARY_PATTERN {
                report.corrupted_canary_bytes += 1;
                if first_corrupted.is_none() {
                    first_corrupted = Some(base + i);
                }
            }
        }
    }
    (report, first_corrupted)
}

/// The policy a fail-stop deployment uses: every trap aborts the server.
pub fn abort_policy() -> PolicySet {
    PolicySet::uniform(RecoveryPolicy::Abort)
}

/// Crash-only: every trap degrades to a clean per-request exit.
pub fn graceful_policy() -> PolicySet {
    PolicySet::uniform(RecoveryPolicy::GracefulExit)
}

/// Crash-only with transient-fault retry: traps degrade the request,
/// except allocator OOM, which is retried with linear backoff first.
pub fn retry_policy() -> PolicySet {
    PolicySet::uniform(RecoveryPolicy::GracefulExit).with_override(
        TrapClass::Oom,
        RecoveryPolicy::RetryWithBackoff {
            max_attempts: 12,
            backoff: 2_000,
        },
    )
}

/// The boundless deployment: the runtime absorbs violations before they
/// trap; any safety trap that still escapes ends the request cleanly, and
/// chaos-injected OOM is ridden out with retries.
pub fn boundless_policy() -> PolicySet {
    PolicySet::uniform(RecoveryPolicy::Boundless).with_override(
        TrapClass::Oom,
        RecoveryPolicy::RetryWithBackoff {
            max_attempts: 12,
            backoff: 2_000,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_schedule(seed: u64, requests: u32) -> ChaosSchedule {
        // Attacks only — no environmental noise — for sharp assertions.
        let mut s = ChaosSchedule::generate(seed, requests);
        s.events.clear();
        s
    }

    #[test]
    fn native_serves_everything_but_corrupts_the_canaries() {
        for app in ServerApp::ALL {
            let sch = quiet_schedule(7, 24);
            let rep = serve(app, RScheme::Native, &abort_policy(), &sch);
            assert_eq!(rep.served, 24, "{}", app.label());
            assert_eq!(rep.lost, 0);
            assert!(
                rep.corrupted_canary_bytes > 0,
                "{}: attack did not reach the canaries — the corruption \
                 oracle is dead",
                app.label()
            );
        }
    }

    #[test]
    fn fail_stop_sgxbounds_dies_on_the_first_attack_with_canaries_intact() {
        for app in ServerApp::ALL {
            let sch = quiet_schedule(7, 24);
            let first_attack = sch.attacks[0];
            let rep = serve(app, RScheme::SgxBounds, &abort_policy(), &sch);
            assert!(rep.intact(), "{}", app.label());
            assert_eq!(rep.aborted, 1, "{}", app.label());
            assert_eq!(rep.lost, 24 - first_attack - 1, "{}", app.label());
            assert_eq!(rep.served, first_attack, "{}", app.label());
            assert!(rep.availability() < 1.0);
        }
    }

    #[test]
    fn crash_only_isolation_keeps_the_server_draining() {
        for app in ServerApp::ALL {
            let sch = quiet_schedule(7, 24);
            let attacks = sch.attacks.len() as u32;
            let rep = serve(app, RScheme::SgxBounds, &graceful_policy(), &sch);
            assert!(rep.intact(), "{}", app.label());
            assert_eq!(rep.lost, 0, "{}", app.label());
            assert_eq!(rep.degraded, attacks, "{}", app.label());
            assert_eq!(rep.served, 24 - attacks, "{}", app.label());
            assert_eq!(rep.availability(), 1.0);
        }
    }

    #[test]
    fn boundless_serves_attacks_as_degraded_with_canaries_intact() {
        for app in ServerApp::ALL {
            let sch = quiet_schedule(7, 24);
            let attacks = sch.attacks.len() as u32;
            let rep = serve(app, RScheme::Boundless, &boundless_policy(), &sch);
            assert!(rep.intact(), "{}", app.label());
            assert_eq!(rep.lost, 0, "{}", app.label());
            assert_eq!(rep.aborted, 0, "{}", app.label());
            assert_eq!(rep.degraded, attacks, "{}", app.label());
            assert!(rep.tolerated_violations > 0, "{}", app.label());
            assert_eq!(rep.availability(), 1.0);
        }
    }

    #[test]
    fn latency_counts_every_attempted_request() {
        let sch = quiet_schedule(7, 24);
        // Crash-only: every request is attempted, so every request samples.
        let rep = serve(
            ServerApp::Memcached,
            RScheme::SgxBounds,
            &graceful_policy(),
            &sch,
        );
        assert_eq!(
            rep.latency.count(),
            (rep.served + rep.degraded + rep.aborted) as u64
        );
        assert_eq!(rep.latency.count(), 24);
        assert!(rep.latency.min() > 0, "a request takes at least one cycle");
        assert!(rep.latency.p50() <= rep.latency.p999());
        // Fail-stop: lost requests never ran, so they don't sample.
        let rep = serve(
            ServerApp::Memcached,
            RScheme::SgxBounds,
            &abort_policy(),
            &sch,
        );
        assert!(rep.lost > 0);
        assert_eq!(
            rep.latency.count(),
            (rep.served + rep.degraded + rep.aborted) as u64
        );
    }

    #[test]
    fn traced_serve_collects_spans_without_perturbing_the_report() {
        use sgxs_metrics::SpanCollector;

        let sch = ChaosSchedule::generate(11, 16);
        let plain = serve(
            ServerApp::Nginx,
            RScheme::Boundless,
            &boundless_policy(),
            &sch,
        );
        let rec = Rc::new(RefCell::new(SpanCollector::default()));
        let traced = serve_traced(
            ServerApp::Nginx,
            RScheme::Boundless,
            &boundless_policy(),
            &sch,
            ExecTier::default(),
            rec.clone(),
        );
        // Recording must not change a single number in the report.
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        let spans = Rc::try_unwrap(rec).expect("sole owner").into_inner();
        assert_eq!(spans.open_depth(), 0, "span stream balances");
        let nodes = spans.nodes();
        assert_eq!(nodes[0].name, "serve");
        assert_eq!(nodes[0].arg, sch.seed);
        let requests: Vec<_> = nodes.iter().filter(|n| n.name == "request").collect();
        assert_eq!(requests.len(), 16);
        assert!(requests.iter().all(|n| n.parent == Some(0)));
        // The instrumented scheme executes checks inside requests.
        assert!(nodes.iter().any(|n| n.name == "check" && n.depth == 2));
        assert!(requests.iter().any(|n| n.check_cycles > 0));
    }

    #[test]
    fn full_chaos_schedule_keeps_boundless_available() {
        // With environmental windows on, the boundless + retry combo still
        // answers every request on this seed.
        let sch = ChaosSchedule::generate(11, 32);
        let rep = serve(
            ServerApp::Apache,
            RScheme::Boundless,
            &boundless_policy(),
            &sch,
        );
        assert!(rep.intact());
        assert_eq!(rep.lost, 0);
        assert!(
            rep.availability() >= 0.9,
            "availability {}",
            rep.availability()
        );
    }
}
