//! Deterministic seed-driven chaos schedules.
//!
//! A [`ChaosSchedule`] describes everything hostile that happens to one
//! server run: which requests are attacks (oversized, length-trusting
//! bodies) and which *environmental* fault windows are active — EPC
//! pressure storms, allocator failure injection, boundless overlay-cache
//! exhaustion, and async-enclave-exit (AEX) re-entry storms. Schedules are
//! pure functions of `(seed, requests)`, so every campaign row is exactly
//! reproducible from its seed.

use sgxs_rt::AllocFaultPlan;

/// One kind of environmental fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// EPC pressure storm: clamp the enclave page cache to `clamp_pages`
    /// for the window (other enclaves grabbing protected pages); restored
    /// to the configured capacity when the window closes.
    EpcStorm {
        /// Pages the EPC is clamped to during the storm.
        clamp_pages: usize,
    },
    /// Allocator failure injection: during the window `malloc`/`mmap`
    /// fail with `OutOfMemory` at `fail_per_1024`/1024 probability, at most
    /// `budget` times.
    AllocFaults {
        /// Failure probability numerator (denominator 1024).
        fail_per_1024: u16,
        /// Maximum injected failures in the window.
        budget: u32,
    },
    /// Boundless overlay-cache exhaustion: clamp the cache capacity to
    /// `cap_bytes` (no-op for schemes without an overlay).
    OverlayClamp {
        /// Clamped overlay capacity in bytes.
        cap_bytes: u64,
    },
    /// AEX re-entry storm: every request in the window pays
    /// `reentry_cycles` of enclave re-entry cost (TLB flush + EPC walk).
    AexStorm {
        /// Extra cycles charged per request in the window.
        reentry_cycles: u64,
    },
}

impl ChaosKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::EpcStorm { .. } => "epc-storm",
            ChaosKind::AllocFaults { .. } => "alloc-faults",
            ChaosKind::OverlayClamp { .. } => "overlay-clamp",
            ChaosKind::AexStorm { .. } => "aex-storm",
        }
    }
}

/// One fault window: active for requests `start .. start + duration`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosEvent {
    /// First request index the window covers.
    pub start: u32,
    /// Number of requests the window lasts.
    pub duration: u32,
    /// What goes wrong.
    pub kind: ChaosKind,
}

impl ChaosEvent {
    /// True when the window covers request `r`.
    pub fn covers(&self, r: u32) -> bool {
        r >= self.start && r < self.start.saturating_add(self.duration)
    }
}

/// A complete deterministic fault plan for one server run.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Generating seed.
    pub seed: u64,
    /// Requests in the run.
    pub requests: u32,
    /// Request indices carrying an attack body (sorted, deduplicated).
    pub attacks: Vec<u32>,
    /// Environmental fault windows.
    pub events: Vec<ChaosEvent>,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl ChaosSchedule {
    /// Generates the schedule for `(seed, requests)`.
    ///
    /// Every schedule carries at least one attack at a request index ≥ 1,
    /// so fail-stop configurations always have availability to lose on it,
    /// and between one and four environmental windows drawn from all four
    /// [`ChaosKind`]s.
    pub fn generate(seed: u64, requests: u32) -> ChaosSchedule {
        let requests = requests.max(4);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut roll = move |bound: u64| xorshift(&mut s) % bound.max(1);

        // Attacks: 1 guaranteed + ~10% of the remaining requests.
        let mut attacks = vec![1 + roll(requests as u64 - 1) as u32];
        for r in 0..requests {
            if roll(10) == 0 {
                attacks.push(r);
            }
        }
        attacks.sort_unstable();
        attacks.dedup();

        let mut events = Vec::new();
        let window = |roll: &mut dyn FnMut(u64) -> u64| {
            let start = roll(requests as u64) as u32;
            let duration = 1 + roll((requests / 4).max(1) as u64) as u32;
            (start, duration)
        };
        // 0–2 EPC storms.
        for _ in 0..roll(3) {
            let (start, duration) = window(&mut roll);
            events.push(ChaosEvent {
                start,
                duration,
                kind: ChaosKind::EpcStorm {
                    clamp_pages: 8 + roll(56) as usize,
                },
            });
        }
        // 0–2 allocator-failure windows (moderate rates: recovery policies
        // with retry budgets are expected to ride them out).
        for _ in 0..roll(3) {
            let (start, duration) = window(&mut roll);
            events.push(ChaosEvent {
                start,
                duration,
                kind: ChaosKind::AllocFaults {
                    fail_per_1024: 64 + roll(192) as u16,
                    budget: 2 + roll(8) as u32,
                },
            });
        }
        // 0–1 overlay clamp.
        if roll(2) == 0 {
            let (start, duration) = window(&mut roll);
            events.push(ChaosEvent {
                start,
                duration,
                kind: ChaosKind::OverlayClamp {
                    cap_bytes: (4 + roll(28)) * 1024,
                },
            });
        }
        // 0–2 AEX storms.
        for _ in 0..roll(3) {
            let (start, duration) = window(&mut roll);
            events.push(ChaosEvent {
                start,
                duration,
                kind: ChaosKind::AexStorm {
                    reentry_cycles: 3000 + roll(9000),
                },
            });
        }
        ChaosSchedule {
            seed,
            requests,
            attacks,
            events,
        }
    }

    /// True when request `r` carries the attack body.
    pub fn is_attack(&self, r: u32) -> bool {
        self.attacks.binary_search(&r).is_ok()
    }

    /// The allocator fault plan for an [`ChaosKind::AllocFaults`] window,
    /// seeded from the schedule seed and the window's position so distinct
    /// windows draw distinct failure streams.
    pub fn fault_plan(&self, event_index: usize) -> Option<AllocFaultPlan> {
        match self.events.get(event_index)?.kind {
            ChaosKind::AllocFaults {
                fail_per_1024,
                budget,
            } => Some(
                AllocFaultPlan::new(
                    self.seed ^ (event_index as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    fail_per_1024,
                )
                .with_budget(budget),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_always_armed() {
        for seed in 0..40u64 {
            let a = ChaosSchedule::generate(seed, 48);
            let b = ChaosSchedule::generate(seed, 48);
            assert_eq!(a.attacks, b.attacks, "seed {seed}");
            assert_eq!(a.events.len(), b.events.len(), "seed {seed}");
            assert!(!a.attacks.is_empty(), "seed {seed}: no attack scheduled");
            assert!(
                a.attacks.iter().any(|&r| r >= 1),
                "seed {seed}: needs an attack after request 0"
            );
            for &r in &a.attacks {
                assert!(r < 48, "seed {seed}: attack {r} out of range");
            }
            for e in &a.events {
                assert!(e.start < 48, "seed {seed}: window starts out of range");
                assert!(e.duration >= 1);
            }
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_plans() {
        let plans: Vec<Vec<u32>> = (0..16)
            .map(|s| ChaosSchedule::generate(s, 48).attacks)
            .collect();
        let distinct = plans.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 8, "only {distinct} distinct attack plans");
    }

    #[test]
    fn alloc_windows_expose_fault_plans() {
        // Find a seed whose schedule has an alloc-fault window and check
        // the plan is deterministic per (seed, index).
        let mut found = false;
        for seed in 0..64u64 {
            let sch = ChaosSchedule::generate(seed, 48);
            for (i, e) in sch.events.iter().enumerate() {
                if matches!(e.kind, ChaosKind::AllocFaults { .. }) {
                    let a = sch.fault_plan(i).expect("plan for alloc window");
                    let b = sch.fault_plan(i).expect("plan for alloc window");
                    assert_eq!(a.fail_per_1024, b.fail_per_1024);
                    assert_eq!(a.budget, b.budget);
                    found = true;
                } else {
                    assert!(sch.fault_plan(i).is_none());
                }
            }
        }
        assert!(found, "no alloc-fault window in 64 seeds");
    }
}
