#![warn(missing_docs)]

//! `sgxs-resil` — the recovery-and-chaos tier.
//!
//! The paper's §4.2 and §7 argue that SGXBounds' boundless-memory mode buys
//! *availability*: a server that tolerates out-of-bounds accesses keeps
//! serving requests where a fail-stop scheme dies on the first one. This
//! crate turns that claim into a measured experiment:
//!
//! * [`chaos`] — deterministic seed-driven fault schedules: attack
//!   requests plus environmental windows (EPC pressure storms, allocator
//!   failure injection, overlay-cache exhaustion, AEX re-entry storms);
//! * [`serve`] — request-level crash isolation for the per-request server
//!   modules in `sgxs-workloads` (nginx / apache / memcached): one
//!   `vm.run` per request, recovery governed by a
//!   [`PolicySet`], cross-object corruption checked against host-known
//!   canary objects after the run;
//! * [`campaign`] — seeds × scheme/policy matrices with an availability
//!   gate and the `sgxs-chaos-v1` JSON document (driven by `repro chaos`).
//!
//! The recovery policies themselves live in the interpreter
//! ([`sgxs_mir::interp::recovery`]) so they can intercept traps on the
//! scheduler loop's otherwise-terminal path; this crate re-exports them.

pub mod campaign;
pub mod chaos;
pub mod serve;

pub use campaign::{
    run_chaos_campaign, run_chaos_campaign_supervised, run_chaos_seed, CampaignOpts, ChaosCampaign,
    ChaosOutcome, ChaosReport, ComboDelta, ComboRow,
};
pub use chaos::{ChaosEvent, ChaosKind, ChaosSchedule};
pub use serve::{
    abort_policy, boundless_policy, graceful_policy, retry_policy, serve, serve_forensic,
    serve_tier, serve_traced, AvailabilityReport, RScheme, ServerApp,
};
pub use sgxs_mir::{PolicySet, RecoveryPolicy, RecoveryStats, TrapClass};
