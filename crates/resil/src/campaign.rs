//! Chaos campaigns: many seeds × scheme/policy combos, aggregated into an
//! availability matrix with a CI gate and a `sgxs-chaos-v1` JSON document.

use crate::chaos::ChaosSchedule;
use crate::serve::{
    abort_policy, boundless_policy, graceful_policy, retry_policy, serve_forensic, serve_tier,
    AvailabilityReport, RScheme, ServerApp,
};
use sgxs_audit::{FaultInfo, Incident, IncidentMeta, DEFAULT_TRACE_WINDOW};
use sgxs_metrics::{Hist, Registry};
use sgxs_mir::PolicySet;
use sgxs_obs::json::Json;
use sgxs_sim::ExecTier;
use std::fmt::Write as _;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Seeds (one server run per seed per combo; the app rotates by seed).
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Requests per server run.
    pub requests: u32,
    /// Minimum availability the boundless combo must reach (gate).
    pub threshold: f64,
    /// CI negative test: also gate the native combo's corruption, which a
    /// working corruption oracle always reports.
    pub demo_corruption: bool,
    /// Execution tier to run every server on. The emitted `sgxs-chaos-v1`
    /// document carries no tier field on purpose: a campaign run on the
    /// compiled tier must produce a byte-identical document, and CI diffs
    /// the two.
    pub tier: ExecTier,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            seeds: 100,
            seed0: 1,
            requests: 48,
            threshold: 0.90,
            demo_corruption: false,
            tier: ExecTier::default(),
        }
    }
}

/// One scheme × policy configuration under campaign test.
pub struct Combo {
    /// Scheme to instrument with.
    pub scheme: RScheme,
    /// Policy-set label for reports.
    pub policy: &'static str,
    /// The recovery policies.
    pub policies: PolicySet,
    /// Whether the corruption gate applies (protected schemes only).
    pub gated: bool,
}

/// The campaign matrix: the fail-stop baselines, the crash-only lattice
/// steps, and the boundless deployment.
pub fn combos() -> Vec<Combo> {
    vec![
        Combo {
            scheme: RScheme::Native,
            policy: "abort",
            policies: abort_policy(),
            gated: false,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "abort",
            policies: abort_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "graceful",
            policies: graceful_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "retry",
            policies: retry_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::Boundless,
            policy: "boundless",
            policies: boundless_policy(),
            gated: true,
        },
    ]
}

/// Aggregated results for one combo across every seed.
#[derive(Debug, Clone, Default)]
pub struct ComboRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Server runs.
    pub runs: u64,
    /// Total requests scheduled.
    pub total: u64,
    /// Served cleanly.
    pub served: u64,
    /// Degraded but answered.
    pub degraded: u64,
    /// Aborted individually (crash-only isolation).
    pub aborted: u64,
    /// Lost to whole-server death (fail-stop).
    pub lost: u64,
    /// Interpreter retry attempts.
    pub retries: u64,
    /// Runs that ended with corrupted canaries.
    pub corrupted_runs: u64,
    /// Total corrupted canary bytes.
    pub corrupted_bytes: u64,
    /// AEX re-entry cycles charged.
    pub aex_cycles: u64,
    /// Per-request wall-cycle latency, merged across every seed's run.
    /// Each seed's [`AvailabilityReport`] is one shard; the merge is
    /// order- and shard-count-independent, so a future parallel runner
    /// reproduces this histogram bit-for-bit.
    pub latency: Hist,
}

impl ComboRow {
    fn add(&mut self, r: &AvailabilityReport) {
        self.runs += 1;
        self.total += r.total as u64;
        self.served += r.served as u64;
        self.degraded += r.degraded as u64;
        self.aborted += r.aborted as u64;
        self.lost += r.lost as u64;
        self.retries += r.recovery.attempts;
        if !r.intact() {
            self.corrupted_runs += 1;
        }
        self.corrupted_bytes += r.corrupted_canary_bytes as u64;
        self.aex_cycles += r.aex_penalty_cycles;
        self.latency.merge(&r.latency);
    }

    /// Answered fraction across every scheduled request.
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.served + self.degraded) as f64 / self.total as f64
    }
}

/// Campaign results.
pub struct ChaosReport {
    /// The options the campaign ran with.
    pub opts: CampaignOpts,
    /// One row per combo, `combos()` order.
    pub rows: Vec<ComboRow>,
    /// Gate failures, human-readable.
    pub failures: Vec<String>,
    /// One `sgxs-incident-v1` forensic record per combo whose corruption
    /// gate failed, assembled from a forensic re-run of that combo's first
    /// corrupted seed. Empty when the corruption gates all hold.
    pub incidents: Vec<Incident>,
}

impl ChaosReport {
    /// True when any gate condition failed.
    pub fn gate_failed(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Renders the availability matrix.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "chaos campaign: {} seeds x {} combos, {} requests/run, \
             availability threshold {:.2}\n",
            self.opts.seeds,
            self.rows.len(),
            self.opts.requests,
            self.opts.threshold
        );
        let _ = writeln!(
            s,
            "  {:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
            "scheme/policy",
            "runs",
            "served",
            "degraded",
            "aborted",
            "lost",
            "retries",
            "corrupted",
            "avail"
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "  {:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7.1}%",
                format!("{}/{}", row.scheme, row.policy),
                row.runs,
                row.served,
                row.degraded,
                row.aborted,
                row.lost,
                row.retries,
                format!("{}B/{}r", row.corrupted_bytes, row.corrupted_runs),
                row.availability() * 100.0
            );
        }
        let _ = writeln!(
            s,
            "\n  {:<22} {:>12} {:>12} {:>12} {:>12}",
            "latency (cycles)", "p50", "p90", "p99", "p999"
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "  {:<22} {:>12} {:>12} {:>12} {:>12}",
                format!("{}/{}", row.scheme, row.policy),
                row.latency.p50(),
                row.latency.p90(),
                row.latency.p99(),
                row.latency.p999()
            );
        }
        if self.failures.is_empty() {
            let _ = writeln!(s, "\ngate: ok");
        } else {
            let _ = writeln!(s, "\ngate: FAILED");
            for f in &self.failures {
                let _ = writeln!(s, "  {f}");
            }
        }
        s
    }

    /// The campaign's metrics registry (`sgxs-metrics-v1`): one latency
    /// histogram per scheme × policy, request-outcome counters, and a
    /// peak-latency gauge. Fully derived from the rows, so it inherits
    /// their tier- and run-order-independence.
    pub fn metrics(&self) -> Registry {
        let mut reg = Registry::new();
        for row in &self.rows {
            let combo = format!("{}/{}", row.scheme, row.policy);
            reg.merge_hist(&format!("latency/{combo}"), &row.latency);
            reg.gauge_max(&format!("latency_max/{combo}"), row.latency.max());
            reg.counter_add(&format!("requests/{combo}/served"), row.served);
            reg.counter_add(&format!("requests/{combo}/degraded"), row.degraded);
            reg.counter_add(&format!("requests/{combo}/aborted"), row.aborted);
            reg.counter_add(&format!("requests/{combo}/lost"), row.lost);
        }
        reg
    }

    /// The `sgxs-chaos-v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "sgxs-chaos-v1".into()),
            ("seeds", self.opts.seeds.into()),
            ("seed0", self.opts.seed0.into()),
            ("requests", (self.opts.requests as u64).into()),
            ("threshold", self.opts.threshold.into()),
            (
                "combos",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("scheme", r.scheme.into()),
                                ("policy", r.policy.into()),
                                ("runs", r.runs.into()),
                                ("total", r.total.into()),
                                ("served", r.served.into()),
                                ("degraded", r.degraded.into()),
                                ("aborted", r.aborted.into()),
                                ("lost", r.lost.into()),
                                ("retries", r.retries.into()),
                                ("corrupted_runs", r.corrupted_runs.into()),
                                ("corrupted_bytes", r.corrupted_bytes.into()),
                                ("aex_cycles", r.aex_cycles.into()),
                                ("availability", r.availability().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            // The embedded sgxs-metrics-v1 document: per-combo latency
            // histograms with p50/p90/p99/p999. Like the rest of the
            // chaos doc, byte-identical across execution tiers.
            ("latency", self.metrics().to_json()),
            // Embedded sgxs-incident-v1 forensics for gate-failing
            // corruption, validated by `sgxs_obs::read::parse_chaos`.
            (
                "incidents",
                Json::Arr(self.incidents.iter().map(|i| i.to_json()).collect()),
            ),
            (
                "gate",
                Json::obj(vec![
                    ("failed", self.gate_failed().into()),
                    (
                        "failures",
                        Json::Arr(self.failures.iter().map(|f| f.as_str().into()).collect()),
                    ),
                ]),
            ),
        ])
    }
}

/// Runs the campaign: every combo over every seed, the app rotating with
/// the seed so all three servers contribute to every row.
pub fn run_chaos_campaign(opts: &CampaignOpts) -> ChaosReport {
    let combos = combos();
    let mut rows: Vec<ComboRow> = combos
        .iter()
        .map(|c| ComboRow {
            scheme: c.scheme.label(),
            policy: c.policy,
            ..ComboRow::default()
        })
        .collect();
    let mut first_corrupted_seed: Vec<Option<u64>> = vec![None; combos.len()];
    for i in 0..opts.seeds {
        let seed = opts.seed0 + i;
        let schedule = ChaosSchedule::generate(seed, opts.requests);
        let app = ServerApp::ALL[(seed % ServerApp::ALL.len() as u64) as usize];
        for (c, (combo, row)) in combos.iter().zip(rows.iter_mut()).enumerate() {
            let rep = serve_tier(app, combo.scheme, &combo.policies, &schedule, opts.tier);
            if !rep.intact() && first_corrupted_seed[c].is_none() {
                first_corrupted_seed[c] = Some(seed);
            }
            row.add(&rep);
        }
    }

    let mut failures = Vec::new();
    let mut incidents = Vec::new();
    for (c, (combo, row)) in combos.iter().zip(rows.iter()).enumerate() {
        let gated = combo.gated || (opts.demo_corruption && combo.scheme == RScheme::Native);
        if gated && row.corrupted_bytes > 0 {
            failures.push(format!(
                "{}/{}: {} corrupted canary bytes across {} run(s) — \
                 cross-object corruption escaped the scheme",
                row.scheme, row.policy, row.corrupted_bytes, row.corrupted_runs
            ));
            incidents.push(corruption_incident(
                opts,
                combo,
                first_corrupted_seed[c].expect("corrupted combo has a corrupted seed"),
            ));
        }
        if combo.scheme == RScheme::Boundless && row.availability() < opts.threshold {
            failures.push(format!(
                "{}/{}: availability {:.3} below threshold {:.2}",
                row.scheme,
                row.policy,
                row.availability(),
                opts.threshold
            ));
        }
    }
    ChaosReport {
        opts: opts.clone(),
        rows,
        failures,
        incidents,
    }
}

/// Forensic re-run of the first corrupted seed of a gate-failing combo:
/// the same server run with a ledger recorder attached (zero-perturbation,
/// so the availability numbers reproduce exactly), assembled into an
/// incident around the first corrupted canary byte. Corruption is found
/// post-run by the canary scan, not by a firing check, so the fault block
/// is a [`FaultInfo::post_run`] record.
fn corruption_incident(opts: &CampaignOpts, combo: &Combo, seed: u64) -> Incident {
    let schedule = ChaosSchedule::generate(seed, opts.requests);
    let app = ServerApp::ALL[(seed % ServerApp::ALL.len() as u64) as usize];
    let (rep, rec, first) = serve_forensic(
        app,
        combo.scheme,
        &combo.policies,
        &schedule,
        opts.tier,
        DEFAULT_TRACE_WINDOW,
    );
    let meta = IncidentMeta {
        origin: "chaos".into(),
        workload: format!("{}-seed-{seed}", app.label()),
        scheme: format!("{}/{}", combo.scheme.label(), combo.policy),
        tier: "pinned".into(),
        verdict: "corrupted".into(),
    };
    let fault = first.map(|addr| FaultInfo::post_run(addr as u64, rep.corrupted_canary_bytes));
    Incident::assemble_with(meta, fault, &rec, DEFAULT_TRACE_WINDOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_the_gate_and_orders_the_lattice() {
        let opts = CampaignOpts {
            seeds: 6,
            seed0: 1,
            requests: 24,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        assert!(!rep.gate_failed(), "{}", rep.render());
        // Native corrupts but is not gated by default — no incident.
        assert!(rep.incidents.is_empty());
        let avail: std::collections::HashMap<(&str, &str), f64> = rep
            .rows
            .iter()
            .map(|r| ((r.scheme, r.policy), r.availability()))
            .collect();
        // Fail-stop loses availability; the crash-only and boundless
        // configurations answer everything the schedule throws at them.
        assert!(avail[&("sgxbounds", "abort")] < avail[&("sgxbounds", "graceful")]);
        assert!(avail[&("sb-boundless", "boundless")] >= opts.threshold);
        // Native corrupts (reported, not gated by default).
        let native = &rep.rows[0];
        assert!(native.corrupted_bytes > 0);
        let json = rep.to_json().to_pretty();
        assert!(json.contains("sgxs-chaos-v1"));
        assert!(json.contains("availability"));
        // The embedded latency block is a full sgxs-metrics-v1 document.
        assert!(json.contains("sgxs-metrics-v1"));
        assert!(json.contains("p999"));
        assert!(json.contains("latency/sb-boundless/boundless"));
        // Every attempted request sampled.
        for row in &rep.rows {
            assert_eq!(
                row.latency.count(),
                row.served + row.degraded + row.aborted,
                "{}/{}",
                row.scheme,
                row.policy
            );
        }
    }

    #[test]
    fn split_campaign_registries_merge_to_the_full_campaign() {
        // Production shard merge: running the first and second halves of a
        // seed range as separate campaigns and merging their registries
        // must serialize byte-identically to the single full campaign —
        // the property the parallel seed-shard pool will rely on.
        let full = run_chaos_campaign(&CampaignOpts {
            seeds: 4,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        });
        let lo = run_chaos_campaign(&CampaignOpts {
            seeds: 2,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        });
        let hi = run_chaos_campaign(&CampaignOpts {
            seeds: 2,
            seed0: 3,
            requests: 16,
            ..CampaignOpts::default()
        });
        let mut merged = hi.metrics();
        merged.merge(&lo.metrics());
        assert_eq!(
            merged.to_json().to_pretty(),
            full.metrics().to_json().to_pretty()
        );
    }

    #[test]
    fn emitted_chaos_doc_round_trips_through_the_validating_reader() {
        // Write → parse: the document a real campaign emits must satisfy
        // every cross-check `sgxs_obs::read::parse_chaos` enforces (ledger
        // sums, availability arithmetic, per-combo latency sample counts,
        // gate/failure agreement).
        let opts = CampaignOpts {
            seeds: 3,
            seed0: 7,
            requests: 16,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        let doc = sgxs_obs::read::parse_chaos(&rep.to_json().to_pretty())
            .expect("own chaos output parses back");
        assert_eq!((doc.seeds, doc.seed0, doc.requests), (3, 7, 16));
        assert_eq!(doc.combos.len(), rep.rows.len());
        assert_eq!(doc.gate_failed, rep.gate_failed());
        let lat = doc.latency.as_ref().expect("latency block present");
        for (c, row) in doc.combos.iter().zip(&rep.rows) {
            assert_eq!(c.scheme, row.scheme);
            assert_eq!(c.total, row.total);
            let h = lat
                .hist(&format!("latency/{}/{}", c.scheme, c.policy))
                .expect("per-combo latency histogram");
            assert_eq!(h.count, row.latency.count());
            assert_eq!(h.p999, row.latency.percentile_permille(999));
        }
    }

    #[test]
    fn demo_corruption_flag_fails_the_gate() {
        let opts = CampaignOpts {
            seeds: 2,
            seed0: 1,
            requests: 16,
            demo_corruption: true,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        assert!(rep.gate_failed(), "{}", rep.render());
        assert!(rep.failures.iter().any(|f| f.contains("native")));
        // The failing corruption gate comes with a forensic incident built
        // around the first corrupted canary byte, and the embedded document
        // survives the validating reader's cross-checks.
        assert_eq!(rep.incidents.len(), 1);
        let inc = &rep.incidents[0];
        assert_eq!(inc.meta.origin, "chaos");
        assert_eq!(inc.meta.verdict, "corrupted");
        assert!(inc.fault.is_some(), "corruption incident carries a fault");
        assert!(
            !inc.neighborhood.is_empty(),
            "canary corruption has heap neighbours by construction"
        );
        let doc = sgxs_obs::read::parse_chaos(&rep.to_json().to_pretty())
            .expect("chaos doc with embedded incidents parses back");
        assert_eq!(doc.incidents.len(), 1);
        assert_eq!(doc.incidents[0].origin, "chaos");
        // Rerun: the incident (id included) is byte-stable.
        let again = run_chaos_campaign(&opts);
        assert_eq!(
            rep.to_json().to_pretty(),
            again.to_json().to_pretty(),
            "chaos doc with incidents is not rerun-stable"
        );
    }
}
