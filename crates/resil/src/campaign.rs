//! Chaos campaigns: many seeds × scheme/policy combos, aggregated into an
//! availability matrix with a CI gate and a `sgxs-chaos-v1` JSON document.

use crate::chaos::ChaosSchedule;
use crate::serve::{
    abort_policy, boundless_policy, graceful_policy, retry_policy, serve_forensic, serve_tier,
    AvailabilityReport, RScheme, ServerApp,
};
use sgxs_audit::{FaultInfo, Incident, IncidentMeta, DEFAULT_TRACE_WINDOW};
use sgxs_metrics::{Hist, Registry};
use sgxs_mir::PolicySet;
use sgxs_obs::json::Json;
use sgxs_sim::ExecTier;
use sgxs_super::{
    supervise, Campaign, Coverage, Quarantined, Restored, StopFlag, SuperOpts, TaskError,
};
use std::fmt::Write as _;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Seeds (one server run per seed per combo; the app rotates by seed).
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Requests per server run.
    pub requests: u32,
    /// Minimum availability the boundless combo must reach (gate).
    pub threshold: f64,
    /// CI negative test: also gate the native combo's corruption, which a
    /// working corruption oracle always reports.
    pub demo_corruption: bool,
    /// Execution tier to run every server on. The emitted `sgxs-chaos-v1`
    /// document carries no tier field on purpose: a campaign run on the
    /// compiled tier must produce a byte-identical document, and CI diffs
    /// the two.
    pub tier: ExecTier,
    /// Demo hook: this seed panics at the top of its run, exercising the
    /// supervisor's panic isolation end to end (`--demo-panic SEED`).
    pub demo_panic: Option<u64>,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            seeds: 100,
            seed0: 1,
            requests: 48,
            threshold: 0.90,
            demo_corruption: false,
            tier: ExecTier::default(),
            demo_panic: None,
        }
    }
}

/// One scheme × policy configuration under campaign test.
pub struct Combo {
    /// Scheme to instrument with.
    pub scheme: RScheme,
    /// Policy-set label for reports.
    pub policy: &'static str,
    /// The recovery policies.
    pub policies: PolicySet,
    /// Whether the corruption gate applies (protected schemes only).
    pub gated: bool,
}

/// The campaign matrix: the fail-stop baselines, the crash-only lattice
/// steps, and the boundless deployment.
pub fn combos() -> Vec<Combo> {
    vec![
        Combo {
            scheme: RScheme::Native,
            policy: "abort",
            policies: abort_policy(),
            gated: false,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "abort",
            policies: abort_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "graceful",
            policies: graceful_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::SgxBounds,
            policy: "retry",
            policies: retry_policy(),
            gated: true,
        },
        Combo {
            scheme: RScheme::Boundless,
            policy: "boundless",
            policies: boundless_policy(),
            gated: true,
        },
    ]
}

/// Aggregated results for one combo across every seed.
#[derive(Debug, Clone, Default)]
pub struct ComboRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Server runs.
    pub runs: u64,
    /// Total requests scheduled.
    pub total: u64,
    /// Served cleanly.
    pub served: u64,
    /// Degraded but answered.
    pub degraded: u64,
    /// Aborted individually (crash-only isolation).
    pub aborted: u64,
    /// Lost to whole-server death (fail-stop).
    pub lost: u64,
    /// Interpreter retry attempts.
    pub retries: u64,
    /// Runs that ended with corrupted canaries.
    pub corrupted_runs: u64,
    /// Total corrupted canary bytes.
    pub corrupted_bytes: u64,
    /// AEX re-entry cycles charged.
    pub aex_cycles: u64,
    /// Per-request wall-cycle latency, merged across every seed's run.
    /// Each seed's [`AvailabilityReport`] is one shard; the merge is
    /// order- and shard-count-independent, so a future parallel runner
    /// reproduces this histogram bit-for-bit.
    pub latency: Hist,
}

impl ComboRow {
    /// Folds one seed's delta for this combo into the row. Pure counter
    /// and histogram merges: associative and shard-count-independent, so
    /// absorbing per-seed deltas in seed order reproduces the sequential
    /// campaign bit-for-bit.
    fn absorb(&mut self, d: &ComboDelta) {
        self.runs += 1;
        self.total += d.total;
        self.served += d.served;
        self.degraded += d.degraded;
        self.aborted += d.aborted;
        self.lost += d.lost;
        self.retries += d.retries;
        if d.corrupted {
            self.corrupted_runs += 1;
        }
        self.corrupted_bytes += d.corrupted_bytes;
        self.aex_cycles += d.aex_cycles;
        self.latency.merge(&d.latency);
    }

    /// Answered fraction across every scheduled request.
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.served + self.degraded) as f64 / self.total as f64
    }
}

/// One combo's contribution from a single seed: the per-seed unit of work
/// the supervisor schedules, journals, and merges. Carries everything
/// [`ComboRow::absorb`] needs — including the full latency histogram as
/// exact parts — so a journal-restored delta is indistinguishable from a
/// freshly-run one.
#[derive(Debug, Clone)]
pub struct ComboDelta {
    /// Requests scheduled.
    pub total: u64,
    /// Served cleanly.
    pub served: u64,
    /// Degraded but answered.
    pub degraded: u64,
    /// Aborted individually.
    pub aborted: u64,
    /// Lost to whole-server death.
    pub lost: u64,
    /// Interpreter retry attempts.
    pub retries: u64,
    /// Whether this run ended with corrupted canaries.
    pub corrupted: bool,
    /// Corrupted canary bytes.
    pub corrupted_bytes: u64,
    /// AEX re-entry cycles charged.
    pub aex_cycles: u64,
    /// This run's per-request latency histogram.
    pub latency: Hist,
}

impl ComboDelta {
    fn from_report(r: &AvailabilityReport) -> ComboDelta {
        ComboDelta {
            total: r.total as u64,
            served: r.served as u64,
            degraded: r.degraded as u64,
            aborted: r.aborted as u64,
            lost: r.lost as u64,
            retries: r.recovery.attempts,
            corrupted: !r.intact(),
            corrupted_bytes: r.corrupted_canary_bytes as u64,
            aex_cycles: r.aex_penalty_cycles,
            latency: r.latency.clone(),
        }
    }

    /// The journal checkpoint for this delta: counters plus the latency
    /// histogram's exact parts ([`Hist::from_parts`] round-trips `Eq`, so
    /// the restored histogram merges byte-identically).
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", self.total.into()),
            ("served", self.served.into()),
            ("degraded", self.degraded.into()),
            ("aborted", self.aborted.into()),
            ("lost", self.lost.into()),
            ("retries", self.retries.into()),
            ("corrupted", self.corrupted.into()),
            ("corrupted_bytes", self.corrupted_bytes.into()),
            ("aex_cycles", self.aex_cycles.into()),
            (
                "lat",
                Json::obj(vec![
                    ("count", self.latency.count().into()),
                    ("sum", self.latency.sum().into()),
                    ("min", self.latency.min().into()),
                    ("max", self.latency.max().into()),
                    (
                        "buckets",
                        Json::Arr(
                            self.latency
                                .nonzero_buckets()
                                .into_iter()
                                .map(|(i, c)| Json::Arr(vec![(i as u64).into(), c.into()]))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<ComboDelta, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("chaos checkpoint: missing {k}"))
        };
        let lat = v
            .get("lat")
            .ok_or_else(|| "chaos checkpoint: missing lat".to_owned())?;
        let lfield = |k: &str| {
            lat.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("chaos checkpoint: missing lat.{k}"))
        };
        let mut buckets = Vec::new();
        for b in lat
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| "chaos checkpoint: missing lat.buckets".to_owned())?
        {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "chaos checkpoint: malformed bucket".to_owned())?;
            let idx = pair[0]
                .as_u64()
                .ok_or_else(|| "chaos checkpoint: non-integer bucket index".to_owned())?;
            let count = pair[1]
                .as_u64()
                .ok_or_else(|| "chaos checkpoint: non-integer bucket count".to_owned())?;
            buckets.push((idx as usize, count));
        }
        Ok(ComboDelta {
            total: field("total")?,
            served: field("served")?,
            degraded: field("degraded")?,
            aborted: field("aborted")?,
            lost: field("lost")?,
            retries: field("retries")?,
            corrupted: v
                .get("corrupted")
                .and_then(Json::as_bool)
                .ok_or_else(|| "chaos checkpoint: missing corrupted".to_owned())?,
            corrupted_bytes: field("corrupted_bytes")?,
            aex_cycles: field("aex_cycles")?,
            latency: Hist::from_parts(
                lfield("count")?,
                lfield("sum")?,
                lfield("min")?,
                lfield("max")?,
                &buckets,
            ),
        })
    }
}

/// Campaign results.
pub struct ChaosReport {
    /// The options the campaign ran with.
    pub opts: CampaignOpts,
    /// One row per combo, `combos()` order.
    pub rows: Vec<ComboRow>,
    /// Gate failures, human-readable.
    pub failures: Vec<String>,
    /// One `sgxs-incident-v1` forensic record per combo whose corruption
    /// gate failed, assembled from a forensic re-run of that combo's first
    /// corrupted seed. Empty when the corruption gates all hold.
    pub incidents: Vec<Incident>,
    /// Seeds quarantined by the supervisor's failure ladder, in seed
    /// order. Always empty in unsupervised runs.
    pub quarantine: Vec<Quarantined>,
    /// Seeds skipped by a graceful stop.
    pub skipped: u64,
}

impl ChaosReport {
    /// True when any gate condition failed.
    pub fn gate_failed(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Explicit coverage ledger over the seed range: every seed is
    /// completed (contributed to every row), quarantined, or skipped.
    pub fn coverage(&self) -> Coverage {
        let completed = self.rows.first().map(|r| r.runs).unwrap_or(0);
        Coverage {
            seeds: completed + self.quarantine.len() as u64 + self.skipped,
            completed,
            quarantined: self.quarantine.len() as u64,
            skipped: self.skipped,
        }
    }

    /// Renders the availability matrix.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "chaos campaign: {} seeds x {} combos, {} requests/run, \
             availability threshold {:.2}\n",
            self.opts.seeds,
            self.rows.len(),
            self.opts.requests,
            self.opts.threshold
        );
        let _ = writeln!(
            s,
            "  {:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
            "scheme/policy",
            "runs",
            "served",
            "degraded",
            "aborted",
            "lost",
            "retries",
            "corrupted",
            "avail"
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "  {:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7.1}%",
                format!("{}/{}", row.scheme, row.policy),
                row.runs,
                row.served,
                row.degraded,
                row.aborted,
                row.lost,
                row.retries,
                format!("{}B/{}r", row.corrupted_bytes, row.corrupted_runs),
                row.availability() * 100.0
            );
        }
        let _ = writeln!(
            s,
            "\n  {:<22} {:>12} {:>12} {:>12} {:>12}",
            "latency (cycles)", "p50", "p90", "p99", "p999"
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "  {:<22} {:>12} {:>12} {:>12} {:>12}",
                format!("{}/{}", row.scheme, row.policy),
                row.latency.p50(),
                row.latency.p90(),
                row.latency.p99(),
                row.latency.p999()
            );
        }
        if !self.quarantine.is_empty() {
            let _ = writeln!(s, "\nquarantined seeds:");
            for q in &self.quarantine {
                let _ = writeln!(
                    s,
                    "  seed {} [{} after {} attempt(s)]: {}",
                    q.seed, q.class, q.attempts, q.detail
                );
            }
        }
        if self.skipped > 0 {
            let _ = writeln!(s, "\n{} seed(s) skipped by early stop", self.skipped);
        }
        if self.failures.is_empty() {
            let _ = writeln!(s, "\ngate: ok");
        } else {
            let _ = writeln!(s, "\ngate: FAILED");
            for f in &self.failures {
                let _ = writeln!(s, "  {f}");
            }
        }
        s
    }

    /// The campaign's metrics registry (`sgxs-metrics-v1`): one latency
    /// histogram per scheme × policy, request-outcome counters, and a
    /// peak-latency gauge. Fully derived from the rows, so it inherits
    /// their tier- and run-order-independence.
    pub fn metrics(&self) -> Registry {
        let mut reg = Registry::new();
        for row in &self.rows {
            let combo = format!("{}/{}", row.scheme, row.policy);
            reg.merge_hist(&format!("latency/{combo}"), &row.latency);
            reg.gauge_max(&format!("latency_max/{combo}"), row.latency.max());
            reg.counter_add(&format!("requests/{combo}/served"), row.served);
            reg.counter_add(&format!("requests/{combo}/degraded"), row.degraded);
            reg.counter_add(&format!("requests/{combo}/aborted"), row.aborted);
            reg.counter_add(&format!("requests/{combo}/lost"), row.lost);
        }
        reg
    }

    /// The `sgxs-chaos-v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "sgxs-chaos-v1".into()),
            ("seeds", self.opts.seeds.into()),
            ("seed0", self.opts.seed0.into()),
            ("requests", (self.opts.requests as u64).into()),
            ("threshold", self.opts.threshold.into()),
            (
                "combos",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("scheme", r.scheme.into()),
                                ("policy", r.policy.into()),
                                ("runs", r.runs.into()),
                                ("total", r.total.into()),
                                ("served", r.served.into()),
                                ("degraded", r.degraded.into()),
                                ("aborted", r.aborted.into()),
                                ("lost", r.lost.into()),
                                ("retries", r.retries.into()),
                                ("corrupted_runs", r.corrupted_runs.into()),
                                ("corrupted_bytes", r.corrupted_bytes.into()),
                                ("aex_cycles", r.aex_cycles.into()),
                                ("availability", r.availability().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            // The embedded sgxs-metrics-v1 document: per-combo latency
            // histograms with p50/p90/p99/p999. Like the rest of the
            // chaos doc, byte-identical across execution tiers.
            ("latency", self.metrics().to_json()),
            // Embedded sgxs-incident-v1 forensics for gate-failing
            // corruption, validated by `sgxs_obs::read::parse_chaos`.
            (
                "incidents",
                Json::Arr(self.incidents.iter().map(|i| i.to_json()).collect()),
            ),
            // Coverage + quarantine ledger: every seed in the range is
            // accounted for. Deliberately free of resume/stop provenance,
            // so a resumed campaign's document stays byte-identical.
            ("coverage", self.coverage().to_json()),
            (
                "quarantine",
                Json::Arr(
                    self.quarantine
                        .iter()
                        .map(|q| {
                            Json::obj(vec![
                                ("seed", q.seed.into()),
                                ("attempts", (q.attempts as u64).into()),
                                ("class", q.class.as_str().into()),
                                ("detail", q.detail.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gate",
                Json::obj(vec![
                    ("failed", self.gate_failed().into()),
                    (
                        "failures",
                        Json::Arr(self.failures.iter().map(|f| f.as_str().into()).collect()),
                    ),
                ]),
            ),
        ])
    }
}

/// Runs one campaign seed: one server run per combo, the app rotating
/// with the seed so all three servers contribute to every row.
/// Deterministic in `seed` alone (the chaos schedule is seed-derived), so
/// per-seed deltas merge identically regardless of worker scheduling.
pub fn run_chaos_seed(opts: &CampaignOpts, combos: &[Combo], seed: u64) -> Vec<ComboDelta> {
    if opts.demo_panic == Some(seed) {
        panic!("demo: injected panicking seed {seed}");
    }
    let schedule = ChaosSchedule::generate(seed, opts.requests);
    let app = ServerApp::ALL[(seed % ServerApp::ALL.len() as u64) as usize];
    combos
        .iter()
        .map(|combo| {
            ComboDelta::from_report(&serve_tier(
                app,
                combo.scheme,
                &combo.policies,
                &schedule,
                opts.tier,
            ))
        })
        .collect()
}

/// Builds the final report from seed-ordered outcomes: absorb deltas into
/// the rows, derive each combo's first corrupted seed, then evaluate the
/// gates and assemble corruption forensics.
fn finalize(
    opts: &CampaignOpts,
    combos: &[Combo],
    outcomes: &[(u64, Vec<ComboDelta>)],
    quarantine: Vec<Quarantined>,
    skipped: u64,
) -> ChaosReport {
    let mut rows: Vec<ComboRow> = combos
        .iter()
        .map(|c| ComboRow {
            scheme: c.scheme.label(),
            policy: c.policy,
            ..ComboRow::default()
        })
        .collect();
    let mut first_corrupted_seed: Vec<Option<u64>> = vec![None; combos.len()];
    for (seed, deltas) in outcomes {
        for (c, (row, d)) in rows.iter_mut().zip(deltas.iter()).enumerate() {
            if d.corrupted && first_corrupted_seed[c].is_none() {
                first_corrupted_seed[c] = Some(*seed);
            }
            row.absorb(d);
        }
    }

    let mut failures = Vec::new();
    let mut incidents = Vec::new();
    for (c, (combo, row)) in combos.iter().zip(rows.iter()).enumerate() {
        let gated = combo.gated || (opts.demo_corruption && combo.scheme == RScheme::Native);
        if gated && row.corrupted_bytes > 0 {
            failures.push(format!(
                "{}/{}: {} corrupted canary bytes across {} run(s) — \
                 cross-object corruption escaped the scheme",
                row.scheme, row.policy, row.corrupted_bytes, row.corrupted_runs
            ));
            incidents.push(corruption_incident(
                opts,
                combo,
                first_corrupted_seed[c].expect("corrupted combo has a corrupted seed"),
            ));
        }
        if combo.scheme == RScheme::Boundless && row.availability() < opts.threshold {
            failures.push(format!(
                "{}/{}: availability {:.3} below threshold {:.2}",
                row.scheme,
                row.policy,
                row.availability(),
                opts.threshold
            ));
        }
    }
    ChaosReport {
        opts: opts.clone(),
        rows,
        failures,
        incidents,
        quarantine,
        skipped,
    }
}

/// Runs the campaign sequentially in-process: every combo over every seed.
pub fn run_chaos_campaign(opts: &CampaignOpts) -> ChaosReport {
    let combos = combos();
    let mut outcomes = Vec::new();
    for i in 0..opts.seeds {
        let seed = opts.seed0 + i;
        outcomes.push((seed, run_chaos_seed(opts, &combos, seed)));
    }
    finalize(opts, &combos, &outcomes, Vec::new(), 0)
}

/// The chaos campaign as a supervised [`Campaign`]. Every seed checkpoints
/// its full per-combo delta vector (counters plus exact latency-histogram
/// parts), so a resumed campaign rebuilds every row without re-running a
/// single server and still emits a byte-identical document.
pub struct ChaosCampaign {
    /// The options every seed runs under.
    pub opts: CampaignOpts,
    combos: Vec<Combo>,
}

impl ChaosCampaign {
    /// Builds the campaign over the standard combo matrix.
    pub fn new(opts: CampaignOpts) -> ChaosCampaign {
        ChaosCampaign {
            opts,
            combos: combos(),
        }
    }
}

impl Campaign for ChaosCampaign {
    type Out = Vec<ComboDelta>;

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn fingerprint(&self) -> String {
        // Deliberately excludes the tier (the document is pinned
        // byte-identical across tiers, so cross-tier resume is sound) and
        // gate-time options (threshold, demo_corruption), which do not
        // change per-seed results.
        format!(
            "chaos requests={} demo_panic={:?}",
            self.opts.requests, self.opts.demo_panic
        )
    }

    fn run_seed(&self, seed: u64, _attempt: u32) -> Result<Vec<ComboDelta>, TaskError> {
        Ok(run_chaos_seed(&self.opts, &self.combos, seed))
    }

    fn checkpoint(&self, deltas: &Vec<ComboDelta>) -> Json {
        Json::obj(vec![(
            "combos",
            Json::Arr(deltas.iter().map(ComboDelta::to_json).collect()),
        )])
    }

    fn restore(&self, _seed: u64, payload: &Json) -> Result<Restored<Vec<ComboDelta>>, String> {
        let rows = payload
            .get("combos")
            .and_then(Json::as_arr)
            .ok_or_else(|| "chaos checkpoint: missing combos".to_owned())?;
        if rows.len() != self.combos.len() {
            return Err(format!(
                "chaos checkpoint: {} combos journaled, campaign has {}",
                rows.len(),
                self.combos.len()
            ));
        }
        Ok(Restored::Value(
            rows.iter()
                .map(ComboDelta::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ))
    }
}

/// A supervised chaos campaign's outcome: the report plus stop/resume
/// provenance (kept out of the artifact so a resumed run's document stays
/// byte-identical to an uninterrupted one).
pub struct ChaosOutcome {
    /// The finalized campaign report.
    pub report: ChaosReport,
    /// Whether a graceful stop ended the campaign early.
    pub stopped: bool,
    /// Seeds restored from the journal instead of re-run.
    pub resumed: u64,
}

/// Runs the chaos campaign under the supervisor: seeds shard across the
/// work-stealing pool, a panicking seed is quarantined instead of killing
/// the run, and deltas merge in seed order — byte-identical output for
/// every worker count and across checkpoint/resume.
pub fn run_chaos_campaign_supervised(
    opts: &CampaignOpts,
    sup: &SuperOpts,
    stop: &StopFlag,
) -> Result<ChaosOutcome, String> {
    let campaign = ChaosCampaign::new(opts.clone());
    let run = supervise(&campaign, opts.seed0, opts.seeds, sup, stop)?;
    let report = finalize(
        opts,
        &campaign.combos,
        &run.outcomes,
        run.quarantined.clone(),
        run.skipped.len() as u64,
    );
    Ok(ChaosOutcome {
        report,
        stopped: run.stopped,
        resumed: run.resumed,
    })
}

/// Forensic re-run of the first corrupted seed of a gate-failing combo:
/// the same server run with a ledger recorder attached (zero-perturbation,
/// so the availability numbers reproduce exactly), assembled into an
/// incident around the first corrupted canary byte. Corruption is found
/// post-run by the canary scan, not by a firing check, so the fault block
/// is a [`FaultInfo::post_run`] record.
fn corruption_incident(opts: &CampaignOpts, combo: &Combo, seed: u64) -> Incident {
    let schedule = ChaosSchedule::generate(seed, opts.requests);
    let app = ServerApp::ALL[(seed % ServerApp::ALL.len() as u64) as usize];
    let (rep, rec, first) = serve_forensic(
        app,
        combo.scheme,
        &combo.policies,
        &schedule,
        opts.tier,
        DEFAULT_TRACE_WINDOW,
    );
    let meta = IncidentMeta {
        origin: "chaos".into(),
        workload: format!("{}-seed-{seed}", app.label()),
        scheme: format!("{}/{}", combo.scheme.label(), combo.policy),
        tier: "pinned".into(),
        verdict: "corrupted".into(),
    };
    let fault = first.map(|addr| FaultInfo::post_run(addr as u64, rep.corrupted_canary_bytes));
    Incident::assemble_with(meta, fault, &rec, DEFAULT_TRACE_WINDOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_the_gate_and_orders_the_lattice() {
        let opts = CampaignOpts {
            seeds: 6,
            seed0: 1,
            requests: 24,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        assert!(!rep.gate_failed(), "{}", rep.render());
        // Native corrupts but is not gated by default — no incident.
        assert!(rep.incidents.is_empty());
        let avail: std::collections::HashMap<(&str, &str), f64> = rep
            .rows
            .iter()
            .map(|r| ((r.scheme, r.policy), r.availability()))
            .collect();
        // Fail-stop loses availability; the crash-only and boundless
        // configurations answer everything the schedule throws at them.
        assert!(avail[&("sgxbounds", "abort")] < avail[&("sgxbounds", "graceful")]);
        assert!(avail[&("sb-boundless", "boundless")] >= opts.threshold);
        // Native corrupts (reported, not gated by default).
        let native = &rep.rows[0];
        assert!(native.corrupted_bytes > 0);
        let json = rep.to_json().to_pretty();
        assert!(json.contains("sgxs-chaos-v1"));
        assert!(json.contains("availability"));
        // The embedded latency block is a full sgxs-metrics-v1 document.
        assert!(json.contains("sgxs-metrics-v1"));
        assert!(json.contains("p999"));
        assert!(json.contains("latency/sb-boundless/boundless"));
        // Every attempted request sampled.
        for row in &rep.rows {
            assert_eq!(
                row.latency.count(),
                row.served + row.degraded + row.aborted,
                "{}/{}",
                row.scheme,
                row.policy
            );
        }
    }

    #[test]
    fn supervised_campaign_matches_serial_for_every_worker_count() {
        let opts = CampaignOpts {
            seeds: 4,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        };
        let serial = run_chaos_campaign(&opts).to_json().to_pretty();
        for workers in [1usize, 2, 4] {
            let sup = SuperOpts {
                workers,
                ..SuperOpts::default()
            };
            let out = run_chaos_campaign_supervised(&opts, &sup, &StopFlag::new())
                .expect("supervised chaos campaign runs");
            assert!(!out.stopped);
            assert_eq!(out.resumed, 0);
            assert_eq!(
                out.report.to_json().to_pretty(),
                serial,
                "chaos doc diverged at {workers} worker(s)"
            );
        }
    }

    #[test]
    fn demo_panic_seed_is_quarantined_with_accurate_coverage() {
        let opts = CampaignOpts {
            seeds: 4,
            seed0: 1,
            requests: 16,
            demo_panic: Some(2),
            ..CampaignOpts::default()
        };
        let sup = SuperOpts {
            workers: 2,
            quiet_panics: true,
            ..SuperOpts::default()
        };
        let out = run_chaos_campaign_supervised(&opts, &sup, &StopFlag::new())
            .expect("supervised chaos campaign runs");
        let rep = &out.report;
        assert_eq!(rep.quarantine.len(), 1);
        assert_eq!(rep.quarantine[0].seed, 2);
        assert_eq!(rep.quarantine[0].class, "panic");
        assert!(rep.quarantine[0]
            .detail
            .contains("injected panicking seed 2"));
        let cov = rep.coverage();
        assert_eq!((cov.seeds, cov.completed, cov.quarantined), (4, 3, 1));
        // The rows only absorbed the three completed seeds.
        assert_eq!(rep.rows[0].runs, 3);
        let render = rep.render();
        assert!(render.contains("quarantined seeds:"), "{render}");
        let json = rep.to_json().to_pretty();
        assert!(json.contains("\"quarantine\""), "{json}");
        assert!(json.contains("\"coverage\""), "{json}");
    }

    #[test]
    fn chaos_checkpoints_restore_to_byte_identical_deltas() {
        // Every per-seed delta must survive the journal codec exactly —
        // counters and latency-histogram parts alike — so a resumed
        // campaign rebuilds rows without re-running a single server.
        let opts = CampaignOpts {
            seeds: 3,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        };
        let campaign = ChaosCampaign::new(opts.clone());
        for seed in 1..=3 {
            let deltas = campaign.run_seed(seed, 1).expect("chaos seed runs");
            let payload = campaign.checkpoint(&deltas);
            match campaign.restore(seed, &payload).expect("restores") {
                Restored::Value(back) => {
                    assert_eq!(back.len(), deltas.len());
                    for (a, b) in deltas.iter().zip(back.iter()) {
                        assert_eq!(a.to_json().to_compact(), b.to_json().to_compact());
                        assert_eq!(a.latency, b.latency, "hist parts diverged at seed {seed}");
                    }
                }
                Restored::Rerun => panic!("chaos checkpoints are never dirty"),
            }
        }
    }

    #[test]
    fn split_campaign_registries_merge_to_the_full_campaign() {
        // Production shard merge: running the first and second halves of a
        // seed range as separate campaigns and merging their registries
        // must serialize byte-identically to the single full campaign —
        // the property the parallel seed-shard pool will rely on.
        let full = run_chaos_campaign(&CampaignOpts {
            seeds: 4,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        });
        let lo = run_chaos_campaign(&CampaignOpts {
            seeds: 2,
            seed0: 1,
            requests: 16,
            ..CampaignOpts::default()
        });
        let hi = run_chaos_campaign(&CampaignOpts {
            seeds: 2,
            seed0: 3,
            requests: 16,
            ..CampaignOpts::default()
        });
        let mut merged = hi.metrics();
        merged.merge(&lo.metrics());
        assert_eq!(
            merged.to_json().to_pretty(),
            full.metrics().to_json().to_pretty()
        );
    }

    #[test]
    fn emitted_chaos_doc_round_trips_through_the_validating_reader() {
        // Write → parse: the document a real campaign emits must satisfy
        // every cross-check `sgxs_obs::read::parse_chaos` enforces (ledger
        // sums, availability arithmetic, per-combo latency sample counts,
        // gate/failure agreement).
        let opts = CampaignOpts {
            seeds: 3,
            seed0: 7,
            requests: 16,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        let doc = sgxs_obs::read::parse_chaos(&rep.to_json().to_pretty())
            .expect("own chaos output parses back");
        assert_eq!((doc.seeds, doc.seed0, doc.requests), (3, 7, 16));
        assert_eq!(doc.combos.len(), rep.rows.len());
        assert_eq!(doc.gate_failed, rep.gate_failed());
        let lat = doc.latency.as_ref().expect("latency block present");
        for (c, row) in doc.combos.iter().zip(&rep.rows) {
            assert_eq!(c.scheme, row.scheme);
            assert_eq!(c.total, row.total);
            let h = lat
                .hist(&format!("latency/{}/{}", c.scheme, c.policy))
                .expect("per-combo latency histogram");
            assert_eq!(h.count, row.latency.count());
            assert_eq!(h.p999, row.latency.percentile_permille(999));
        }
    }

    #[test]
    fn demo_corruption_flag_fails_the_gate() {
        let opts = CampaignOpts {
            seeds: 2,
            seed0: 1,
            requests: 16,
            demo_corruption: true,
            ..CampaignOpts::default()
        };
        let rep = run_chaos_campaign(&opts);
        assert!(rep.gate_failed(), "{}", rep.render());
        assert!(rep.failures.iter().any(|f| f.contains("native")));
        // The failing corruption gate comes with a forensic incident built
        // around the first corrupted canary byte, and the embedded document
        // survives the validating reader's cross-checks.
        assert_eq!(rep.incidents.len(), 1);
        let inc = &rep.incidents[0];
        assert_eq!(inc.meta.origin, "chaos");
        assert_eq!(inc.meta.verdict, "corrupted");
        assert!(inc.fault.is_some(), "corruption incident carries a fault");
        assert!(
            !inc.neighborhood.is_empty(),
            "canary corruption has heap neighbours by construction"
        );
        let doc = sgxs_obs::read::parse_chaos(&rep.to_json().to_pretty())
            .expect("chaos doc with embedded incidents parses back");
        assert_eq!(doc.incidents.len(), 1);
        assert_eq!(doc.incidents[0].origin, "chaos");
        // Rerun: the incident (id included) is byte-stable.
        let again = run_chaos_campaign(&opts);
        assert_eq!(
            rep.to_json().to_pretty(),
            again.to_json().to_pretty(),
            "chaos doc with incidents is not rerun-stable"
        );
    }
}
