//! Heap allocator over the simulated address space.
//!
//! One allocator serves all protection schemes; each scheme wraps it:
//!
//! - SGXBounds asks for `size + 4` and appends the lower bound (paper §3.2);
//! - the ASan baseline configures redzones and a quarantine (paper §2.2);
//! - MPX and native use it as-is.
//!
//! Bookkeeping lives host-side (sizes, free lists), but the *footprint* is
//! fully modelled: every allocation reserves virtual memory in the machine,
//! a header store keeps the chunk's cache line warm like a real allocator
//! header would, and exceeding the enclave's reservation cap produces the
//! out-of-memory failures the paper observes for MPX (SQLite, dedup, astar,
//! mcf, xalanc).
//!
//! Layout of one chunk: `[8 B header][pre redzone][user size][post redzone]`.

use sgxs_mir::{IntrinsicCtx, Trap};
use std::collections::{HashMap, VecDeque};

/// Start of the `mmap` region for large/page-granular allocations.
pub const MMAP_BASE: u32 = 0x8000_0000;
/// End of the `mmap` region (stacks live above).
pub const MMAP_END: u32 = 0xD000_0000;
/// End of the brk (small object) arena.
pub const BRK_END: u32 = 0x4000_0000;
/// Allocations of at least this size go to the page-granular region.
pub const MMAP_THRESHOLD: u32 = 64 << 10;

// 8-byte chunk header, like glibc — keeps SGXBounds' +4 bytes from
// spilling small objects into the next size class.
const HEADER: u32 = 8;
const PAGE: u32 = 4096;

/// Allocator policy knobs (set by the protection schemes).
#[derive(Debug, Clone, Copy)]
pub struct AllocOpts {
    /// Bytes of unaddressable padding before each object (ASan redzone).
    pub redzone_pre: u32,
    /// Bytes of padding after each object.
    pub redzone_post: u32,
    /// Freed chunks are parked in a FIFO quarantine of at most this many
    /// bytes before becoming reusable (ASan-style; obstructs reuse and
    /// inflates the footprint, paper §6.2 *swaptions*).
    pub quarantine_bytes: u64,
    /// Total reserved-virtual-memory cap — the enclave's usable address
    /// space. Exceeding it is an out-of-memory trap.
    pub reserve_cap: u64,
}

impl Default for AllocOpts {
    fn default() -> Self {
        AllocOpts {
            redzone_pre: 0,
            redzone_post: 0,
            quarantine_bytes: 0,
            reserve_cap: u32::MAX as u64,
        }
    }
}

/// Deterministic allocator-failure injection (chaos tier): a seeded
/// xorshift stream decides per request whether the allocator reports OOM,
/// modelling transient enclave memory pressure. Zero-cost when no plan is
/// installed — `malloc`/`mmap` behaviour is bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct AllocFaultPlan {
    /// Failure probability in parts per 1024 (0 never, 1024 always).
    pub fail_per_1024: u16,
    /// Remaining injected failures; `None` is unlimited.
    pub budget: Option<u32>,
    state: u64,
}

impl AllocFaultPlan {
    /// A plan seeded from the chaos schedule.
    pub fn new(seed: u64, fail_per_1024: u16) -> Self {
        AllocFaultPlan {
            fail_per_1024,
            budget: None,
            state: seed | 1,
        }
    }

    /// Caps the number of failures the plan may inject.
    pub fn with_budget(mut self, failures: u32) -> Self {
        self.budget = Some(failures);
        self
    }

    fn should_fail(&mut self) -> bool {
        if self.fail_per_1024 == 0 || self.budget == Some(0) {
            return false;
        }
        // xorshift64*: deterministic, seed-driven.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let r = (self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 54) & 1023;
        let fail = (r as u16) < self.fail_per_1024;
        if fail {
            if let Some(b) = self.budget.as_mut() {
                *b -= 1;
            }
        }
        fail
    }
}

#[derive(Debug, Clone, Copy)]
struct ChunkInfo {
    /// Chunk base (header address).
    base: u32,
    /// Whole-chunk footprint in bytes.
    footprint: u32,
    /// User-visible size.
    user_size: u32,
    /// Size class index, or `usize::MAX` for mmap chunks.
    class: usize,
}

/// Allocation statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllocStats {
    /// `malloc`/`calloc`/`realloc` calls served.
    pub allocs: u64,
    /// `free` calls served.
    pub frees: u64,
    /// Live user bytes right now.
    pub live_bytes: u64,
    /// Peak live user bytes.
    pub peak_live_bytes: u64,
}

/// The heap allocator.
pub struct HeapAlloc {
    opts: AllocOpts,
    brk: u32,
    mmap_cursor: u32,
    /// Free chunks per size class.
    free_lists: Vec<Vec<ChunkInfo>>,
    /// user address -> chunk info, for live chunks.
    live: HashMap<u32, ChunkInfo>,
    /// FIFO quarantine of freed chunks (ASan mode).
    quarantine: VecDeque<ChunkInfo>,
    quarantine_used: u64,
    /// Live `mmap` mappings: page-aligned base -> reserved bytes.
    mmap_live: HashMap<u32, u32>,
    /// Chaos failure-injection plan, if any.
    fault_plan: Option<AllocFaultPlan>,
    /// Statistics.
    pub stats: AllocStats,
}

/// Size classes for the brk arena (bytes of chunk footprint).
const CLASSES: &[u32] = &[
    32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288,
    16384, 24576, 32768, 49152, 65536, 98304,
];

fn class_for(footprint: u32) -> Option<usize> {
    CLASSES.iter().position(|&c| c >= footprint)
}

impl HeapAlloc {
    /// Creates an allocator whose brk arena starts at `heap_base`.
    pub fn new(heap_base: u32, opts: AllocOpts) -> Self {
        HeapAlloc {
            opts,
            brk: heap_base,
            mmap_cursor: MMAP_BASE,
            free_lists: vec![Vec::new(); CLASSES.len()],
            live: HashMap::new(),
            quarantine: VecDeque::new(),
            quarantine_used: 0,
            mmap_live: HashMap::new(),
            fault_plan: None,
            stats: AllocStats::default(),
        }
    }

    /// The allocator's policy options.
    pub fn opts(&self) -> AllocOpts {
        self.opts
    }

    /// Installs (or clears) a chaos failure-injection plan.
    pub fn set_fault_plan(&mut self, plan: Option<AllocFaultPlan>) {
        self.fault_plan = plan;
    }

    /// Consults the fault plan; an injected failure reports OOM before any
    /// state changes, so the allocator stays consistent and the request can
    /// be retried.
    fn injected_failure(&mut self, ctx: &IntrinsicCtx<'_>, request: u64) -> Result<(), Trap> {
        if let Some(plan) = self.fault_plan.as_mut() {
            if plan.should_fail() {
                return Err(Trap::OutOfMemory {
                    requested: request,
                    reserved: ctx.machine.mem.reserved(),
                });
            }
        }
        Ok(())
    }

    fn check_cap(&self, ctx: &IntrinsicCtx<'_>, request: u64) -> Result<(), Trap> {
        let reserved = ctx.machine.mem.reserved();
        if reserved + request > self.opts.reserve_cap {
            return Err(Trap::OutOfMemory {
                requested: request,
                reserved,
            });
        }
        Ok(())
    }

    /// Allocates `size` user bytes; returns the user base address.
    ///
    /// Charges allocator work plus a header store. Fails with
    /// [`Trap::OutOfMemory`] when the enclave reservation cap or the address
    /// space is exhausted.
    pub fn malloc(&mut self, ctx: &mut IntrinsicCtx<'_>, size: u32) -> Result<u32, Trap> {
        let size = size.max(1);
        self.injected_failure(ctx, size as u64)?;
        let footprint = HEADER
            .checked_add(self.opts.redzone_pre)
            .and_then(|v| v.checked_add(size))
            .and_then(|v| v.checked_add(self.opts.redzone_post))
            .ok_or(Trap::OutOfMemory {
                requested: size as u64,
                reserved: ctx.machine.mem.reserved(),
            })?;
        ctx.charge(60); // Allocator bookkeeping work.
        let info = if footprint >= MMAP_THRESHOLD {
            self.mmap_chunk(ctx, footprint, size)?
        } else {
            self.small_chunk(ctx, footprint, size)?
        };
        let user = info.base + HEADER + self.opts.redzone_pre;
        self.live.insert(user, info);
        // Header store: size word at the chunk base, like glibc.
        ctx.store(info.base as u64, 8, size as u64)?;
        self.stats.allocs += 1;
        self.stats.live_bytes += size as u64;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        if ctx.machine.obs_enabled() {
            ctx.machine
                .emit(sgxs_sim::obs::Event::Alloc { addr: user, size });
        }
        Ok(user)
    }

    fn small_chunk(
        &mut self,
        ctx: &mut IntrinsicCtx<'_>,
        footprint: u32,
        user_size: u32,
    ) -> Result<ChunkInfo, Trap> {
        let class = class_for(footprint).expect("footprint below MMAP_THRESHOLD fits a class");
        if let Some(mut c) = self.free_lists[class].pop() {
            c.user_size = user_size;
            return Ok(c);
        }
        let rounded = CLASSES[class];
        self.check_cap(ctx, rounded as u64)?;
        if self.brk.checked_add(rounded).is_none_or(|e| e > BRK_END) {
            return Err(Trap::OutOfMemory {
                requested: rounded as u64,
                reserved: ctx.machine.mem.reserved(),
            });
        }
        let base = self.brk;
        self.brk += rounded;
        ctx.machine.mem.reserve(rounded as u64);
        Ok(ChunkInfo {
            base,
            footprint: rounded,
            user_size,
            class,
        })
    }

    fn mmap_chunk(
        &mut self,
        ctx: &mut IntrinsicCtx<'_>,
        footprint: u32,
        user_size: u32,
    ) -> Result<ChunkInfo, Trap> {
        let rounded = footprint
            .checked_add(PAGE - 1)
            .map(|v| v & !(PAGE - 1))
            .ok_or(Trap::OutOfMemory {
                requested: footprint as u64,
                reserved: ctx.machine.mem.reserved(),
            })?;
        self.check_cap(ctx, rounded as u64)?;
        if self
            .mmap_cursor
            .checked_add(rounded)
            .is_none_or(|e| e > MMAP_END)
        {
            return Err(Trap::OutOfMemory {
                requested: rounded as u64,
                reserved: ctx.machine.mem.reserved(),
            });
        }
        let base = self.mmap_cursor;
        self.mmap_cursor += rounded;
        ctx.machine.mem.reserve(rounded as u64);
        ctx.charge(300); // mmap syscall-ish cost.
        Ok(ChunkInfo {
            base,
            footprint: rounded,
            user_size,
            class: usize::MAX,
        })
    }

    /// Frees the allocation at user address `addr`.
    ///
    /// Unknown addresses trap (heap corruption / double free).
    pub fn free(&mut self, ctx: &mut IntrinsicCtx<'_>, addr: u32) -> Result<(), Trap> {
        let info = self.live.remove(&addr).ok_or_else(|| {
            Trap::Abort(format!(
                "free of unknown or already-freed pointer {addr:#x}"
            ))
        })?;
        ctx.charge(40);
        if ctx.machine.obs_enabled() {
            ctx.machine.emit(sgxs_sim::obs::Event::Free { addr });
        }
        self.stats.frees += 1;
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(info.user_size as u64);
        if self.opts.quarantine_bytes > 0 {
            self.quarantine.push_back(info);
            self.quarantine_used += info.footprint as u64;
            while self.quarantine_used > self.opts.quarantine_bytes {
                let old = self
                    .quarantine
                    .pop_front()
                    .expect("used > 0 implies nonempty");
                self.quarantine_used -= old.footprint as u64;
                self.recycle(ctx, old);
            }
        } else {
            self.recycle(ctx, info);
        }
        Ok(())
    }

    fn recycle(&mut self, ctx: &mut IntrinsicCtx<'_>, info: ChunkInfo) {
        if info.class == usize::MAX {
            // mmap chunks are returned to the OS.
            ctx.machine.mem.unreserve(info.footprint as u64);
        } else {
            self.free_lists[info.class].push(info);
        }
    }

    /// User size of a live allocation.
    pub fn usable_size(&self, addr: u32) -> Option<u32> {
        self.live.get(&addr).map(|c| c.user_size)
    }

    /// Whether `addr` is a live allocation's user base.
    pub fn is_live(&self, addr: u32) -> bool {
        self.live.contains_key(&addr)
    }

    /// Iterates over live allocations as `(user_base, user_size)`.
    pub fn live_iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.live.iter().map(|(a, c)| (*a, c.user_size))
    }

    /// The redzone geometry `(pre, post)` applied to each object.
    pub fn redzones(&self) -> (u32, u32) {
        (self.opts.redzone_pre, self.opts.redzone_post)
    }

    /// Maps `bytes` of page-granular anonymous memory (no header, no
    /// redzones) — the primitive custom application allocators build on.
    ///
    /// This is where the paper's Apache anomaly comes from: a page-aligned
    /// request grown by SGXBounds' 4 metadata bytes spills into one extra
    /// page (paper §7 "Apache").
    pub fn mmap(&mut self, ctx: &mut IntrinsicCtx<'_>, bytes: u32) -> Result<u32, Trap> {
        self.injected_failure(ctx, bytes as u64)?;
        let rounded = bytes
            .max(1)
            .checked_add(PAGE - 1)
            .map(|v| v & !(PAGE - 1))
            .ok_or(Trap::OutOfMemory {
                requested: bytes as u64,
                reserved: ctx.machine.mem.reserved(),
            })?;
        self.check_cap(ctx, rounded as u64)?;
        if self
            .mmap_cursor
            .checked_add(rounded)
            .is_none_or(|e| e > MMAP_END)
        {
            return Err(Trap::OutOfMemory {
                requested: rounded as u64,
                reserved: ctx.machine.mem.reserved(),
            });
        }
        let base = self.mmap_cursor;
        self.mmap_cursor += rounded;
        ctx.machine.mem.reserve(rounded as u64);
        ctx.charge(300);
        self.mmap_live.insert(base, rounded);
        Ok(base)
    }

    /// Unmaps a mapping created by [`HeapAlloc::mmap`].
    pub fn munmap(&mut self, ctx: &mut IntrinsicCtx<'_>, addr: u32) -> Result<(), Trap> {
        let bytes = self
            .mmap_live
            .remove(&addr)
            .ok_or_else(|| Trap::Abort(format!("munmap of unknown mapping {addr:#x}")))?;
        ctx.machine.mem.unreserve(bytes as u64);
        ctx.charge(300);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_mir::interp::env::Env;
    use sgxs_sim::{Machine, MachineConfig, Mode, Preset};

    fn ctx_parts() -> (Machine, Env, Vec<String>) {
        (
            Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Native)),
            Env::new(),
            Vec::new(),
        )
    }

    macro_rules! with_ctx {
        ($m:ident, $e:ident, $o:ident, $ctx:ident, $body:block) => {{
            let mut $ctx = IntrinsicCtx {
                machine: &mut $m,
                env: &mut $e,
                core: 0,
                cycles: 0,
                output: &mut $o,
            };
            $body
        }};
    }

    #[test]
    fn malloc_returns_distinct_writable_regions() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            let a = ha.malloc(&mut ctx, 100).unwrap();
            let b = ha.malloc(&mut ctx, 100).unwrap();
            assert_ne!(a, b);
            assert!(b >= a + 100 || a >= b + 100, "regions must not overlap");
            ctx.store(a as u64, 8, 1).unwrap();
            ctx.store(b as u64, 8, 2).unwrap();
            assert_eq!(ctx.load(a as u64, 8).unwrap(), 1);
        });
    }

    #[test]
    fn free_then_malloc_reuses_without_quarantine() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            let a = ha.malloc(&mut ctx, 64).unwrap();
            ha.free(&mut ctx, a).unwrap();
            let b = ha.malloc(&mut ctx, 64).unwrap();
            assert_eq!(a, b, "freed chunk must be reused immediately");
        });
    }

    #[test]
    fn quarantine_delays_reuse() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(
            0x2_0000,
            AllocOpts {
                quarantine_bytes: 1 << 20,
                ..Default::default()
            },
        );
        with_ctx!(m, e, o, ctx, {
            let a = ha.malloc(&mut ctx, 64).unwrap();
            ha.free(&mut ctx, a).unwrap();
            let b = ha.malloc(&mut ctx, 64).unwrap();
            assert_ne!(a, b, "quarantine must prevent immediate reuse");
        });
    }

    #[test]
    fn double_free_is_caught() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            let a = ha.malloc(&mut ctx, 64).unwrap();
            ha.free(&mut ctx, a).unwrap();
            assert!(ha.free(&mut ctx, a).is_err());
        });
    }

    #[test]
    fn reserve_cap_produces_oom() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(
            0x2_0000,
            AllocOpts {
                reserve_cap: 1 << 20, // 1 MB enclave.
                ..Default::default()
            },
        );
        with_ctx!(m, e, o, ctx, {
            let mut last = Ok(0u32);
            for _ in 0..64 {
                last = ha.malloc(&mut ctx, 64 << 10);
                if last.is_err() {
                    break;
                }
            }
            assert!(matches!(last, Err(Trap::OutOfMemory { .. })));
        });
    }

    #[test]
    fn large_allocations_are_page_granular() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            let before = ctx.machine.mem.reserved();
            let a = ha.malloc(&mut ctx, MMAP_THRESHOLD).unwrap();
            assert!(a >= MMAP_BASE);
            let grown = ctx.machine.mem.reserved() - before;
            assert_eq!(grown % PAGE as u64, 0);
            // The +16 header pushes a page-aligned request over a page — the
            // Apache +4 B effect at allocator level (paper §7).
            assert!(grown >= (MMAP_THRESHOLD + HEADER) as u64);
        });
    }

    #[test]
    fn redzones_inflate_footprint() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut plain = HeapAlloc::new(0x2_0000, AllocOpts::default());
        let mut fat = HeapAlloc::new(
            0x10_0000,
            AllocOpts {
                redzone_pre: 16,
                redzone_post: 16,
                ..Default::default()
            },
        );
        with_ctx!(m, e, o, ctx, {
            let before = ctx.machine.mem.reserved();
            plain.malloc(&mut ctx, 16).unwrap();
            let plain_grow = ctx.machine.mem.reserved() - before;
            let before = ctx.machine.mem.reserved();
            fat.malloc(&mut ctx, 16).unwrap();
            let fat_grow = ctx.machine.mem.reserved() - before;
            assert!(fat_grow > plain_grow);
        });
    }

    #[test]
    fn fault_plan_injects_deterministic_oom() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            // Certain failure: every request reports OOM, no state changes,
            // and clearing the plan makes the same request succeed (the
            // transient-fault model retry policies ride out).
            ha.set_fault_plan(Some(AllocFaultPlan::new(7, 1024)));
            assert!(matches!(
                ha.malloc(&mut ctx, 64),
                Err(Trap::OutOfMemory { .. })
            ));
            assert!(matches!(
                ha.mmap(&mut ctx, 8192),
                Err(Trap::OutOfMemory { .. })
            ));
            assert_eq!(ha.stats.allocs, 0);
            ha.set_fault_plan(None);
            assert!(ha.malloc(&mut ctx, 64).is_ok());
            // A budgeted plan stops injecting after its quota.
            ha.set_fault_plan(Some(AllocFaultPlan::new(7, 1024).with_budget(2)));
            assert!(ha.malloc(&mut ctx, 64).is_err());
            assert!(ha.malloc(&mut ctx, 64).is_err());
            assert!(ha.malloc(&mut ctx, 64).is_ok());
        });
        // Same seed, same decision stream.
        let mut a = AllocFaultPlan::new(99, 512);
        let mut b = AllocFaultPlan::new(99, 512);
        let sa: Vec<bool> = (0..64).map(|_| a.should_fail()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.should_fail()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&f| f) && sa.iter().any(|&f| !f));
    }

    #[test]
    fn stats_track_live_and_peak() {
        let (mut m, mut e, mut o) = ctx_parts();
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        with_ctx!(m, e, o, ctx, {
            let a = ha.malloc(&mut ctx, 100).unwrap();
            let b = ha.malloc(&mut ctx, 200).unwrap();
            assert_eq!(ha.stats.live_bytes, 300);
            ha.free(&mut ctx, a).unwrap();
            assert_eq!(ha.stats.live_bytes, 200);
            assert_eq!(ha.stats.peak_live_bytes, 300);
            assert_eq!(ha.usable_size(b), Some(200));
            assert_eq!(ha.usable_size(a), None);
        });
    }
}
