#![warn(missing_docs)]

//! Base runtime for simulated programs: heap allocator, libc-style
//! intrinsics, and input staging.
//!
//! This plays the role of SCONE's libc in the paper (§2.1): the one
//! uninstrumented component every scheme links against. Protection schemes
//! (the `sgxbounds` and `sgxs-baselines` crates) wrap these primitives with
//! their own checking versions, mirroring the paper's wrapper layer (§3.2).

pub mod alloc;
pub mod install;
pub mod libc;

pub use alloc::{AllocFaultPlan, AllocOpts, AllocStats, HeapAlloc};
pub use install::{install_base, Stager, INPUT_BASE};
