//! Wires the base runtime into a VM: allocator intrinsics, libc wrappers,
//! and input staging.

use crate::alloc::{AllocOpts, HeapAlloc};
use crate::libc;
use sgxs_mir::{Trap, Vm};
use std::cell::RefCell;
use std::rc::Rc;

/// Base of the input-staging region (host-generated workload data).
pub const INPUT_BASE: u32 = 0x4000_0000;
/// End of the input-staging region.
pub const INPUT_END: u32 = 0x8000_0000;

/// Installs the base runtime (uninstrumented libc + allocator) into `vm`.
///
/// Returns a shared handle to the allocator so protection-scheme runtimes
/// can wrap it (replace `malloc` with their own instrumented versions while
/// delegating the actual carving to the same heap).
pub fn install_base(vm: &mut Vm<'_>, opts: AllocOpts) -> Rc<RefCell<HeapAlloc>> {
    let heap = Rc::new(RefCell::new(HeapAlloc::new(vm.heap_base(), opts)));

    let h = heap.clone();
    vm.register_intrinsic("malloc", move |ctx, args| {
        let size = args.first().copied().unwrap_or(0) as u32;
        h.borrow_mut().malloc(ctx, size).map(|a| Some(a as u64))
    });

    let h = heap.clone();
    vm.register_intrinsic("calloc", move |ctx, args| {
        let n = args.first().copied().unwrap_or(0) as u32;
        let sz = args.get(1).copied().unwrap_or(0) as u32;
        let bytes = n.checked_mul(sz).ok_or(Trap::OutOfMemory {
            requested: n as u64 * sz as u64,
            reserved: ctx.machine.mem.reserved(),
        })?;
        let a = h.borrow_mut().malloc(ctx, bytes)?;
        libc::memset(ctx, a, 0, bytes)?;
        Ok(Some(a as u64))
    });

    let h = heap.clone();
    vm.register_intrinsic("realloc", move |ctx, args| {
        let old = args.first().copied().unwrap_or(0) as u32;
        let size = args.get(1).copied().unwrap_or(0) as u32;
        let mut heap = h.borrow_mut();
        if old == 0 {
            return heap.malloc(ctx, size).map(|a| Some(a as u64));
        }
        let old_size = heap
            .usable_size(old)
            .ok_or_else(|| Trap::Abort(format!("realloc of unknown pointer {old:#x}")))?;
        let new = heap.malloc(ctx, size)?;
        libc::memcpy(ctx, new, old, old_size.min(size))?;
        heap.free(ctx, old)?;
        Ok(Some(new as u64))
    });

    let h = heap.clone();
    vm.register_intrinsic("free", move |ctx, args| {
        let a = args.first().copied().unwrap_or(0) as u32;
        if a == 0 {
            return Ok(None); // free(NULL) is a no-op.
        }
        h.borrow_mut().free(ctx, a)?;
        Ok(None)
    });

    let h = heap.clone();
    vm.register_intrinsic("malloc_usable_size", move |_ctx, args| {
        let a = args.first().copied().unwrap_or(0) as u32;
        Ok(Some(h.borrow().usable_size(a).unwrap_or(0) as u64))
    });

    let h = heap.clone();
    vm.register_intrinsic("mmap", move |ctx, args| {
        let bytes = args.first().copied().unwrap_or(0) as u32;
        h.borrow_mut().mmap(ctx, bytes).map(|a| Some(a as u64))
    });

    let h = heap.clone();
    vm.register_intrinsic("munmap", move |ctx, args| {
        let a = args.first().copied().unwrap_or(0) as u32;
        h.borrow_mut().munmap(ctx, a)?;
        Ok(None)
    });

    vm.register_intrinsic("memcpy", |ctx, args| {
        libc::memcpy(ctx, args[0] as u32, args[1] as u32, args[2] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("memmove", |ctx, args| {
        libc::memcpy(ctx, args[0] as u32, args[1] as u32, args[2] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("memset", |ctx, args| {
        libc::memset(ctx, args[0] as u32, args[1] as u8, args[2] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("memcmp", |ctx, args| {
        Ok(Some(libc::memcmp(
            ctx,
            args[0] as u32,
            args[1] as u32,
            args[2] as u32,
        )?))
    });
    vm.register_intrinsic("strlen", |ctx, args| {
        Ok(Some(libc::strlen(ctx, args[0] as u32)? as u64))
    });
    vm.register_intrinsic("strcpy", |ctx, args| {
        libc::strcpy(ctx, args[0] as u32, args[1] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("strcmp", |ctx, args| {
        Ok(Some(libc::strcmp(ctx, args[0] as u32, args[1] as u32)?))
    });
    vm.register_intrinsic("strncpy", |ctx, args| {
        libc::strncpy(ctx, args[0] as u32, args[1] as u32, args[2] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("strcat", |ctx, args| {
        libc::strcat(ctx, args[0] as u32, args[1] as u32)?;
        Ok(Some(args[0]))
    });
    vm.register_intrinsic("strchr", |ctx, args| {
        Ok(Some(
            libc::strchr(ctx, args[0] as u32, args[1] as u8)? as u64
        ))
    });
    vm.register_intrinsic("fmt_u64", |ctx, args| {
        Ok(Some(libc::fmt_u64(ctx, args[0] as u32, args[1])? as u64))
    });

    // Field-projection marker (see `FuncBuilder::gep_field`): identity under
    // the base runtime; SGXBounds with bounds narrowing overrides it.
    vm.register_intrinsic("sb_narrow", |_ctx, args| {
        Ok(Some(args.first().copied().unwrap_or(0)))
    });

    // Blesses a host-staged input region as a program object. The base
    // runtime treats it as identity; protection schemes override it (or, for
    // MPX, pattern-match it in the pass) to attach bounds metadata.
    vm.register_intrinsic("tag_input", |_ctx, args| {
        Ok(Some(args.first().copied().unwrap_or(0)))
    });

    heap
}

/// Host-side staging cursor for workload input data.
pub struct Stager {
    cursor: u32,
}

impl Default for Stager {
    fn default() -> Self {
        Stager { cursor: INPUT_BASE }
    }
}

impl Stager {
    /// Creates a stager at the base of the input region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `data` into the input region (uncharged: modelling data that
    /// was placed in enclave memory before the measured phase) and returns
    /// its address.
    ///
    /// # Panics
    ///
    /// Panics if the input region is exhausted.
    pub fn stage(&mut self, vm: &mut Vm<'_>, data: &[u8]) -> u32 {
        let addr = self.stage_zeroed(vm, data.len() as u32);
        vm.machine.mem.write_bytes(addr, data);
        addr
    }

    /// Reserves `len` zeroed input bytes and returns their address.
    ///
    /// # Panics
    ///
    /// Panics if the input region is exhausted.
    pub fn stage_zeroed(&mut self, vm: &mut Vm<'_>, len: u32) -> u32 {
        let addr = (self.cursor + 63) & !63; // Cache-line align inputs.
                                             // Leave 8 bytes of slack after every region: `tag_input` appends a
                                             // 4-byte lower bound at `addr + len`, which must never overlap the
                                             // next staged input.
        let end = addr
            .checked_add(len.max(1))
            .and_then(|e| e.checked_add(8))
            .expect("input region overflow");
        assert!(end <= INPUT_END, "input region exhausted");
        self.cursor = end;
        vm.machine.mem.reserve((end - addr) as u64);
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_mir::{ModuleBuilder, Operand, Ty, Vm, VmConfig};
    use sgxs_sim::{MachineConfig, Mode, Preset};

    fn vmcfg() -> VmConfig {
        VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Native))
    }

    #[test]
    fn malloc_free_roundtrip_from_ir() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let p = fb.intr_ptr("malloc", &[Operand::Imm(128)]);
            fb.store(Ty::I64, p, 42u64);
            let v = fb.load(Ty::I64, p);
            fb.intr_void("free", &[p.into()]);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        assert_eq!(vm.run("main", &[]).expect_ok(), 42);
    }

    #[test]
    fn calloc_zeroes_memory() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let p = fb.intr_ptr("calloc", &[Operand::Imm(4), Operand::Imm(8)]);
            let q = fb.gep(p, 3u64, 8, 0);
            let v = fb.load(Ty::I64, q);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        assert_eq!(vm.run("main", &[]).expect_ok(), 0);
    }

    #[test]
    fn realloc_preserves_prefix() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let p = fb.intr_ptr("malloc", &[Operand::Imm(16)]);
            fb.store(Ty::I64, p, 7u64);
            let q = fb.intr_ptr("realloc", &[p.into(), Operand::Imm(256)]);
            let v = fb.load(Ty::I64, q);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        assert_eq!(vm.run("main", &[]).expect_ok(), 7);
    }

    #[test]
    fn libc_wrappers_callable_from_ir() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("s", 16, b"sgx\0");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let src = fb.global_addr(g);
            let dst = fb.intr_ptr("malloc", &[Operand::Imm(16)]);
            fb.intr_void("strcpy", &[dst.into(), src.into()]);
            let n = fb.intr("strlen", &[dst.into()]);
            let c = fb.intr("strcmp", &[dst.into(), src.into()]);
            let r = fb.add(n, c);
            fb.ret(Some(r.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        assert_eq!(vm.run("main", &[]).expect_ok(), 3); // len 3, cmp 0.
    }

    #[test]
    fn staging_places_data_readably() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[Ty::Ptr], Some(Ty::I64), |fb| {
            let p = fb.param(0);
            let v = fb.load(Ty::I64, p);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        let mut st = Stager::new();
        let addr = st.stage(&mut vm, &123u64.to_le_bytes());
        assert_eq!(vm.run("main", &[addr as u64]).expect_ok(), 123);
    }

    #[test]
    fn mmap_is_page_granular_and_munmap_releases() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let p = fb.intr_ptr("mmap", &[Operand::Imm(8192)]);
            let q = fb.intr_ptr("mmap", &[Operand::Imm(8196)]);
            fb.intr_void("munmap", &[p.into()]);
            let d = fb.sub(q, p);
            fb.ret(Some(d.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, vmcfg());
        install_base(&mut vm, AllocOpts::default());
        // First mapping is exactly 2 pages; 8196 B needs 3.
        assert_eq!(vm.run("main", &[]).expect_ok(), 8192);
    }
}
