//! Raw (uninstrumented) libc-style primitives with charged memory traffic.
//!
//! These model SCONE's uninstrumented libc (paper §3.2 "Function calls"):
//! they operate on plain 32-bit addresses and *do not* perform any bounds
//! checking themselves. Each protection scheme registers its own wrappers
//! that validate/strip arguments and then delegate here, exactly like the
//! paper's hand-written wrapper layer.

use sgxs_mir::{IntrinsicCtx, Trap};

/// Upper bound on string scans, to contain runaway reads of unterminated
/// data.
pub const MAX_STR: u32 = 1 << 22;

/// Copies `n` bytes from `src` to `dst` (regions may not overlap;
/// `memmove` semantics are provided anyway because the host buffer makes
/// the copy atomic).
pub fn memcpy(ctx: &mut IntrinsicCtx<'_>, dst: u32, src: u32, n: u32) -> Result<(), Trap> {
    if n == 0 {
        return Ok(());
    }
    ctx.charge_bulk(src as u64, n, false)?;
    ctx.charge_bulk(dst as u64, n, true)?;
    let mut buf = vec![0u8; n as usize];
    ctx.machine.mem.read_bytes(src, &mut buf);
    ctx.machine.mem.write_bytes(dst, &buf);
    Ok(())
}

/// Fills `n` bytes at `dst` with `byte`.
pub fn memset(ctx: &mut IntrinsicCtx<'_>, dst: u32, byte: u8, n: u32) -> Result<(), Trap> {
    if n == 0 {
        return Ok(());
    }
    ctx.charge_bulk(dst as u64, n, true)?;
    let buf = vec![byte; n as usize];
    ctx.machine.mem.write_bytes(dst, &buf);
    Ok(())
}

/// Compares `n` bytes; returns <0, 0, >0 as `i64` (cast to u64).
pub fn memcmp(ctx: &mut IntrinsicCtx<'_>, a: u32, b: u32, n: u32) -> Result<u64, Trap> {
    if n == 0 {
        return Ok(0);
    }
    ctx.charge_bulk(a as u64, n, false)?;
    ctx.charge_bulk(b as u64, n, false)?;
    let mut ba = vec![0u8; n as usize];
    let mut bb = vec![0u8; n as usize];
    ctx.machine.mem.read_bytes(a, &mut ba);
    ctx.machine.mem.read_bytes(b, &mut bb);
    let r = match ba.cmp(&bb) {
        std::cmp::Ordering::Less => -1i64,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    };
    Ok(r as u64)
}

/// Length of the NUL-terminated string at `p`.
pub fn strlen(ctx: &mut IntrinsicCtx<'_>, p: u32) -> Result<u32, Trap> {
    let mut len = 0u32;
    let mut addr = p;
    let mut chunk = [0u8; 64];
    loop {
        ctx.charge_bulk(addr as u64, 64, false)?;
        ctx.machine.mem.read_bytes(addr, &mut chunk);
        if let Some(i) = chunk.iter().position(|&b| b == 0) {
            return Ok(len + i as u32);
        }
        len += 64;
        addr = addr
            .checked_add(64)
            .ok_or(Trap::Abort("strlen ran off the address space".into()))?;
        if len > MAX_STR {
            return Err(Trap::Abort("unterminated string".into()));
        }
    }
}

/// Copies the NUL-terminated string at `src` (including the terminator) to
/// `dst`; returns the string length. **No bounds checking** — this is the
/// classic overflow vector the RIPE configurations exploit.
pub fn strcpy(ctx: &mut IntrinsicCtx<'_>, dst: u32, src: u32) -> Result<u32, Trap> {
    let len = strlen(ctx, src)?;
    memcpy(ctx, dst, src, len + 1)?;
    Ok(len)
}

/// Copies at most `n` bytes of the string at `src` into `dst`, padding
/// with NULs like the real `strncpy`; returns the copied string length.
pub fn strncpy(ctx: &mut IntrinsicCtx<'_>, dst: u32, src: u32, n: u32) -> Result<u32, Trap> {
    if n == 0 {
        return Ok(0);
    }
    let len = strlen(ctx, src)?.min(n);
    memcpy(ctx, dst, src, len)?;
    if len < n {
        memset(ctx, dst + len, 0, n - len)?;
    }
    Ok(len)
}

/// Appends the string at `src` to the string at `dst`; returns the new
/// length. **No bounds checking** — the classic overflow vector.
pub fn strcat(ctx: &mut IntrinsicCtx<'_>, dst: u32, src: u32) -> Result<u32, Trap> {
    let dlen = strlen(ctx, dst)?;
    let slen = strlen(ctx, src)?;
    memcpy(ctx, dst + dlen, src, slen + 1)?;
    Ok(dlen + slen)
}

/// Returns the address of the first occurrence of `byte` in the string at
/// `p`, or 0 if absent.
pub fn strchr(ctx: &mut IntrinsicCtx<'_>, p: u32, byte: u8) -> Result<u32, Trap> {
    let mut addr = p;
    let mut chunk = [0u8; 64];
    let mut scanned = 0u32;
    loop {
        ctx.charge_bulk(addr as u64, 64, false)?;
        ctx.machine.mem.read_bytes(addr, &mut chunk);
        for (i, &b) in chunk.iter().enumerate() {
            if b == byte {
                return Ok(addr + i as u32);
            }
            if b == 0 {
                return Ok(0);
            }
        }
        scanned += 64;
        addr = addr
            .checked_add(64)
            .ok_or(Trap::Abort("strchr ran off the address space".into()))?;
        if scanned > MAX_STR {
            return Err(Trap::Abort("unterminated string".into()));
        }
    }
}

/// Formats `val` as decimal at `dst` (NUL-terminated); returns the digit
/// count. Stands in for the `printf` family of wrappers the paper hand
/// writes (§3.2: "tracking and extracting the pointers on-the-fly").
pub fn fmt_u64(ctx: &mut IntrinsicCtx<'_>, dst: u32, val: u64) -> Result<u32, Trap> {
    let text = val.to_string();
    ctx.charge(4 * text.len() as u64); // div/mod digit loop.
    ctx.charge_bulk(dst as u64, text.len() as u32 + 1, true)?;
    ctx.machine.mem.write_bytes(dst, text.as_bytes());
    ctx.machine.mem.write(dst + text.len() as u32, 1, 0);
    Ok(text.len() as u32)
}

/// `strcmp` on NUL-terminated strings.
pub fn strcmp(ctx: &mut IntrinsicCtx<'_>, a: u32, b: u32) -> Result<u64, Trap> {
    let la = strlen(ctx, a)?;
    let lb = strlen(ctx, b)?;
    let n = la.min(lb) + 1;
    memcmp(ctx, a, b, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_mir::interp::env::Env;
    use sgxs_sim::{Machine, MachineConfig, Mode, Preset};

    fn with_ctx(f: impl FnOnce(&mut IntrinsicCtx<'_>)) {
        let mut m = Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Native));
        let mut e = Env::new();
        let mut o = Vec::new();
        let mut ctx = IntrinsicCtx {
            machine: &mut m,
            env: &mut e,
            core: 0,
            cycles: 0,
            output: &mut o,
        };
        f(&mut ctx);
    }

    #[test]
    fn memcpy_moves_bytes_and_charges() {
        with_ctx(|ctx| {
            ctx.machine.mem.write_bytes(0x1000, b"hello world");
            memcpy(ctx, 0x2000, 0x1000, 11).unwrap();
            let mut buf = [0u8; 11];
            ctx.machine.mem.read_bytes(0x2000, &mut buf);
            assert_eq!(&buf, b"hello world");
            assert!(ctx.cycles > 0);
        });
    }

    #[test]
    fn memset_fills() {
        with_ctx(|ctx| {
            memset(ctx, 0x3000, 0xAB, 100).unwrap();
            assert_eq!(ctx.load(0x3000 + 99, 1).unwrap(), 0xAB);
            assert_eq!(ctx.load(0x3000 + 100, 1).unwrap(), 0);
        });
    }

    #[test]
    fn strlen_and_strcpy() {
        with_ctx(|ctx| {
            ctx.machine.mem.write_bytes(0x1000, b"sgxbounds\0");
            assert_eq!(strlen(ctx, 0x1000).unwrap(), 9);
            strcpy(ctx, 0x2000, 0x1000).unwrap();
            assert_eq!(strlen(ctx, 0x2000).unwrap(), 9);
        });
    }

    #[test]
    fn strlen_spanning_chunks() {
        with_ctx(|ctx| {
            let s = vec![b'x'; 200];
            ctx.machine.mem.write_bytes(0x1000, &s);
            ctx.machine.mem.write_bytes(0x1000 + 200, &[0]);
            assert_eq!(strlen(ctx, 0x1000).unwrap(), 200);
        });
    }

    #[test]
    fn memcmp_and_strcmp() {
        with_ctx(|ctx| {
            ctx.machine.mem.write_bytes(0x1000, b"abc\0");
            ctx.machine.mem.write_bytes(0x2000, b"abd\0");
            assert_eq!(memcmp(ctx, 0x1000, 0x2000, 2).unwrap(), 0);
            assert_eq!(memcmp(ctx, 0x1000, 0x2000, 3).unwrap() as i64, -1);
            assert_eq!(strcmp(ctx, 0x1000, 0x2000).unwrap() as i64, -1);
            assert_eq!(strcmp(ctx, 0x1000, 0x1000).unwrap(), 0);
        });
    }

    #[test]
    fn unterminated_string_aborts() {
        with_ctx(|ctx| {
            // Fresh memory is all zeroes, so build a huge nonzero run.
            let filler = vec![1u8; (MAX_STR + 128) as usize];
            ctx.machine.mem.write_bytes(0x10_0000, &filler);
            assert!(strlen(ctx, 0x10_0000).is_err());
        });
    }
}
