//! Property tests on the allocator: no overlap, reuse discipline,
//! reservation accounting, quarantine FIFO.

use proptest::prelude::*;
use sgxs_mir::interp::env::Env;
use sgxs_mir::IntrinsicCtx;
use sgxs_rt::{AllocOpts, HeapAlloc};
use sgxs_sim::{Machine, MachineConfig, Mode, Preset};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Act {
    /// Allocate `size % 4096 + 1` bytes.
    Malloc(u32),
    /// Free the (index % live)th live allocation.
    Free(usize),
}

fn acts() -> impl Strategy<Value = Vec<Act>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..8192).prop_map(Act::Malloc),
            (0usize..64).prop_map(Act::Free),
        ],
        1..120,
    )
}

fn run_script(acts: &[Act], opts: AllocOpts) {
    let mut m = Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Native));
    let mut e = Env::new();
    let mut o = Vec::new();
    let mut ctx = IntrinsicCtx {
        machine: &mut m,
        env: &mut e,
        core: 0,
        cycles: 0,
        output: &mut o,
    };
    let mut ha = HeapAlloc::new(0x2_0000, opts);
    // live: user base -> size.
    let mut live: Vec<(u32, u32)> = Vec::new();
    for act in acts {
        match act {
            Act::Malloc(s) => {
                let size = s % 4096 + 1;
                let p = ha.malloc(&mut ctx, size).expect("no cap set");
                // No overlap with any live allocation.
                for &(q, qs) in &live {
                    assert!(
                        p + size <= q || q + qs <= p,
                        "overlap: [{p:#x},+{size}) vs [{q:#x},+{qs})"
                    );
                }
                live.push((p, size));
            }
            Act::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let (p, _) = live.swap_remove(i % live.len());
                ha.free(&mut ctx, p).expect("live pointer");
            }
        }
    }
    // Bookkeeping agrees with our model.
    let model: HashMap<u32, u32> = live.iter().copied().collect();
    assert_eq!(
        ha.stats.live_bytes,
        model.values().map(|&v| v as u64).sum::<u64>()
    );
    for (&p, &s) in &model {
        assert_eq!(ha.usable_size(p), Some(s));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_overlap_plain(script in acts()) {
        run_script(&script, AllocOpts::default());
    }

    #[test]
    fn no_overlap_with_redzones_and_quarantine(script in acts()) {
        run_script(&script, AllocOpts {
            redzone_pre: 16,
            redzone_post: 16,
            quarantine_bytes: 64 << 10,
            ..AllocOpts::default()
        });
    }

    #[test]
    fn reservations_never_decrease_below_live(script in acts()) {
        let mut m = Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Native));
        let mut e = Env::new();
        let mut o = Vec::new();
        let mut ctx = IntrinsicCtx {
            machine: &mut m,
            env: &mut e,
            core: 0,
            cycles: 0,
            output: &mut o,
        };
        let mut ha = HeapAlloc::new(0x2_0000, AllocOpts::default());
        let mut live: Vec<u32> = Vec::new();
        for act in &script {
            match act {
                Act::Malloc(s) => live.push(ha.malloc(&mut ctx, s % 4096 + 1).unwrap()),
                Act::Free(i) => {
                    if !live.is_empty() {
                        let p = live.swap_remove(i % live.len());
                        ha.free(&mut ctx, p).unwrap();
                    }
                }
            }
            prop_assert!(
                ctx.machine.mem.reserved() >= ha.stats.live_bytes,
                "reserved {} < live {}",
                ctx.machine.mem.reserved(),
                ha.stats.live_bytes
            );
        }
    }
}
