//! Scheme-aware workload runner: build, instrument, install, stage, run,
//! measure.

use sgxbounds::SbConfig;
use sgxs_baselines::asan::runtime::asan_alloc_opts;
use sgxs_baselines::{
    install_asan, install_mpx, instrument_asan_with, instrument_mpx_with, AsanConfig, MpxConfig,
};
use sgxs_mir::{verify, CheckSite, Trap, Vm, VmConfig};
use sgxs_rt::{install_base, AllocOpts, Stager};
use sgxs_sim::obs::Recorder;
use sgxs_sim::{ExecTier, MachineConfig, Mode, Preset, Stats};
use sgxs_workloads::{Params, Workload};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};

/// Process-wide default execution tier. The CLI's `--tier` flag sets it
/// once at startup, before any experiment runs; [`RunConfig::new`]
/// snapshots it so every experiment module picks the flag up without
/// threading a parameter through each figure. Simulated results are
/// tier-invariant by construction (the compiled tier is pinned
/// bit-identical), so this switch only changes host wall time.
static DEFAULT_TIER: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default execution tier (see [`default_tier`]).
pub fn set_default_tier(tier: ExecTier) {
    let v = match tier {
        ExecTier::Reference => 0,
        ExecTier::Compiled => 1,
    };
    DEFAULT_TIER.store(v, Ordering::Relaxed);
}

/// The process-wide default execution tier ([`ExecTier::Reference`] unless
/// [`set_default_tier`] was called).
pub fn default_tier() -> ExecTier {
    match DEFAULT_TIER.load(Ordering::Relaxed) {
        1 => ExecTier::Compiled,
        _ => ExecTier::Reference,
    }
}

/// Enclave virtual-memory budget at paper scale (the 4 GB 32-bit space the
/// paper's §8 discussion assumes). Scaled presets divide it by the machine
/// scale so reservation pressure is comparable.
pub const ENCLAVE_BYTES_PAPER: u64 = 4 << 30;

/// A protection scheme to run a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Uninstrumented ("native SGX" when run in enclave mode — the paper's
    /// normalization baseline).
    Baseline,
    /// SGXBounds with both optimizations, fail-stop.
    SgxBounds,
    /// SGXBounds variants for the Fig. 10 ablation and §4.2.
    SgxBoundsCustom(SbConfig),
    /// AddressSanitizer-style baseline.
    Asan,
    /// Intel MPX-style baseline.
    Mpx,
}

impl Scheme {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Baseline => "sgx",
            Scheme::SgxBounds => "sgxbounds",
            Scheme::SgxBoundsCustom(_) => "sgxbounds*",
            Scheme::Asan => "asan",
            Scheme::Mpx => "mpx",
        }
    }

    /// The three hardening schemes the paper compares (Fig. 7 order).
    pub fn all_hardened() -> [Scheme; 3] {
        [Scheme::Mpx, Scheme::Asan, Scheme::SgxBounds]
    }
}

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: &'static str,
    /// Exit value or trap.
    pub result: Result<u64, Trap>,
    /// Simulated wall-clock cycles.
    pub wall_cycles: u64,
    /// Peak reserved virtual memory (the paper's memory metric).
    pub peak_reserved: u64,
    /// Peak committed (touched) bytes.
    pub peak_committed: u64,
    /// Hardware counters.
    pub stats: Stats,
    /// MPX bounds tables allocated (MPX runs only).
    pub mpx_bts: usize,
}

impl Measured {
    /// True when the run completed (OOM crashes and detections are not
    /// completions).
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Machine/VM configuration for an experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Scale preset.
    pub preset: Preset,
    /// Enclave or native execution.
    pub mode: Mode,
    /// Workload parameters.
    pub params: Params,
    /// Instruction budget.
    pub max_instructions: u64,
    /// Optional EPC-size override in bytes (ablations).
    pub epc_override: Option<u64>,
    /// Execution tier (the reference interpreter stays the default oracle;
    /// the compiled tier is bit-identical and only changes host wall time).
    pub tier: ExecTier,
}

impl RunConfig {
    /// Default experiment configuration for a preset (enclave mode, L size,
    /// 8 threads).
    pub fn new(preset: Preset) -> Self {
        let scale = MachineConfig::scale_of(preset);
        RunConfig {
            preset,
            mode: Mode::Enclave,
            params: Params::new(scale),
            max_instructions: 4_000_000_000,
            epc_override: None,
            tier: default_tier(),
        }
    }

    /// The machine-scale divisor.
    pub fn scale(&self) -> u64 {
        MachineConfig::scale_of(self.preset)
    }

    /// The scaled enclave reservation cap.
    pub fn enclave_cap(&self) -> u64 {
        match self.mode {
            Mode::Enclave => ENCLAVE_BYTES_PAPER / self.scale(),
            // Outside the enclave memory is effectively unconstrained.
            Mode::Native => u64::MAX,
        }
    }
}

/// An observed execution: the measurement plus everything needed to build a
/// per-check-site profile from the recorder's event stream.
#[derive(Debug)]
pub struct ObsRun {
    /// The measurement (same fields [`run_one`] reports).
    pub measured: Measured,
    /// Check-site table of the instrumented module (index = site ID).
    pub sites: Vec<CheckSite>,
    /// Summed per-thread cycles (total CPU time; the denominator for
    /// app-vs-instrumentation attribution).
    pub cpu_cycles: u64,
}

/// Builds, hardens, and runs `workload` under `scheme`.
pub fn run_one(workload: &dyn Workload, scheme: Scheme, rc: &RunConfig) -> Measured {
    run_one_inner(workload, scheme, rc, None, false).measured
}

/// Negative control for the tier-equivalence oracle: runs on the compiled
/// tier with the engine's deliberate single-cycle accounting fault enabled
/// (ignoring `rc.tier`). A working oracle must see this run diverge from
/// [`run_one`]; `repro tier check --perturb` and CI use it to prove the
/// gate can fail.
pub fn run_one_perturbed(workload: &dyn Workload, scheme: Scheme, rc: &RunConfig) -> Measured {
    run_one_inner(workload, scheme, rc, None, true).measured
}

/// Like [`run_one`] but with the observability layer on: the instrumentation
/// passes register site markers for every inserted check and the machine
/// routes events through `rec`. Passing a
/// [`NoopRecorder`](sgxs_sim::obs::NoopRecorder) must not change any
/// simulated counter (markers are transparent and the emit path is gated on
/// an inlined `enabled()`).
pub fn run_one_obs(
    workload: &dyn Workload,
    scheme: Scheme,
    rc: &RunConfig,
    rec: Rc<RefCell<dyn Recorder>>,
) -> ObsRun {
    run_one_inner(workload, scheme, rc, Some(rec), false)
}

fn run_one_inner(
    workload: &dyn Workload,
    scheme: Scheme,
    rc: &RunConfig,
    rec: Option<Rc<RefCell<dyn Recorder>>>,
    perturb: bool,
) -> ObsRun {
    let markers = rec.is_some();
    let mut module = workload.build(&rc.params);
    let sb_cfg = match scheme {
        Scheme::SgxBounds => Some(SbConfig {
            site_markers: markers,
            ..SbConfig::default()
        }),
        Scheme::SgxBoundsCustom(c) => Some(SbConfig {
            site_markers: markers,
            ..c
        }),
        _ => None,
    };
    match scheme {
        Scheme::Baseline => {}
        Scheme::SgxBounds | Scheme::SgxBoundsCustom(_) => {
            sgxbounds::instrument(&mut module, sb_cfg.as_ref().expect("set above"))
                .expect("sgxbounds instrumentation");
        }
        Scheme::Asan => {
            instrument_asan_with(&mut module, markers).expect("asan instrumentation");
        }
        Scheme::Mpx => {
            instrument_mpx_with(&mut module, markers).expect("mpx instrumentation");
        }
    }
    if let Err(e) = verify(&module) {
        panic!(
            "{} under {}: ill-formed IR: {e}",
            workload.name(),
            scheme.label()
        );
    }

    let mut machine_cfg = MachineConfig::preset(rc.preset, rc.mode);
    if let Some(epc) = rc.epc_override {
        machine_cfg.epc_bytes = epc;
    }
    machine_cfg.tier = rc.tier;
    let mut cfg = VmConfig::new(machine_cfg);
    cfg.max_instructions = rc.max_instructions;
    // Thread stacks scale with the machine (2 MB pthread default at paper
    // scale) so reserved-memory ratios stay comparable across presets.
    cfg.stack_size = ((2u64 << 20) / rc.scale()).max(32 << 10) as u32;
    let mut vm = Vm::new(&module, cfg);
    vm.machine.set_recorder(rec);
    let cap = rc.enclave_cap();
    let asan_cfg = AsanConfig::for_scale(rc.scale());
    let heap = match scheme {
        Scheme::Asan => install_base(&mut vm, asan_alloc_opts(&asan_cfg, cap)),
        _ => install_base(
            &mut vm,
            AllocOpts {
                reserve_cap: cap,
                ..AllocOpts::default()
            },
        ),
    };
    let mut mpx_rt = None;
    match scheme {
        Scheme::SgxBounds | Scheme::SgxBoundsCustom(_) => {
            sgxbounds::install_sgxbounds(&mut vm, heap, &sb_cfg.expect("set above"), None);
        }
        Scheme::Asan => {
            install_asan(&mut vm, heap, &asan_cfg);
        }
        Scheme::Mpx => {
            mpx_rt = Some(install_mpx(&mut vm, heap, MpxConfig::for_scale(rc.scale())));
        }
        Scheme::Baseline => {}
    }

    let mut st = Stager::new();
    let args = workload.stage(&mut vm, &mut st, &rc.params);
    if perturb {
        sgxs_exec::attach_perturbed(&mut vm);
    } else if rc.tier == ExecTier::Compiled {
        sgxs_exec::attach(&mut vm);
    }
    let out = vm.run("main", &args);
    let measured = Measured {
        workload: workload.name().to_owned(),
        scheme: scheme.label(),
        result: out.result,
        wall_cycles: out.wall_cycles,
        peak_reserved: out.peak_reserved,
        peak_committed: out.peak_committed,
        stats: out.stats,
        mpx_bts: mpx_rt
            .as_ref()
            .map(|r| r.tables.borrow().bt_count())
            .unwrap_or(0),
    };
    drop(vm);
    ObsRun {
        measured,
        sites: std::mem::take(&mut module.check_sites),
        cpu_cycles: out.cpu_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_workloads::SizeClass;

    fn quick_rc() -> RunConfig {
        let mut rc = RunConfig::new(Preset::Tiny);
        rc.params.size = SizeClass::XS;
        rc.params.threads = 2;
        rc
    }

    #[test]
    fn baseline_run_produces_counters_and_cycles() {
        let w = sgxs_workloads::by_name("histogram").unwrap();
        let m = run_one(w.as_ref(), Scheme::Baseline, &quick_rc());
        assert!(m.ok());
        assert!(m.wall_cycles > 0);
        assert!(m.stats.instructions > 0);
        assert!(m.peak_reserved > 0);
        assert_eq!(m.scheme, "sgx");
        assert_eq!(m.mpx_bts, 0);
    }

    #[test]
    fn mpx_run_reports_bounds_tables() {
        let w = sgxs_workloads::by_name("word_count").unwrap();
        let m = run_one(w.as_ref(), Scheme::Mpx, &quick_rc());
        assert!(m.ok());
        assert!(m.mpx_bts > 0, "pointer-heavy workload must allocate BTs");
    }

    #[test]
    fn enclave_cap_scales_with_preset() {
        let tiny = RunConfig::new(Preset::Tiny);
        let mini = RunConfig::new(Preset::Mini);
        assert_eq!(tiny.enclave_cap() * 4, mini.enclave_cap());
        let mut native = RunConfig::new(Preset::Tiny);
        native.mode = Mode::Native;
        assert_eq!(native.enclave_cap(), u64::MAX);
    }

    #[test]
    fn schemes_are_deterministic_across_repeat_runs() {
        let w = sgxs_workloads::by_name("string_match").unwrap();
        let a = run_one(w.as_ref(), Scheme::SgxBounds, &quick_rc());
        let b = run_one(w.as_ref(), Scheme::SgxBounds, &quick_rc());
        assert_eq!(
            a.wall_cycles, b.wall_cycles,
            "simulation must be deterministic"
        );
        assert_eq!(a.result.clone().unwrap(), b.result.clone().unwrap());
        assert_eq!(a.peak_reserved, b.peak_reserved);
    }
}
