#![warn(missing_docs)]

//! Experiment harness: runs every workload under every scheme and
//! regenerates each table and figure of the paper (the reproduction's
//! equivalent of the Fex framework the paper uses, §6.1).
//!
//! The `repro` binary drives the experiments from the command line:
//!
//! ```text
//! repro fig7          # Phoenix+PARSEC overheads (Fig. 7)
//! repro all --quick   # everything, small inputs
//! ```

pub mod audit;
pub mod cli;
pub mod exp;
pub mod lint;
pub mod profile;
pub mod report;
pub mod scheme;

pub use exp::Effort;
pub use profile::{profile_one, ProfileRun};
pub use scheme::{run_one, run_one_obs, Measured, ObsRun, RunConfig, Scheme};
