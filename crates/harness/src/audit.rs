//! `repro audit`: cross-tier-pinned incident forensics.
//!
//! Runs the committed OOB demo module (`repro lint --demo-oob`'s subject)
//! under SGXBounds with a full [`LedgerRecorder`] attached, assembles the
//! detection into a `sgxs-incident-v1` artifact, and *proves* the
//! cross-tier pin before emitting anything: the forensic run executes on
//! both the reference interpreter and the compiled tier, and the two
//! serialized documents must be byte-identical. The emitted artifact then
//! carries `tier: pinned` as a checked claim, and CI byte-diffs reruns.
//!
//! The artifact is self-validated through
//! [`sgxs_obs::read::parse_incident`] (schema tag, id recompute,
//! neighborhood geometry, trace-index monotonicity) before it is written,
//! so `repro audit` can never emit a document its own reader rejects.

use crate::cli::{write_file, Args, USAGE};
use crate::lint::oob_demo;
use sgxbounds::SbConfig;
use sgxs_audit::{Incident, IncidentMeta, LedgerRecorder, DEFAULT_TRACE_WINDOW};
use sgxs_mir::{verify, Trap, Vm, VmConfig};
use sgxs_obs::read::parse_incident;
use sgxs_rt::{install_base, AllocOpts};
use sgxs_sim::{ExecTier, MachineConfig, Mode, Preset};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs the demo OOB module under default SGXBounds on `tier` with a
/// ledger recorder attached; returns the outcome and the recovered
/// recorder.
fn forensic_demo_run(tier: ExecTier, window: usize) -> (Result<u64, Trap>, LedgerRecorder) {
    let mut module = oob_demo();
    let cfg = SbConfig {
        site_markers: true,
        ..SbConfig::default()
    };
    sgxbounds::instrument(&mut module, &cfg).expect("demo instrumentation");
    verify(&module).expect("instrumented demo module verifies");

    let mut machine_cfg = MachineConfig::preset(Preset::Tiny, Mode::Enclave);
    machine_cfg.tier = tier;
    let mut vm = Vm::new(&module, VmConfig::new(machine_cfg));
    let rec = Rc::new(RefCell::new(LedgerRecorder::new(window)));
    vm.machine.set_recorder(Some(rec.clone()));
    vm.machine.set_span_mode(true);
    if tier == ExecTier::Compiled {
        sgxs_exec::attach(&mut vm);
    }
    let heap = install_base(&mut vm, AllocOpts::default());
    sgxbounds::install_sgxbounds(&mut vm, heap, &cfg, None);
    let out = vm.run("main", &[]);
    drop(vm);
    let rec = Rc::try_unwrap(rec)
        .expect("machine dropped its recorder handle")
        .into_inner();
    (out.result, rec)
}

/// Assembles the demo incident from one tier's forensic run. The
/// derivation chain comes from the static lint over the same module, so
/// the artifact joins the dynamic trap with the analysis that already
/// proved the access out of bounds.
fn demo_incident(tier: ExecTier, window: usize) -> Incident {
    let (result, rec) = forensic_demo_run(tier, window);
    let verdict = match &result {
        Ok(_) => "missed",
        Err(_) => "detected",
    };
    let meta = IncidentMeta {
        origin: "audit".into(),
        workload: "oob-demo".into(),
        scheme: "sgxbounds".into(),
        tier: "pinned".into(),
        verdict: verdict.into(),
    };
    let mut inc = Incident::assemble(meta, &rec, window);
    let mut demo = oob_demo();
    let lint = sgxs_analyze::lint_module(&mut demo);
    inc.derivation = lint
        .findings
        .iter()
        .map(|f| {
            let off = match f.offset {
                Some((lo, hi)) => format!("[{lo},{hi}]"),
                None => "?".to_owned(),
            };
            format!(
                "{}:b{}:i{} {} of {}B at offset {} past {} — {}",
                f.function, f.block, f.inst, f.kind, f.width, off, f.object, f.ir
            )
        })
        .collect();
    inc
}

/// The cross-tier-pinned demo incident: assembled independently on the
/// reference and compiled tiers, byte-compared, and returned only when the
/// two documents are identical.
pub fn pinned_demo_incident(window: usize) -> Result<Incident, String> {
    let r = demo_incident(ExecTier::Reference, window);
    let c = demo_incident(ExecTier::Compiled, window);
    let (rj, cj) = (r.to_json().to_compact(), c.to_json().to_compact());
    if rj != cj {
        return Err(format!(
            "cross-tier pin violated: reference and compiled forensics differ\n\
             reference: {rj}\ncompiled:  {cj}"
        ));
    }
    Ok(r)
}

/// `repro audit --demo-oob [--window N] [--json FILE] [--ascii FILE]
/// [--svg FILE]`: emit a cross-tier-pinned `sgxs-incident-v1` artifact for
/// the demo OOB detection. Exits 1 when the demo violation was not
/// detected (the forensic pipeline is then demonstrably broken).
pub fn run_audit(args: &[String]) -> Result<i32, String> {
    let mut demo = false;
    let mut window = DEFAULT_TRACE_WINDOW;
    let mut json: Option<String> = None;
    let mut ascii: Option<String> = None;
    let mut svg: Option<String> = None;
    let mut it = Args::new("audit", args);
    while let Some(a) = it.next_arg() {
        match a {
            "--demo-oob" => demo = true,
            "--window" => window = it.parse("--window")?,
            "--json" => json = Some(it.value("--json")?),
            "--ascii" => ascii = Some(it.value("--ascii")?),
            "--svg" => svg = Some(it.value("--svg")?),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if !demo {
        return Err(it.fail(format!(
            "--demo-oob is required (the only incident source this \
             subcommand drives today)\n{USAGE}"
        )));
    }
    if window == 0 {
        return Err(it.fail("--window must be at least 1"));
    }
    let inc = pinned_demo_incident(window).map_err(|e| it.fail(e))?;
    let text = inc.to_json().to_pretty();
    // Self-validation: the emitted artifact must round-trip through the
    // validating reader before anything is written.
    let doc = parse_incident(&text)
        .map_err(|e| it.fail(format!("emitted incident fails its own reader: {e}")))?;
    print!("{}", inc.render());
    println!("cross-tier pin: reference and compiled forensics byte-identical");
    if let Some(path) = &json {
        write_file(path, &text).map_err(|e| it.fail(e))?;
        println!("incident json written to {path}");
    }
    if let Some(path) = &ascii {
        write_file(path, &sgxs_perf::incident_ascii(&doc)).map_err(|e| it.fail(e))?;
        println!("incident ascii written to {path}");
    }
    if let Some(path) = &svg {
        write_file(path, &sgxs_perf::incident_svg(&doc)).map_err(|e| it.fail(e))?;
        println!("incident svg written to {path}");
    }
    Ok(if inc.meta.verdict == "detected" { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_incident_is_detected_pinned_and_self_validating() {
        let inc = pinned_demo_incident(DEFAULT_TRACE_WINDOW).expect("cross-tier pin holds");
        assert_eq!(
            inc.meta.verdict, "detected",
            "sgxbounds must catch the demo"
        );
        let fault = inc.fault.as_ref().expect("detection carries a fault");
        // The demo reads one element past a 40-byte object. The ledger
        // records the *backing* allocation — 40 user bytes plus the 4-byte
        // UB footer SGXBounds appends — so the decoded fault pointer sits
        // exactly at the user upper bound, *inside* the backing object: the
        // OOB read would have landed in the bounds metadata itself.
        assert_eq!(fault.size, 8);
        assert_eq!(
            fault.ptr, fault.tag_ub,
            "load exactly at the user upper bound"
        );
        assert!(
            !inc.neighborhood.is_empty(),
            "the overflowed object is a neighbour"
        );
        let n0 = &inc.neighborhood[0];
        assert_eq!(n0.relation.label(), "contains");
        assert_eq!(n0.distance, 0, "the fault address is inside the footer");
        assert_eq!(n0.object.size, 44, "40 user bytes + 4-byte UB footer");
        assert!(
            !inc.derivation.is_empty(),
            "the static lint contributes the derivation chain"
        );
        // Round trip through the validating reader.
        let doc = parse_incident(&inc.to_json().to_pretty()).expect("self-validates");
        assert_eq!(doc.origin, "audit");
        assert_eq!(doc.tier, "pinned");
        // Rerun stability: the artifact (id included) is byte-identical.
        let again = pinned_demo_incident(DEFAULT_TRACE_WINDOW).expect("pin holds again");
        assert_eq!(
            inc.to_json().to_pretty(),
            again.to_json().to_pretty(),
            "audit artifact is not rerun-stable"
        );
    }
}
