//! Observed-run profiling: runs a workload with a [`TraceRecorder`]
//! attached and aggregates the event stream into a per-check-site
//! [`Profile`] (the `repro profile` subcommand's engine).

use crate::report::Table;
use crate::scheme::{run_one_obs, Measured, RunConfig, Scheme};
use sgxs_obs::{Profile, TraceRecorder};
use std::cell::RefCell;
use std::rc::Rc;

/// Default ring capacity for traced runs (events kept for the JSONL sink).
pub const DEFAULT_RING: usize = 4096;

/// Default number of hot sites reported.
pub const DEFAULT_TOP: usize = 10;

/// A profiled execution: the aggregate profile, the raw measurement, and
/// the recorder (for trace export).
#[derive(Debug)]
pub struct ProfileRun {
    /// Aggregated per-check-site profile.
    pub profile: Profile,
    /// The plain measurement of the same run.
    pub measured: Measured,
    /// The recorder, recovered after the run (ring + counters + digest).
    pub recorder: TraceRecorder,
}

/// Runs `workload` under `scheme` with tracing on and builds its profile.
pub fn profile_one(
    workload: &dyn sgxs_workloads::Workload,
    scheme: Scheme,
    rc: &RunConfig,
    ring_cap: usize,
    top_n: usize,
) -> ProfileRun {
    let rec = Rc::new(RefCell::new(TraceRecorder::new(ring_cap)));
    let obs = run_one_obs(workload, scheme, rc, rec.clone());
    let recorder = Rc::try_unwrap(rec)
        .expect("machine dropped its recorder handle")
        .into_inner();
    let labels: Vec<(String, String)> = obs
        .sites
        .iter()
        .map(|s| (s.func.clone(), s.kind.to_owned()))
        .collect();
    let profile = Profile::build(
        &obs.measured.workload,
        obs.measured.scheme,
        &recorder,
        &labels,
        obs.measured.wall_cycles,
        obs.cpu_cycles,
        top_n,
    );
    ProfileRun {
        profile,
        measured: obs.measured,
        recorder,
    }
}

/// Renders the profile the way `repro profile` prints it.
pub fn render(p: &Profile) -> String {
    let mut out = format!(
        "profile: {} under {} — {} events ({} check execs, {} fails)\n",
        p.workload, p.scheme, p.events, p.check_execs, p.check_fails
    );
    out.push_str(&format!(
        "cycles: wall {} | cpu {} = app {} + checks {} ({:.1}% instrumentation)\n",
        p.wall_cycles,
        p.cpu_cycles,
        p.app_cycles,
        p.check_cycles,
        p.check_pct()
    ));
    out.push_str(&format!(
        "alloc: {} allocs / {} frees, {} bytes | epc: {} faults, {} evictions\n",
        p.allocs, p.frees, p.alloc_bytes, p.epc_faults, p.epc_evicts
    ));
    if p.epc_faults + p.epc_evicts > 0 {
        let peak = p
            .timeline
            .iter()
            .map(|b| b.faults + b.evicts)
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "epc timeline: {} buckets x {} instructions, peak {} events/bucket\n",
            p.timeline.len(),
            p.timeline_width,
            peak
        ));
    }
    out.push_str(&format!(
        "check sites: {} active of {} inserted\n",
        p.sites_active, p.sites_total
    ));
    if !p.top_sites.is_empty() {
        let mut t = Table::new(&["site", "func", "kind", "execs", "cycles", "fails"]);
        for r in &p.top_sites {
            t.row(vec![
                format!("#{}", r.site),
                r.func.clone(),
                r.kind.clone(),
                r.execs.to_string(),
                r.cycles.to_string(),
                r.fails.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::run_one;
    use sgxs_obs::NoopRecorder;
    use sgxs_sim::Preset;
    use sgxs_workloads::SizeClass;

    fn quick_rc() -> RunConfig {
        let mut rc = RunConfig::new(Preset::Tiny);
        rc.params.size = SizeClass::XS;
        rc.params.threads = 2;
        rc
    }

    #[test]
    fn sgxbounds_profile_has_hot_sites_and_attribution() {
        let w = sgxs_workloads::by_name("simple").unwrap();
        let pr = profile_one(
            w.as_ref(),
            Scheme::SgxBounds,
            &quick_rc(),
            DEFAULT_RING,
            DEFAULT_TOP,
        );
        assert!(pr.measured.ok());
        let p = &pr.profile;
        assert!(!p.top_sites.is_empty(), "instrumented run must hit sites");
        assert!(p.check_execs > 0);
        assert!(p.check_cycles > 0);
        assert!(p.check_cycles < p.cpu_cycles, "checks are a strict subset");
        assert_eq!(p.app_cycles, p.cpu_cycles - p.check_cycles);
        assert!(p.allocs >= 1, "simple mallocs its buffer");
        assert!(p.sites_active <= p.sites_total);
        // The rendered form and the JSON form both carry the top table.
        assert!(render(p).contains("site"));
        let j = p.to_json();
        assert_eq!(
            j.get("schema").and_then(|s| s.as_str()),
            Some("sgxs-profile-v1")
        );
        assert!(!j.get("top_sites").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn noop_recorder_leaves_counters_bit_identical() {
        // The zero-overhead guarantee: an installed-but-disabled recorder
        // (site markers present, emit path compiled in) must not move a
        // single simulated counter relative to the plain run.
        let rc = quick_rc();
        for scheme in [Scheme::SgxBounds, Scheme::Asan, Scheme::Mpx] {
            let w = sgxs_workloads::by_name("string_match").unwrap();
            let plain = run_one(w.as_ref(), scheme, &rc);
            let obs = run_one_obs(w.as_ref(), scheme, &rc, Rc::new(RefCell::new(NoopRecorder)));
            assert_eq!(
                plain.result.clone().unwrap(),
                obs.measured.result.clone().unwrap(),
                "{}",
                scheme.label()
            );
            assert_eq!(
                plain.wall_cycles,
                obs.measured.wall_cycles,
                "{}",
                scheme.label()
            );
            assert_eq!(plain.stats, obs.measured.stats, "{}", scheme.label());
            assert_eq!(plain.peak_reserved, obs.measured.peak_reserved);
            assert_eq!(plain.peak_committed, obs.measured.peak_committed);
        }
    }

    #[test]
    fn traced_rerun_digest_is_stable() {
        let w = sgxs_workloads::by_name("simple").unwrap();
        let a = profile_one(w.as_ref(), Scheme::SgxBounds, &quick_rc(), 64, 5);
        let b = profile_one(w.as_ref(), Scheme::SgxBounds, &quick_rc(), 64, 5);
        assert_eq!(a.profile.digest, b.profile.digest);
        assert_eq!(a.profile.events, b.profile.events);
    }
}
