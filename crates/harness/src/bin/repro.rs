//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro <experiment>... [--quick] [--tiny|--mini|--paper]`
//! where experiment is one of: fig1 fig7 fig8 table3 fig9 fig10 table4
//! fig11 fig12 fig13 cases all.

use sgxs_harness::exp::{self, Effort};
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = Preset::Mini;
    let mut effort = Effort::Full;
    let mut wanted: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--tiny" => preset = Preset::Tiny,
            "--mini" => preset = Preset::Mini,
            "--paper" => preset = Preset::Paper,
            other => wanted.push(other.trim_start_matches('-').to_lowercase()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <fig1|fig7|fig8|table3|fig9|fig10|table4|fig11|fig12|fig13|cases|all> \
             [--quick] [--tiny|--mini|--paper]"
        );
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let quick = effort == Effort::Quick;

    println!(
        "SGXBounds reproduction — preset {:?}, effort {:?}\n",
        preset, effort
    );

    if want("fig1") {
        let steps = if quick { 3 } else { 5 };
        println!("{}\n", exp::fig01::run(preset, steps));
    }
    if want("fig7") {
        println!("{}\n", exp::fig07::run(preset, effort));
    }
    if want("fig8") || want("table3") {
        let sizes: &[SizeClass] = if quick {
            &[SizeClass::XS, SizeClass::M, SizeClass::XL]
        } else {
            &SizeClass::ALL
        };
        let f8 = exp::fig08::run(preset, sizes);
        if want("fig8") {
            println!("{f8}\n");
        }
        if want("table3") {
            println!("{}\n", f8.table3());
        }
    }
    if want("fig9") {
        println!("{}\n", exp::fig09::run(preset, effort));
    }
    if want("fig10") {
        println!("{}\n", exp::fig10::run(preset, effort));
    }
    if want("table4") {
        println!("{}\n", exp::tab04::run(preset));
    }
    if want("fig11") {
        println!("{}\n", exp::fig11::run(preset, effort));
    }
    if want("fig12") {
        println!("{}\n", exp::fig12::run(preset, effort));
    }
    if want("fig13") {
        let clients: &[u32] = if quick {
            &[1, 4, 16]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        let rpc = if quick { 24 } else { 64 };
        println!("{}\n", exp::fig13::run(preset, clients, rpc));
    }
    if want("cases") {
        println!("{}\n", exp::cases::run(preset));
    }
}
