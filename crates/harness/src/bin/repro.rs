//! Regenerates the paper's tables and figures, and drives the analysis
//! tier. The real work lives in [`sgxs_harness::cli`]; this binary only
//! maps its `Result` onto process exit codes:
//!
//! * `Ok(code)` — subcommand ran; exit with its code (gates and failed
//!   runs use 1);
//! * `Err(msg)` — usage or I/O error; print it and exit 2.
//!
//! See `repro` with no arguments for the subcommand summary: the
//! experiment suite (`repro all --quick`), `profile`, `fuzz`,
//! `bench record`, `compare`, and `render`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sgxs_harness::cli::run(&args) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
