//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro <experiment>... [--quick] [--tiny|--mini|--paper]
//! [--json <path>]` where experiment is one of: fig1 fig7 fig8 table3 fig9
//! fig10 table4 fig11 fig12 fig13 cases all. With `--json` the selected
//! experiments are additionally written to `<path>` in the `sgxs-bench-v1`
//! schema (see `results/README.md`).
//!
//! `repro profile <workload> [--scheme <s>] [--trace out.jsonl]
//! [--json out.json] [--top N] [--ring N]` runs one workload with the
//! observability layer on and prints its per-check-site profile.
//!
//! `repro fuzz [--seeds N] [--seed0 N] [--max-ops N] [--no-shrink]
//! [--corpus <path>]` runs the differential fuzzing campaign (and/or
//! replays a corpus file) instead.

use sgxs_harness::exp::{self, Effort};
use sgxs_harness::profile::{profile_one, render, DEFAULT_RING, DEFAULT_TOP};
use sgxs_harness::scheme::{RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

/// Writes `text` to `path`, creating parent directories; exits on failure.
fn write_file(path: &str, text: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("repro: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// Parses and runs the `profile` subcommand; exits the process when done.
fn profile_main(args: &[String]) -> ! {
    let mut workload: Option<String> = None;
    let mut scheme = Scheme::SgxBounds;
    let mut preset = Preset::Tiny;
    let mut size = SizeClass::XS;
    let mut trace: Option<String> = None;
    let mut json: Option<String> = None;
    let mut top = DEFAULT_TOP;
    let mut ring = DEFAULT_RING;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("profile: {flag} needs an argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--scheme" => {
                scheme = match next("--scheme", &mut it).as_str() {
                    "sgx" | "baseline" => Scheme::Baseline,
                    "sgxbounds" => Scheme::SgxBounds,
                    "asan" => Scheme::Asan,
                    "mpx" => Scheme::Mpx,
                    other => {
                        eprintln!("profile: unknown scheme '{other}' (sgx|sgxbounds|asan|mpx)");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => trace = Some(next("--trace", &mut it)),
            "--json" => json = Some(next("--json", &mut it)),
            "--top" => {
                top = next("--top", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("profile: --top needs a number");
                    std::process::exit(2);
                })
            }
            "--ring" => {
                ring = next("--ring", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("profile: --ring needs a number");
                    std::process::exit(2);
                })
            }
            "--tiny" => preset = Preset::Tiny,
            "--mini" => preset = Preset::Mini,
            "--paper" => preset = Preset::Paper,
            "--quick" => size = SizeClass::XS,
            "--full" => size = SizeClass::L,
            other if !other.starts_with('-') && workload.is_none() => {
                workload = Some(other.to_owned())
            }
            other => {
                eprintln!("profile: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(name) = workload else {
        eprintln!(
            "usage: repro profile <workload> [--scheme sgx|sgxbounds|asan|mpx] \
             [--trace FILE.jsonl] [--json FILE.json] [--top N] [--ring N] \
             [--tiny|--mini|--paper] [--quick|--full]"
        );
        std::process::exit(2);
    };
    let Some(w) = sgxs_workloads::by_name(&name) else {
        eprintln!("profile: unknown workload '{name}'");
        std::process::exit(2);
    };
    let mut rc = RunConfig::new(preset);
    rc.params.size = size;
    let pr = profile_one(w.as_ref(), scheme, &rc, ring, top);
    print!("{}", render(&pr.profile));
    if let Some(path) = &trace {
        write_file(path, &pr.recorder.to_jsonl());
        println!(
            "trace: {} events written to {path} ({} dropped from the ring)",
            pr.recorder.ring_len(),
            pr.recorder.dropped()
        );
    }
    if let Some(path) = &json {
        write_file(path, &pr.profile.to_json().to_pretty());
        println!("profile json written to {path}");
    }
    // A hardened run that never executed a check means the site plumbing is
    // broken — fail loudly so CI catches it.
    let hardened = !matches!(scheme, Scheme::Baseline);
    if hardened && pr.profile.top_sites.is_empty() {
        eprintln!("profile: no check site fired under {}", scheme.label());
        std::process::exit(1);
    }
    std::process::exit(if pr.measured.ok() { 0 } else { 1 });
}

/// Parses and runs the `fuzz` subcommand; exits the process when done.
fn fuzz_main(args: &[String]) -> ! {
    let mut opts = sgxs_fuzz::FuzzOpts::default();
    let mut corpus: Option<String> = None;
    let mut it = args.iter();
    let parse_u64 = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("fuzz: {flag} needs a numeric argument");
            std::process::exit(2);
        })
    };
    let mut ran_seeds = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                opts.seeds = parse_u64("--seeds", &mut it);
                ran_seeds = true;
            }
            "--seed0" => opts.seed0 = parse_u64("--seed0", &mut it),
            "--max-ops" => opts.max_ops = parse_u64("--max-ops", &mut it) as usize,
            "--no-shrink" => opts.shrink = false,
            "--corpus" => {
                corpus = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("fuzz: --corpus needs a file path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("fuzz: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let mut failed = false;
    if let Some(path) = &corpus {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fuzz: cannot read corpus {path}: {e}");
            std::process::exit(2);
        });
        let entries = sgxs_fuzz::parse_corpus(&text).unwrap_or_else(|e| {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        });
        println!("replaying {} corpus entries from {path}", entries.len());
        for entry in &entries {
            let bad = entry.replay();
            if bad.is_empty() {
                continue;
            }
            failed = true;
            for (scheme, v) in bad {
                println!(
                    "  corpus entry '{}': {} produced {:?}",
                    entry.to_line(),
                    scheme.label(),
                    v
                );
            }
        }
        if !failed {
            println!("corpus clean: every entry matches the detection model\n");
        }
    }
    if corpus.is_none() || ran_seeds {
        let report = sgxs_fuzz::run_campaign(&opts);
        println!("{}", report.render());
        failed |= !report.disagreements.is_empty();
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        profile_main(&args[1..]);
    }
    let mut preset = Preset::Mini;
    let mut effort = Effort::Full;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--tiny" => preset = Preset::Tiny,
            "--mini" => preset = Preset::Mini,
            "--paper" => preset = Preset::Paper,
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("repro: --json needs a file path");
                    std::process::exit(2);
                }))
            }
            other => wanted.push(other.trim_start_matches('-').to_lowercase()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <fig1|fig7|fig8|table3|fig9|fig10|table4|fig11|fig12|fig13|cases|all> \
             [--quick] [--tiny|--mini|--paper] [--json FILE]\n       \
             repro profile <workload> [--scheme S] [--trace FILE] [--json FILE]\n       \
             repro fuzz [--seeds N] [--seed0 N] [--max-ops N] [--no-shrink] [--corpus FILE]"
        );
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let quick = effort == Effort::Quick;
    let mut experiments: Vec<(&str, Json)> = Vec::new();

    println!(
        "SGXBounds reproduction — preset {:?}, effort {:?}\n",
        preset, effort
    );

    if want("fig1") {
        let steps = if quick { 3 } else { 5 };
        let f = exp::fig01::run(preset, steps);
        println!("{f}\n");
        experiments.push(("fig1", f.to_json()));
    }
    if want("fig7") {
        let f = exp::fig07::run(preset, effort);
        println!("{f}\n");
        experiments.push(("fig7", f.to_json()));
    }
    if want("fig8") || want("table3") {
        let sizes: &[SizeClass] = if quick {
            &[SizeClass::XS, SizeClass::M, SizeClass::XL]
        } else {
            &SizeClass::ALL
        };
        let f8 = exp::fig08::run(preset, sizes);
        if want("fig8") {
            println!("{f8}\n");
        }
        if want("table3") {
            println!("{}\n", f8.table3());
        }
        experiments.push(("fig8", f8.to_json()));
    }
    if want("fig9") {
        let f = exp::fig09::run(preset, effort);
        println!("{f}\n");
        experiments.push(("fig9", f.to_json()));
    }
    if want("fig10") {
        let f = exp::fig10::run(preset, effort);
        println!("{f}\n");
        experiments.push(("fig10", f.to_json()));
    }
    if want("table4") {
        let t = exp::tab04::run(preset);
        println!("{t}\n");
        experiments.push(("table4", t.to_json()));
    }
    if want("fig11") {
        let f = exp::fig11::run(preset, effort);
        println!("{f}\n");
        experiments.push(("fig11", f.to_json()));
    }
    if want("fig12") {
        let f = exp::fig12::run(preset, effort);
        println!("{f}\n");
        experiments.push(("fig12", f.to_json()));
    }
    if want("fig13") {
        let clients: &[u32] = if quick {
            &[1, 4, 16]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        let rpc = if quick { 24 } else { 64 };
        let f = exp::fig13::run(preset, clients, rpc);
        println!("{f}\n");
        experiments.push(("fig13", f.to_json()));
    }
    if want("cases") {
        let c = exp::cases::run(preset);
        println!("{c}\n");
        experiments.push(("cases", c.to_json()));
    }

    if let Some(path) = &json_path {
        let doc = Json::obj(vec![
            ("schema", "sgxs-bench-v1".into()),
            ("preset", format!("{preset:?}").into()),
            ("effort", format!("{effort:?}").into()),
            ("experiments", Json::obj(experiments)),
        ]);
        write_file(path, &doc.to_pretty());
        println!("bench json written to {path}");
    }
}
