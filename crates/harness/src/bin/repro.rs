//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro <experiment>... [--quick] [--tiny|--mini|--paper]`
//! where experiment is one of: fig1 fig7 fig8 table3 fig9 fig10 table4
//! fig11 fig12 fig13 cases all.
//!
//! `repro fuzz [--seeds N] [--seed0 N] [--max-ops N] [--no-shrink]
//! [--corpus <path>]` runs the differential fuzzing campaign (and/or
//! replays a corpus file) instead.

use sgxs_harness::exp::{self, Effort};
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

/// Parses and runs the `fuzz` subcommand; exits the process when done.
fn fuzz_main(args: &[String]) -> ! {
    let mut opts = sgxs_fuzz::FuzzOpts::default();
    let mut corpus: Option<String> = None;
    let mut it = args.iter();
    let parse_u64 = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("fuzz: {flag} needs a numeric argument");
            std::process::exit(2);
        })
    };
    let mut ran_seeds = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                opts.seeds = parse_u64("--seeds", &mut it);
                ran_seeds = true;
            }
            "--seed0" => opts.seed0 = parse_u64("--seed0", &mut it),
            "--max-ops" => opts.max_ops = parse_u64("--max-ops", &mut it) as usize,
            "--no-shrink" => opts.shrink = false,
            "--corpus" => {
                corpus = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("fuzz: --corpus needs a file path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("fuzz: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let mut failed = false;
    if let Some(path) = &corpus {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fuzz: cannot read corpus {path}: {e}");
            std::process::exit(2);
        });
        let entries = sgxs_fuzz::parse_corpus(&text).unwrap_or_else(|e| {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        });
        println!("replaying {} corpus entries from {path}", entries.len());
        for entry in &entries {
            let bad = entry.replay();
            if bad.is_empty() {
                continue;
            }
            failed = true;
            for (scheme, v) in bad {
                println!(
                    "  corpus entry '{}': {} produced {:?}",
                    entry.to_line(),
                    scheme.label(),
                    v
                );
            }
        }
        if !failed {
            println!("corpus clean: every entry matches the detection model\n");
        }
    }
    if corpus.is_none() || ran_seeds {
        let report = sgxs_fuzz::run_campaign(&opts);
        println!("{}", report.render());
        failed |= !report.disagreements.is_empty();
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz_main(&args[1..]);
    }
    let mut preset = Preset::Mini;
    let mut effort = Effort::Full;
    let mut wanted: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--tiny" => preset = Preset::Tiny,
            "--mini" => preset = Preset::Mini,
            "--paper" => preset = Preset::Paper,
            other => wanted.push(other.trim_start_matches('-').to_lowercase()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <fig1|fig7|fig8|table3|fig9|fig10|table4|fig11|fig12|fig13|cases|all> \
             [--quick] [--tiny|--mini|--paper]\n       \
             repro fuzz [--seeds N] [--seed0 N] [--max-ops N] [--no-shrink] [--corpus FILE]"
        );
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let quick = effort == Effort::Quick;

    println!(
        "SGXBounds reproduction — preset {:?}, effort {:?}\n",
        preset, effort
    );

    if want("fig1") {
        let steps = if quick { 3 } else { 5 };
        println!("{}\n", exp::fig01::run(preset, steps));
    }
    if want("fig7") {
        println!("{}\n", exp::fig07::run(preset, effort));
    }
    if want("fig8") || want("table3") {
        let sizes: &[SizeClass] = if quick {
            &[SizeClass::XS, SizeClass::M, SizeClass::XL]
        } else {
            &SizeClass::ALL
        };
        let f8 = exp::fig08::run(preset, sizes);
        if want("fig8") {
            println!("{f8}\n");
        }
        if want("table3") {
            println!("{}\n", f8.table3());
        }
    }
    if want("fig9") {
        println!("{}\n", exp::fig09::run(preset, effort));
    }
    if want("fig10") {
        println!("{}\n", exp::fig10::run(preset, effort));
    }
    if want("table4") {
        println!("{}\n", exp::tab04::run(preset));
    }
    if want("fig11") {
        println!("{}\n", exp::fig11::run(preset, effort));
    }
    if want("fig12") {
        println!("{}\n", exp::fig12::run(preset, effort));
    }
    if want("fig13") {
        let clients: &[u32] = if quick {
            &[1, 4, 16]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        let rpc = if quick { 24 } else { 64 };
        println!("{}\n", exp::fig13::run(preset, clients, rpc));
    }
    if want("cases") {
        println!("{}\n", exp::cases::run(preset));
    }
}
