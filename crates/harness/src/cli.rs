//! The `repro` command line, as a library.
//!
//! Every subcommand is a function returning `Result<i32, String>`: the
//! `Ok` value is the process exit code (0 = success, 1 = a gate or run
//! failure the caller asked us to detect), an `Err` is a usage or I/O
//! problem the binary prints to stderr before exiting 2. Nothing in this
//! module calls `std::process::exit`, so the subcommands are testable
//! in-process.
//!
//! Subcommands:
//!
//! * experiments (`repro fig7 --quick`, `repro all --json out.json`) —
//!   regenerate the paper's tables/figures, optionally writing the
//!   `sgxs-bench-v1` document;
//! * `repro profile <workload>` — run one workload with the
//!   observability layer on and print its per-check-site profile;
//! * `repro fuzz` — the differential fuzzing campaign (`--chaos` adds the
//!   environmental-chaos mode: allocator fault injection + OOM retry);
//! * `repro chaos` — the availability-under-attack campaign: seeded chaos
//!   schedules against the per-request server modules under every
//!   scheme/recovery-policy combo, with a corruption + availability gate;
//! * `repro lint` — the static OOB + temporal lint over workload modules
//!   (exits 1 on any proved-OOB/UAF/double-free access; `--ipa` runs the
//!   interprocedural tier and emits `sgxs-lint-v2`; `--incident` writes
//!   the demo detection as a `sgxs-incident-v1` artifact);
//! * `repro audit` — incident forensics: run the demo OOB under SGXBounds
//!   with the object-provenance ledger attached on *both* execution tiers,
//!   byte-compare the forensics, and emit the cross-tier-pinned
//!   `sgxs-incident-v1` artifact (plus ASCII / SVG heap-neighborhood
//!   renderings);
//! * `repro bench record` — run the full suite and append one
//!   `sgxs-history-v1` line per replicate to `results/history.jsonl`;
//! * `repro compare A B [--gate]` — statistical regression comparison of
//!   two bench documents / history replicate sets (also accepts
//!   `sgxs-metrics-v1` documents on either side);
//! * `repro render profile.json` — folded stacks, SVG treemap, and an
//!   ASCII table from a `sgxs-profile-v1` document;
//! * `repro metrics` — run a chaos campaign and emit its standalone
//!   `sgxs-metrics-v1` registry (latency histograms per scheme × policy,
//!   request-outcome counters) with a percentile table on stdout;
//! * `repro trace export` — run one traced server under a chaos schedule
//!   and export the span tree as Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`), optionally as ASCII or SVG timeline.

use crate::exp::{self, Effort, DEFAULT_SEED};
use crate::profile::{profile_one, render as render_profile, DEFAULT_RING, DEFAULT_TOP};
use crate::scheme::{run_one, run_one_perturbed, set_default_tier, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_obs::read::{metrics_from_json, parse_bench, parse_profile, METRICS_SCHEMA};
use sgxs_perf::{
    compare, flatten, flatten_metrics, parse_history, render, CompareOpts, HistoryRecord, Metric,
};
use sgxs_sim::{ExecTier, Preset};
use sgxs_workloads::SizeClass;

/// Experiment names the suite accepts (besides `all`).
pub const EXPERIMENTS: [&str; 11] = [
    "fig1", "fig7", "fig8", "table3", "fig9", "fig10", "table4", "fig11", "fig12", "fig13", "cases",
];

/// Top-level usage text.
pub const USAGE: &str =
    "usage: repro <fig1|fig7|fig8|table3|fig9|fig10|table4|fig11|fig12|fig13|cases|all> \
     [--quick] [--tiny|--mini|--paper] [--seed N] [--tier T] [--timed] [--json FILE]\n       \
     repro profile <workload> [--scheme S] [--trace FILE] [--json FILE]\n       \
     repro fuzz [--seeds N] [--seed0 N] [--max-ops N] [--no-shrink] [--corpus FILE] [--chaos] \
     [--trace-window N] [--tier T] [--budget N] [--workers N] [--journal FILE] [--resume FILE] \
     [--stop-after N] [--quarantine] [--demo-panic SEED] [--demo-budget SEED] [--json FILE]\n       \
     repro chaos [--seeds N] [--seed0 N] [--requests N] [--threshold F] [--demo-corruption] \
     [--tier T] [--workers N] [--journal FILE] [--resume FILE] [--stop-after N] [--quarantine] \
     [--demo-panic SEED] [--json FILE]\n       \
     repro lint [NAMES...] [--ipa] [--demo-oob] [--demo-uaf] [--ascii] [--seed N] \
     [--tier T] [--json FILE] [--incident FILE]\n       \
     repro audit --demo-oob [--window N] [--json FILE] [--ascii FILE] [--svg FILE]\n       \
     repro bench record [--quick] [--tiny|--mini|--paper] [--replicates N] [--seed0 N] \
     [--rev REV] [--tier T] [--out FILE]\n       \
     repro compare <BASE> <NEW> [--gate] [--top N] [--threshold F] [--noise-mult F] \
     [--rev R] [--base-rev R] [--preset P] [--json FILE]\n       \
     repro tier check [--seeds N] [--seed0 N] [--max-ops N] [--chaos-seeds N] [--perturb]\n       \
     repro render <profile.json> [--top N] [--folded FILE] [--svg FILE]\n       \
     repro metrics [--seeds N] [--seed0 N] [--requests N] [--tier T] [--workers N] \
     [--journal FILE] [--resume FILE] [--stop-after N] [--quarantine] [--demo-panic SEED] \
     [--json FILE]\n       \
     repro trace export [--app A] [--scheme S] [--policy P] [--seed N] [--requests N] \
     [--tier T] [--out FILE] [--ascii FILE] [--svg FILE]\n\
     (--tier: reference|compiled — the compiled tier is pinned bit-identical \
     and only changes host wall time)";

/// Minimal argument cursor shared by every subcommand: uniform
/// "`<cmd>: <flag> needs ...`" errors instead of per-site `unwrap_or_else`
/// + `exit` blocks.
pub struct Args<'a> {
    cmd: &'static str,
    it: std::slice::Iter<'a, String>,
}

impl<'a> Args<'a> {
    /// Wraps `args` for the subcommand named `cmd`.
    pub fn new(cmd: &'static str, args: &'a [String]) -> Args<'a> {
        Args {
            cmd,
            it: args.iter(),
        }
    }

    /// The next raw argument, if any.
    pub fn next_arg(&mut self) -> Option<&'a str> {
        self.it.next().map(String::as_str)
    }

    /// The value following `flag`, or a uniform error.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.it
            .next()
            .cloned()
            .ok_or_else(|| format!("{}: {flag} needs an argument", self.cmd))
    }

    /// The parsed value following `flag`, or a uniform error.
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| format!("{}: {flag} needs a valid value, got '{v}'", self.cmd))
    }

    /// An error message prefixed with this subcommand's name.
    pub fn fail(&self, msg: impl std::fmt::Display) -> String {
        format!("{}: {msg}", self.cmd)
    }
}

/// Exit code for a campaign ended early by a graceful stop: distinct
/// from both success (0) and a gate failure (1) so wrappers can tell a
/// truncated run from a failed one.
pub const EXIT_STOPPED: i32 = 3;

/// Supervisor flags shared by the campaign subcommands (`fuzz`, `chaos`,
/// `metrics`): worker count, journal/resume, graceful-stop demo hook, and
/// the quarantine-tolerance policy.
struct SupFlags {
    sup: sgxs_super::SuperOpts,
    /// `--quarantine`: tolerate quarantined seeds (report them, exit 0).
    /// Without it, any quarantined seed fails the run.
    quarantine_ok: bool,
}

impl SupFlags {
    fn new() -> SupFlags {
        SupFlags {
            sup: sgxs_super::SuperOpts {
                // The CLI renders quarantined seeds in the report; a raw
                // backtrace per isolated panic would only drown it.
                quiet_panics: true,
                ..sgxs_super::SuperOpts::default()
            },
            quarantine_ok: false,
        }
    }

    /// Consumes one supervisor flag; `Ok(false)` means `a` is not ours.
    fn flag(&mut self, a: &str, it: &mut Args<'_>) -> Result<bool, String> {
        match a {
            "--workers" => self.sup.workers = it.parse("--workers")?,
            "--journal" => self.sup.journal = Some(it.value("--journal")?),
            "--resume" => {
                self.sup.journal = Some(it.value("--resume")?);
                self.sup.resume = true;
            }
            "--stop-after" => self.sup.stop_after = Some(it.parse("--stop-after")?),
            "--quarantine" => self.quarantine_ok = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Folds campaign provenance into an exit code: quarantined seeds
    /// fail the run unless `--quarantine` tolerates them, and a graceful
    /// stop exits [`EXIT_STOPPED`] so it is never mistaken for a pass.
    fn exit(&self, cmd: &str, quarantined: usize, stopped: bool, failed: bool) -> i32 {
        let mut failed = failed;
        if quarantined > 0 && !self.quarantine_ok {
            eprintln!("{cmd}: {quarantined} seed(s) quarantined (pass --quarantine to tolerate)");
            failed = true;
        }
        if failed {
            1
        } else if stopped {
            EXIT_STOPPED
        } else {
            0
        }
    }
}

/// Parses the value of a `--tier` flag.
pub(crate) fn tier_value(it: &mut Args<'_>) -> Result<ExecTier, String> {
    let v = it.value("--tier")?;
    ExecTier::parse(&v).ok_or_else(|| it.fail(format!("unknown tier '{v}' (reference|compiled)")))
}

/// Maps a `--tiny|--mini|--paper` flag to its preset.
fn preset_flag(arg: &str) -> Option<Preset> {
    match arg {
        "--tiny" => Some(Preset::Tiny),
        "--mini" => Some(Preset::Mini),
        "--paper" => Some(Preset::Paper),
        _ => None,
    }
}

/// Writes `text` to `path`, creating parent directories.
pub(crate) fn write_file(path: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Top-level dispatch: the whole `repro` command line minus process exit.
pub fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("chaos") => run_chaos(&args[1..]),
        Some("lint") => crate::lint::run_lint(&args[1..]),
        Some("audit") => crate::audit::run_audit(&args[1..]),
        Some("profile") => run_profile(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("tier") => run_tier(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("render") => run_render(&args[1..]),
        Some("metrics") => run_metrics(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        _ => run_experiments(args),
    }
}

/// Runs the selected experiments and returns the full `sgxs-bench-v1`
/// document. `print` controls the human tables; the JSON is always built.
pub fn run_suite(
    preset: Preset,
    effort: Effort,
    wanted: &[String],
    seed: u64,
    print: bool,
) -> Result<Json, String> {
    for w in wanted {
        if w != "all" && !EXPERIMENTS.contains(&w.as_str()) {
            return Err(format!("unknown experiment '{w}'\n{USAGE}"));
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let quick = effort == Effort::Quick;
    let mut experiments: Vec<(&str, Json)> = Vec::new();

    if print {
        println!(
            "SGXBounds reproduction — preset {:?}, effort {:?}\n",
            preset, effort
        );
    }
    macro_rules! say {
        ($($t:tt)*) => {
            if print {
                println!($($t)*);
            }
        };
    }

    if want("fig1") {
        let steps = if quick { 3 } else { 5 };
        let f = exp::fig01::run(preset, steps, seed);
        say!("{f}\n");
        experiments.push(("fig1", f.to_json()));
    }
    if want("fig7") {
        let f = exp::fig07::run(preset, effort, seed);
        say!("{f}\n");
        experiments.push(("fig7", f.to_json()));
    }
    if want("fig8") || want("table3") {
        let sizes: &[SizeClass] = if quick {
            &[SizeClass::XS, SizeClass::M, SizeClass::XL]
        } else {
            &SizeClass::ALL
        };
        let f8 = exp::fig08::run(preset, sizes, seed);
        if want("fig8") {
            say!("{f8}\n");
        }
        if want("table3") {
            say!("{}\n", f8.table3());
        }
        experiments.push(("fig8", f8.to_json()));
    }
    if want("fig9") {
        let f = exp::fig09::run(preset, effort, seed);
        say!("{f}\n");
        experiments.push(("fig9", f.to_json()));
    }
    if want("fig10") {
        let f = exp::fig10::run(preset, effort, seed);
        say!("{f}\n");
        experiments.push(("fig10", f.to_json()));
    }
    if want("table4") {
        let t = exp::tab04::run(preset, seed);
        say!("{t}\n");
        experiments.push(("table4", t.to_json()));
    }
    if want("fig11") {
        let f = exp::fig11::run(preset, effort, seed);
        say!("{f}\n");
        experiments.push(("fig11", f.to_json()));
    }
    if want("fig12") {
        let f = exp::fig12::run(preset, effort, seed);
        say!("{f}\n");
        experiments.push(("fig12", f.to_json()));
    }
    if want("fig13") {
        let clients: &[u32] = if quick {
            &[1, 4, 16]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        let rpc = if quick { 24 } else { 64 };
        let f = exp::fig13::run(preset, clients, rpc, seed);
        say!("{f}\n");
        experiments.push(("fig13", f.to_json()));
    }
    if want("cases") {
        let c = exp::cases::run(preset, seed);
        say!("{c}\n");
        experiments.push(("cases", c.to_json()));
    }

    Ok(Json::obj(vec![
        ("schema", "sgxs-bench-v1".into()),
        ("preset", format!("{preset:?}").into()),
        ("effort", format!("{effort:?}").into()),
        ("experiments", Json::obj(experiments)),
    ]))
}

/// The experiment suite (`repro fig7 --quick`, `repro all --json f`).
pub fn run_experiments(args: &[String]) -> Result<i32, String> {
    let mut preset = Preset::Mini;
    let mut effort = Effort::Full;
    let mut seed = DEFAULT_SEED;
    let mut tier = ExecTier::default();
    let mut timed = false;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = Args::new("repro", args);
    while let Some(a) = it.next_arg() {
        if let Some(p) = preset_flag(a) {
            preset = p;
            continue;
        }
        match a {
            "--quick" => effort = Effort::Quick,
            "--seed" => seed = it.parse("--seed")?,
            "--tier" => tier = tier_value(&mut it)?,
            "--timed" => timed = true,
            "--json" => json_path = Some(it.value("--json")?),
            other => wanted.push(other.trim_start_matches('-').to_lowercase()),
        }
    }
    if wanted.is_empty() {
        return Err(USAGE.to_owned());
    }
    set_default_tier(tier);
    let t0 = std::time::Instant::now();
    let mut doc = run_suite(preset, effort, &wanted, seed, true)?;
    let wall_ms = t0.elapsed().as_millis() as u64;
    if timed {
        // Host-side observation only: it lives outside `experiments`, so
        // the flattened metric set (and with it `repro compare`) never
        // sees it, and the default (untimed) document stays byte-identical
        // across tiers.
        attach_host_block(&mut doc, tier, wall_ms);
        println!("host wall time: {wall_ms} ms on the {} tier", tier.label());
    }
    if let Some(path) = &json_path {
        write_file(path, &doc.to_pretty()).map_err(|e| format!("repro: {e}"))?;
        println!("bench json written to {path}");
    }
    Ok(0)
}

/// Appends the optional `sgxs-bench-v1` host block (`{"host": {"tier",
/// "wall_ms"}}`) to a bench document. The block records host-machine
/// facts, not simulated results; `flatten` walks only `experiments`, so
/// it can never gate a comparison.
fn attach_host_block(doc: &mut Json, tier: ExecTier, wall_ms: u64) {
    let host = Json::obj(vec![
        ("tier", tier.label().into()),
        ("wall_ms", wall_ms.into()),
    ]);
    if let Json::Obj(fields) = doc {
        fields.push(("host".to_owned(), host));
    }
}

/// `repro profile <workload>`: one observed run, rendered.
pub fn run_profile(args: &[String]) -> Result<i32, String> {
    let mut workload: Option<String> = None;
    let mut scheme = Scheme::SgxBounds;
    let mut preset = Preset::Tiny;
    let mut size = SizeClass::XS;
    let mut seed = DEFAULT_SEED;
    let mut trace: Option<String> = None;
    let mut json: Option<String> = None;
    let mut top = DEFAULT_TOP;
    let mut ring = DEFAULT_RING;
    let mut it = Args::new("profile", args);
    while let Some(a) = it.next_arg() {
        if let Some(p) = preset_flag(a) {
            preset = p;
            continue;
        }
        match a {
            "--scheme" => {
                scheme = match it.value("--scheme")?.as_str() {
                    "sgx" | "baseline" => Scheme::Baseline,
                    "sgxbounds" => Scheme::SgxBounds,
                    "asan" => Scheme::Asan,
                    "mpx" => Scheme::Mpx,
                    other => {
                        return Err(
                            it.fail(format!("unknown scheme '{other}' (sgx|sgxbounds|asan|mpx)"))
                        )
                    }
                }
            }
            "--trace" => trace = Some(it.value("--trace")?),
            "--json" => json = Some(it.value("--json")?),
            "--top" => top = it.parse("--top")?,
            "--ring" => ring = it.parse("--ring")?,
            "--seed" => seed = it.parse("--seed")?,
            "--quick" => size = SizeClass::XS,
            "--full" => size = SizeClass::L,
            other if !other.starts_with('-') && workload.is_none() => {
                workload = Some(other.to_owned())
            }
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    let Some(name) = workload else {
        return Err(it.fail(format!("a workload name is required\n{USAGE}")));
    };
    let Some(w) = sgxs_workloads::by_name(&name) else {
        return Err(it.fail(format!("unknown workload '{name}'")));
    };
    let mut rc = RunConfig::new(preset);
    rc.params.size = size;
    rc.params.seed = seed;
    let pr = profile_one(w.as_ref(), scheme, &rc, ring, top);
    print!("{}", render_profile(&pr.profile));
    if let Some(path) = &trace {
        write_file(path, &pr.recorder.to_jsonl()).map_err(|e| it.fail(e))?;
        println!(
            "trace: {} events written to {path} ({} dropped from the ring)",
            pr.recorder.ring_len(),
            pr.recorder.dropped()
        );
    }
    if let Some(path) = &json {
        write_file(path, &pr.profile.to_json().to_pretty()).map_err(|e| it.fail(e))?;
        println!("profile json written to {path}");
    }
    // A hardened run that never executed a check means the site plumbing is
    // broken — fail loudly so CI catches it.
    let hardened = !matches!(scheme, Scheme::Baseline);
    if hardened && pr.profile.top_sites.is_empty() {
        eprintln!("profile: no check site fired under {}", scheme.label());
        return Ok(1);
    }
    Ok(if pr.measured.ok() { 0 } else { 1 })
}

/// `repro fuzz`: differential fuzzing campaign and/or corpus replay.
pub fn run_fuzz(args: &[String]) -> Result<i32, String> {
    let mut opts = sgxs_fuzz::FuzzOpts::default();
    let mut corpus: Option<String> = None;
    let mut ran_seeds = false;
    let mut chaos = false;
    let mut json: Option<String> = None;
    let mut sup = SupFlags::new();
    let mut it = Args::new("fuzz", args);
    while let Some(a) = it.next_arg() {
        if sup.flag(a, &mut it)? {
            continue;
        }
        match a {
            "--seeds" => {
                opts.seeds = it.parse("--seeds")?;
                ran_seeds = true;
            }
            "--seed0" => opts.seed0 = it.parse("--seed0")?,
            "--max-ops" => opts.max_ops = it.parse::<u64>("--max-ops")? as usize,
            "--no-shrink" => opts.shrink = false,
            "--corpus" => corpus = Some(it.value("--corpus")?),
            "--chaos" => chaos = true,
            "--trace-window" => opts.trace_window = it.parse("--trace-window")?,
            "--tier" => opts.tier = tier_value(&mut it)?,
            "--budget" => opts.budget = it.parse("--budget")?,
            "--demo-panic" => opts.demo_panic = Some(it.parse("--demo-panic")?),
            "--demo-budget" => opts.demo_budget = Some(it.parse("--demo-budget")?),
            "--json" => json = Some(it.value("--json")?),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if opts.budget == 0 {
        return Err(it.fail("--budget must be at least 1"));
    }
    if opts.trace_window == 0 {
        return Err(it.fail("--trace-window must be at least 1"));
    }
    let mut failed = false;
    if let Some(path) = &corpus {
        let text = std::fs::read_to_string(path)
            .map_err(|e| it.fail(format!("cannot read corpus {path}: {e}")))?;
        let entries = sgxs_fuzz::parse_corpus(&text).map_err(|e| it.fail(e))?;
        println!("replaying {} corpus entries from {path}", entries.len());
        for entry in &entries {
            let bad = entry.replay_tier(opts.tier);
            if bad.is_empty() {
                continue;
            }
            failed = true;
            for (scheme, v) in bad {
                println!(
                    "  corpus entry '{}': {} produced {:?}",
                    entry.to_line(),
                    scheme.label(),
                    v
                );
            }
        }
        if !failed {
            println!("corpus clean: every entry matches the detection model\n");
        }
    }
    let mut quarantined = 0;
    let mut stopped = false;
    if chaos {
        let out =
            sgxs_fuzz::run_chaos_fuzz_supervised(&opts, &sup.sup, &sgxs_super::StopFlag::new())
                .map_err(|e| it.fail(e))?;
        println!("{}", out.report.render());
        quarantined = out.report.quarantine.len();
        stopped = out.stopped;
        failed |= !out.report.passed();
    } else if corpus.is_none() || ran_seeds {
        let out = sgxs_fuzz::run_campaign_supervised(&opts, &sup.sup, &sgxs_super::StopFlag::new())
            .map_err(|e| it.fail(e))?;
        println!("{}", out.report.render());
        if let Some(path) = &json {
            // The sgxs-fuzz-v1 document embeds one sgxs-incident-v1 record
            // per disagreement (empty array on a clean campaign).
            write_file(path, &out.report.to_json().to_pretty()).map_err(|e| it.fail(e))?;
            println!("fuzz json written to {path}");
        }
        quarantined = out.report.quarantine.len();
        stopped = out.stopped;
        failed |= !out.report.disagreements.is_empty();
    }
    Ok(sup.exit("fuzz", quarantined, stopped, failed))
}

/// `repro chaos`: the availability-under-attack campaign. Exits 1 when
/// any gated (protected) scheme shows cross-object corruption or the
/// boundless combo's availability drops below the threshold.
pub fn run_chaos(args: &[String]) -> Result<i32, String> {
    let mut opts = sgxs_resil::CampaignOpts::default();
    let mut json: Option<String> = None;
    let mut sup = SupFlags::new();
    let mut it = Args::new("chaos", args);
    while let Some(a) = it.next_arg() {
        if sup.flag(a, &mut it)? {
            continue;
        }
        match a {
            "--seeds" => opts.seeds = it.parse("--seeds")?,
            "--seed0" => opts.seed0 = it.parse("--seed0")?,
            "--requests" => opts.requests = it.parse("--requests")?,
            "--threshold" => opts.threshold = it.parse("--threshold")?,
            "--demo-corruption" => opts.demo_corruption = true,
            "--demo-panic" => opts.demo_panic = Some(it.parse("--demo-panic")?),
            "--tier" => opts.tier = tier_value(&mut it)?,
            "--json" => json = Some(it.value("--json")?),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if opts.seeds == 0 {
        return Err(it.fail("--seeds must be at least 1"));
    }
    let out =
        sgxs_resil::run_chaos_campaign_supervised(&opts, &sup.sup, &sgxs_super::StopFlag::new())
            .map_err(|e| it.fail(e))?;
    let report = &out.report;
    print!("{}", report.render());
    if let Some(path) = &json {
        write_file(path, &report.to_json().to_pretty()).map_err(|e| it.fail(e))?;
        println!("chaos json written to {path}");
    }
    Ok(sup.exit(
        "chaos",
        report.quarantine.len(),
        out.stopped,
        report.gate_failed(),
    ))
}

/// The short git revision of the working tree, or "unknown" outside a
/// repository.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=7", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// `repro bench record`: run the full suite and append one
/// `sgxs-history-v1` line per replicate. Replicate `i` runs with seed
/// `seed0 + i`, so same-rev replicates expose the input-noise floor.
pub fn run_bench(args: &[String]) -> Result<i32, String> {
    let mut it = Args::new("bench", args);
    match it.next_arg() {
        Some("record") => {}
        _ => return Err(it.fail(format!("expected 'bench record ...'\n{USAGE}"))),
    }
    let mut preset = Preset::Mini;
    let mut effort = Effort::Full;
    let mut out = "results/history.jsonl".to_owned();
    let mut replicates: u64 = 1;
    let mut seed0 = DEFAULT_SEED;
    let mut rev: Option<String> = None;
    let mut tier = ExecTier::default();
    while let Some(a) = it.next_arg() {
        if let Some(p) = preset_flag(a) {
            preset = p;
            continue;
        }
        match a {
            "--quick" => effort = Effort::Quick,
            "--out" => out = it.value("--out")?,
            "--replicates" => replicates = it.parse("--replicates")?,
            "--seed0" => seed0 = it.parse("--seed0")?,
            "--rev" => rev = Some(it.value("--rev")?),
            "--tier" => tier = tier_value(&mut it)?,
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if replicates == 0 {
        return Err(it.fail("--replicates must be at least 1"));
    }
    set_default_tier(tier);
    let rev = rev.unwrap_or_else(git_rev);
    let mut lines = String::new();
    for i in 0..replicates {
        let seed = seed0 + i;
        println!(
            "recording replicate {}/{replicates}: rev {rev}, preset {preset:?}, \
             effort {effort:?}, seed {seed}, tier {}",
            i + 1,
            tier.label()
        );
        let t0 = std::time::Instant::now();
        let mut doc =
            run_suite(preset, effort, &["all".to_owned()], seed, false).map_err(|e| it.fail(e))?;
        let wall_ms = t0.elapsed().as_millis() as u64;
        // Recorded replicates always carry the host block: the wall-clock
        // win of the compiled tier becomes a committed artifact in
        // results/history.jsonl. Simulated metrics (everything under
        // `experiments`) stay tier-invariant, so `repro compare` gating is
        // unaffected (see results/README.md).
        attach_host_block(&mut doc, tier, wall_ms);
        println!(
            "  suite wall time: {wall_ms} ms on the {} tier",
            tier.label()
        );
        let record = HistoryRecord::new(&rev, seed, doc).map_err(|e| it.fail(e))?;
        lines.push_str(&record.to_line());
        lines.push('\n');
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .map_err(|e| it.fail(format!("cannot open {out}: {e}")))?;
    f.write_all(lines.as_bytes())
        .map_err(|e| it.fail(format!("cannot append to {out}: {e}")))?;
    println!(
        "appended {replicates} record(s) to {out} (rev {rev}, seeds {seed0}..={})",
        seed0 + replicates - 1
    );
    Ok(0)
}

/// `repro tier check`: the tier-equivalence oracle as a command. Runs the
/// fuzz corpus (safe + injected programs, every scheme), a slice of the
/// chaos-fuzz mode, and a workload sample on both tiers and diffs every
/// observable — digest/trap, progress beacon, violation and retry
/// counters, simulated cycles, and the full named stats block. Exits 1 on
/// any divergence. `--perturb` is the negative control: it enables the
/// compiled engine's deliberate single-cycle accounting fault and requires
/// the oracle to *catch* it (exit 1 if the perturbed run slips through).
pub fn run_tier(args: &[String]) -> Result<i32, String> {
    use sgxs_fuzz::gen::generate;
    use sgxs_fuzz::inject::{inject, ALL_KINDS};
    use sgxs_fuzz::runner::{exec_chaos_tier, exec_tier, Exec, ALL_SCHEMES};

    let mut it = Args::new("tier", args);
    match it.next_arg() {
        Some("check") => {}
        _ => return Err(it.fail(format!("expected 'tier check ...'\n{USAGE}"))),
    }
    let mut seeds: u64 = 40;
    let mut seed0: u64 = 0;
    let mut max_ops: usize = 16;
    let mut chaos_seeds: u64 = 8;
    let mut perturb = false;
    while let Some(a) = it.next_arg() {
        match a {
            "--seeds" => seeds = it.parse("--seeds")?,
            "--seed0" => seed0 = it.parse("--seed0")?,
            "--max-ops" => max_ops = it.parse::<u64>("--max-ops")? as usize,
            "--chaos-seeds" => chaos_seeds = it.parse("--chaos-seeds")?,
            "--perturb" => perturb = true,
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }

    let mut divergences = 0u64;
    let mut runs = 0u64;
    let mut diverged = |what: String| {
        divergences += 1;
        println!("DIVERGENCE {what}");
    };
    // Exec has no PartialEq on purpose (Trap payloads carry strings); the
    // Debug rendering covers every field, so equality of renderings is
    // equality of observables.
    let same = |a: &Exec, b: &Exec| format!("{a:?}") == format!("{b:?}");

    // 1. Fuzz corpus: safe program + one injected fault per seed, every
    //    scheme, both tiers.
    for seed in seed0..seed0 + seeds {
        let prog = generate(seed, max_ops);
        let kind = ALL_KINDS[(seed % ALL_KINDS.len() as u64) as usize];
        let (fprog, _fault) = inject(&prog, kind, seed);
        for scheme in ALL_SCHEMES {
            for (tag, p) in [("safe", &prog), ("faulty", &fprog)] {
                let r = exec_tier(p, scheme, ExecTier::Reference);
                let c = exec_tier(p, scheme, ExecTier::Compiled);
                runs += 2;
                if !same(&r, &c) {
                    diverged(format!(
                        "corpus seed {seed} {tag} under {}: reference {r:?} vs compiled {c:?}",
                        scheme.label()
                    ));
                }
            }
        }
    }
    println!(
        "corpus: {seeds} seeds x {} schemes x 2 programs checked",
        ALL_SCHEMES.len()
    );

    // 2. Chaos slice: allocator fault injection + OOM retry, both tiers
    //    (retry accounting must be tier-invariant too).
    for seed in seed0..seed0 + chaos_seeds {
        let prog = generate(seed, max_ops);
        let chaos_seed = seed.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(1);
        for scheme in ALL_SCHEMES {
            let r = exec_chaos_tier(&prog, scheme, chaos_seed, ExecTier::Reference);
            let c = exec_chaos_tier(&prog, scheme, chaos_seed, ExecTier::Compiled);
            runs += 2;
            if !same(&r, &c) {
                diverged(format!(
                    "chaos seed {seed} under {}: reference {r:?} vs compiled {c:?}",
                    scheme.label()
                ));
            }
        }
    }
    println!(
        "chaos: {chaos_seeds} seeds x {} schemes checked",
        ALL_SCHEMES.len()
    );

    // 3. Workload sample: full Measured diff (result, cycles, peaks, stats)
    //    for a representative workload x scheme grid.
    let mut rc = RunConfig::new(Preset::Tiny);
    rc.params.size = SizeClass::XS;
    rc.params.threads = 2;
    for name in ["histogram", "kmeans", "string_match"] {
        let w = sgxs_workloads::by_name(name).expect("workload exists");
        for scheme in [
            Scheme::Baseline,
            Scheme::SgxBounds,
            Scheme::Asan,
            Scheme::Mpx,
        ] {
            let mut rr = rc;
            rr.tier = ExecTier::Reference;
            let r = run_one(w.as_ref(), scheme, &rr);
            let mut cc = rc;
            cc.tier = ExecTier::Compiled;
            let c = run_one(w.as_ref(), scheme, &cc);
            runs += 2;
            if format!("{r:?}") != format!("{c:?}") {
                diverged(format!(
                    "workload {name} under {}: reference {r:?} vs compiled {c:?}",
                    scheme.label()
                ));
            }
        }
    }
    println!("workloads: 3 workloads x 4 schemes checked");

    // 4. Negative control: the deliberately perturbed engine must diverge,
    //    or the oracle is vacuous.
    if perturb {
        let w = sgxs_workloads::by_name("histogram").expect("workload exists");
        let mut rr = rc;
        rr.tier = ExecTier::Reference;
        let r = run_one(w.as_ref(), Scheme::SgxBounds, &rr);
        let p = run_one_perturbed(w.as_ref(), Scheme::SgxBounds, &rc);
        runs += 2;
        if format!("{r:?}") == format!("{p:?}") {
            diverged(
                "negative control failed: the perturbed compiled engine was \
                 indistinguishable from the reference — the oracle cannot fail"
                    .to_owned(),
            );
        } else {
            println!("perturb: negative control diverged as required (gate can fail)");
        }
    }

    if divergences == 0 {
        println!("tier check passed: {runs} runs, tiers bit-identical");
        Ok(0)
    } else {
        println!("tier check FAILED: {divergences} divergence(s) over {runs} runs");
        Ok(1)
    }
}

/// Loads one comparison side: a `sgxs-bench-v1` or `sgxs-metrics-v1`
/// file is a single replicate; a `sgxs-history-v1` JSONL file
/// contributes every record of the chosen (rev, preset, effort) — by
/// default the newest record's, i.e. the last matching line.
fn load_side(
    cmd: &Args<'_>,
    path: &str,
    rev: Option<&str>,
    preset: Option<&str>,
) -> Result<(String, Vec<Vec<Metric>>), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| cmd.fail(format!("cannot read {path}: {e}")))?;
    // A history file is JSONL: its first line is a complete
    // `sgxs-history-v1` object. A bench document is pretty-printed, so
    // its first line alone never parses.
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let is_history = Json::parse(first)
        .ok()
        .and_then(|v| {
            v.get("schema")
                .and_then(Json::as_str)
                .map(|s| s == sgxs_perf::HISTORY_SCHEMA)
        })
        .unwrap_or(false);
    if !is_history {
        let v = Json::parse(&text).map_err(|e| cmd.fail(format!("{path}: {e}")))?;
        if v.get("schema").and_then(Json::as_str) == Some(METRICS_SCHEMA) {
            let doc = metrics_from_json(&v).map_err(|e| cmd.fail(format!("{path}: {e}")))?;
            let label = format!("{path} (metrics, n=1)");
            return Ok((label, vec![flatten_metrics(&doc)]));
        }
        let doc = parse_bench(&text).map_err(|e| cmd.fail(format!("{path}: {e}")))?;
        if let Some(p) = preset {
            if doc.preset != p {
                return Err(cmd.fail(format!("{path} is preset {}, wanted {p}", doc.preset)));
            }
        }
        let label = format!("{path} ({}/{}, n=1)", doc.preset, doc.effort);
        return Ok((label, vec![flatten(&doc)]));
    }
    let recs = parse_history(&text).map_err(|e| cmd.fail(format!("{path}: {e}")))?;
    let pick = recs
        .iter()
        .rev()
        .find(|r| rev.is_none_or(|v| r.rev == v) && preset.is_none_or(|p| r.preset == p))
        .ok_or_else(|| cmd.fail(format!("{path}: no record matches the rev/preset filter")))?;
    let (rev, preset, effort) = (pick.rev.clone(), pick.preset.clone(), pick.effort.clone());
    let sel: Vec<Vec<Metric>> = recs
        .iter()
        .filter(|r| r.rev == rev && r.preset == preset && r.effort == effort)
        .map(HistoryRecord::metrics)
        .collect();
    let label = format!("{path}@{rev} ({preset}/{effort}, n={})", sel.len());
    Ok((label, sel))
}

/// `repro compare BASE NEW`: statistical comparison with an optional CI
/// gate (`--gate` turns confirmed regressions into exit code 1).
pub fn run_compare(args: &[String]) -> Result<i32, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut gate = false;
    let mut top = 20usize;
    let mut opts = CompareOpts::default();
    let mut json: Option<String> = None;
    let mut base_rev: Option<String> = None;
    let mut new_rev: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut it = Args::new("compare", args);
    while let Some(a) = it.next_arg() {
        match a {
            "--gate" => gate = true,
            "--top" => top = it.parse("--top")?,
            "--threshold" => opts.rel_threshold = it.parse("--threshold")?,
            "--noise-mult" => opts.noise_mult = it.parse("--noise-mult")?,
            "--base-rev" => base_rev = Some(it.value("--base-rev")?),
            "--rev" | "--new-rev" => new_rev = Some(it.value(a)?),
            "--preset" => preset = Some(it.value("--preset")?),
            "--json" => json = Some(it.value("--json")?),
            other if !other.starts_with('-') => paths.push(other.to_owned()),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return Err(it.fail(format!(
            "expected exactly two inputs (got {})\n{USAGE}",
            paths.len()
        )));
    };
    let (base_label, base) = load_side(&it, base_path, base_rev.as_deref(), preset.as_deref())?;
    let (new_label, new) = load_side(&it, new_path, new_rev.as_deref(), preset.as_deref())?;
    let report = compare(&base_label, &base, &new_label, &new, opts);
    print!("{}", report.render(top));
    if let Some(path) = &json {
        write_file(path, &report.to_json().to_pretty()).map_err(|e| it.fail(e))?;
        println!("compare json written to {path}");
    }
    Ok(if gate && report.gate_failed() { 1 } else { 0 })
}

/// `repro render <profile.json>`: ASCII table to stdout, plus optional
/// folded-stack and SVG files.
pub fn run_render(args: &[String]) -> Result<i32, String> {
    let mut input: Option<String> = None;
    let mut top = 10usize;
    let mut folded: Option<String> = None;
    let mut svg: Option<String> = None;
    let mut it = Args::new("render", args);
    while let Some(a) = it.next_arg() {
        match a {
            "--top" => top = it.parse("--top")?,
            "--folded" => folded = Some(it.value("--folded")?),
            "--svg" => svg = Some(it.value("--svg")?),
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_owned()),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    let Some(path) = input else {
        return Err(it.fail(format!("a profile.json input is required\n{USAGE}")));
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| it.fail(format!("cannot read {path}: {e}")))?;
    let doc = parse_profile(&text).map_err(|e| it.fail(format!("{path}: {e}")))?;
    print!("{}", render::ascii_table(&doc, top));
    if let Some(out) = &folded {
        write_file(out, &render::folded(&doc)).map_err(|e| it.fail(e))?;
        println!("folded stacks written to {out}");
    }
    if let Some(out) = &svg {
        write_file(out, &render::svg(&doc)).map_err(|e| it.fail(e))?;
        println!("svg written to {out}");
    }
    Ok(0)
}

/// `repro metrics`: run a chaos campaign and emit its standalone
/// `sgxs-metrics-v1` registry — the same document `repro chaos --json`
/// embeds as its `latency` block, suitable for `repro compare` gating.
/// The printed table comes from a round trip through the validating
/// reader, so the command fails loudly if the writer ever drifts from the
/// schema.
pub fn run_metrics(args: &[String]) -> Result<i32, String> {
    let mut opts = sgxs_resil::CampaignOpts::default();
    let mut json: Option<String> = None;
    let mut sup = SupFlags::new();
    let mut it = Args::new("metrics", args);
    while let Some(a) = it.next_arg() {
        if sup.flag(a, &mut it)? {
            continue;
        }
        match a {
            "--seeds" => opts.seeds = it.parse("--seeds")?,
            "--seed0" => opts.seed0 = it.parse("--seed0")?,
            "--requests" => opts.requests = it.parse("--requests")?,
            "--demo-panic" => opts.demo_panic = Some(it.parse("--demo-panic")?),
            "--tier" => opts.tier = tier_value(&mut it)?,
            "--json" => json = Some(it.value("--json")?),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if opts.seeds == 0 {
        return Err(it.fail("--seeds must be at least 1"));
    }
    let out =
        sgxs_resil::run_chaos_campaign_supervised(&opts, &sup.sup, &sgxs_super::StopFlag::new())
            .map_err(|e| it.fail(e))?;
    let report = &out.report;
    let text = report.metrics().to_json().to_pretty();
    let doc = sgxs_obs::read::parse_metrics(&text)
        .map_err(|e| it.fail(format!("emitted document fails its own reader: {e}")))?;
    print!("{}", sgxs_perf::latency_table(&doc));
    if let Some(path) = &json {
        write_file(path, &text).map_err(|e| it.fail(e))?;
        println!("metrics json written to {path}");
    }
    Ok(sup.exit("metrics", report.quarantine.len(), out.stopped, false))
}

/// `repro trace export`: run one traced server under its chaos schedule
/// and export the span tree (`serve` → `request` → `check`) as Chrome
/// trace-event JSON. Timestamps are simulated instruction counts, so the
/// export is byte-identical across hosts, tiers, and runs.
pub fn run_trace(args: &[String]) -> Result<i32, String> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut it = Args::new("trace", args);
    match it.next_arg() {
        Some("export") => {}
        _ => return Err(it.fail(format!("expected 'trace export ...'\n{USAGE}"))),
    }
    let mut app = sgxs_resil::ServerApp::Memcached;
    let mut scheme = sgxs_resil::RScheme::SgxBounds;
    let mut policy = "graceful".to_owned();
    let mut seed = 1u64;
    let mut requests = 16u32;
    let mut tier = ExecTier::default();
    let mut out = "results/trace.json".to_owned();
    let mut ascii: Option<String> = None;
    let mut svg: Option<String> = None;
    while let Some(a) = it.next_arg() {
        match a {
            "--app" => {
                let v = it.value("--app")?;
                app = sgxs_resil::ServerApp::ALL
                    .into_iter()
                    .find(|s| s.label() == v)
                    .ok_or_else(|| {
                        it.fail(format!("unknown app '{v}' (nginx|apache|memcached)"))
                    })?;
            }
            "--scheme" => {
                let v = it.value("--scheme")?;
                scheme = match v.as_str() {
                    "native" => sgxs_resil::RScheme::Native,
                    "sgxbounds" => sgxs_resil::RScheme::SgxBounds,
                    "sb-boundless" => sgxs_resil::RScheme::Boundless,
                    _ => {
                        return Err(it.fail(format!(
                            "unknown scheme '{v}' (native|sgxbounds|sb-boundless)"
                        )))
                    }
                };
            }
            "--policy" => policy = it.value("--policy")?,
            "--seed" => seed = it.parse("--seed")?,
            "--requests" => requests = it.parse("--requests")?,
            "--tier" => tier = tier_value(&mut it)?,
            "--out" => out = it.value("--out")?,
            "--ascii" => ascii = Some(it.value("--ascii")?),
            "--svg" => svg = Some(it.value("--svg")?),
            other => return Err(it.fail(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    let policies = match policy.as_str() {
        "abort" => sgxs_resil::abort_policy(),
        "graceful" => sgxs_resil::graceful_policy(),
        "retry" => sgxs_resil::retry_policy(),
        "boundless" => sgxs_resil::boundless_policy(),
        _ => {
            return Err(it.fail(format!(
                "unknown policy '{policy}' (abort|graceful|retry|boundless)"
            )))
        }
    };
    let schedule = sgxs_resil::ChaosSchedule::generate(seed, requests);
    let collector = Rc::new(RefCell::new(sgxs_metrics::SpanCollector::default()));
    let rep = sgxs_resil::serve_traced(app, scheme, &policies, &schedule, tier, collector.clone());
    let c = collector.borrow();
    println!(
        "{} / {} / {policy} seed {seed}: {} spans ({} dropped), \
         served {} of {} requests",
        app.label(),
        scheme.label(),
        c.nodes().len(),
        c.dropped(),
        rep.served,
        rep.total
    );
    write_file(&out, &sgxs_metrics::chrome_trace(&c).to_pretty()).map_err(|e| it.fail(e))?;
    println!("chrome trace written to {out} (open in Perfetto or chrome://tracing)");
    if let Some(path) = &ascii {
        write_file(path, &sgxs_perf::span_ascii(&c)).map_err(|e| it.fail(e))?;
        println!("ascii span tree written to {path}");
    }
    if let Some(path) = &svg {
        write_file(path, &sgxs_perf::span_svg(&c)).map_err(|e| it.fail(e))?;
        println!("span timeline svg written to {path}");
    }
    Ok(0)
}
