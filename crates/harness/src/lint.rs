//! `repro lint`: the static OOB + temporal lint over workload modules.
//!
//! Builds each requested workload *uninstrumented*, runs the
//! `sgxs-analyze` classification, and reports every access the analysis
//! proves out of bounds. With `--ipa` the interprocedural tier runs too:
//! call-graph summaries are computed, facts survive call boundaries, and
//! proved temporal violations (use-after-free, double-free, leak) are
//! reported alongside the spatial findings. The human output is a
//! per-module summary plus one diagnostic line per finding; `--json`
//! writes a `sgxs-lint-v1` document (v2 with `--ipa`) that round-trips
//! through the validating reader in `sgxs_obs::read::parse_lint` before it
//! is written. The exit code is nonzero iff any module has a proved-OOB,
//! proved-UAF, or proved-double-free access, so the command doubles as a
//! CI gate (leaks are informational).
//!
//! Linting never executes workload code, so its output is byte-identical
//! across execution tiers by construction; `--tier` is accepted (and
//! `tests/lint_determinism.rs` locks the invariance in).

use crate::cli::Args;
use crate::scheme::RunConfig;
use sgxs_analyze::{lint_module, lint_module_ipa, LintReport, RetSummary, Summaries};
use sgxs_mir::{Module, ModuleBuilder, Operand, Ty};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

/// A committed, provably out-of-bounds module: a 5-element heap array
/// written in bounds, then read one element past the end. The lint must
/// flag exactly the final load — used by tests and `repro lint --demo-oob`
/// to prove the gate actually fires.
pub fn oob_demo() -> Module {
    let mut mb = ModuleBuilder::new("oob-demo");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let p = fb.intr_ptr("malloc", &[Operand::Imm(40)]);
        fb.count_loop(0u64, 5u64, |fb, i| {
            let a = fb.gep(p, i, 8, 0);
            fb.store(Ty::I64, a, i);
        });
        // One past the end: offset 40 in a 40-byte object.
        let oob = fb.gep(p, 5u64, 8, 0);
        let v = fb.load(Ty::I64, oob);
        fb.ret(Some(v.into()));
    });
    mb.finish()
}

/// A committed, provably temporally-unsafe module: `main` allocates,
/// hands the pointer to a helper that frees it on every path, then uses
/// it again — a cross-call use-after-free only the interprocedural tier
/// can prove. Used by tests and `repro lint --demo-uaf` to prove the
/// temporal gate fires.
pub fn uaf_demo() -> Module {
    let mut mb = ModuleBuilder::new("uaf-demo");
    let release = mb.func("release", &[Ty::Ptr], None, |fb| {
        let p = fb.param(0);
        fb.intr_void("free", &[p.into()]);
        fb.ret(None);
    });
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let p = fb.intr_ptr("malloc", &[Operand::Imm(24)]);
        fb.store(Ty::I64, p, 7u64);
        fb.call(release, &[p.into()]);
        // The helper must-frees its argument: this load is a proved UAF.
        let v = fb.load(Ty::I64, p);
        fb.ret(Some(v.into()));
    });
    mb.finish()
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(Json::U64).unwrap_or(Json::Null)
}

fn finding_json(f: &sgxs_analyze::Finding) -> Json {
    Json::obj(vec![
        ("function", f.function.as_str().into()),
        ("block", (f.block as u64).into()),
        ("inst", (f.inst as u64).into()),
        ("site", (f.site as u64).into()),
        ("kind", f.kind.into()),
        ("width", (f.width as u64).into()),
        ("object", f.object.as_str().into()),
        ("offset_lo", opt_u64(f.offset.map(|o| o.0))),
        ("offset_hi", opt_u64(f.offset.map(|o| o.1))),
        ("ir", f.ir.as_str().into()),
    ])
}

fn temporal_json(t: &sgxs_analyze::TemporalFinding) -> Json {
    Json::obj(vec![
        ("function", t.function.as_str().into()),
        ("block", (t.block as u64).into()),
        ("inst", (t.inst as u64).into()),
        ("site", (t.site as u64).into()),
        ("kind", t.kind.into()),
        ("alloc_site", (t.alloc_site as u64).into()),
        ("object", t.object.as_str().into()),
        ("ir", t.ir.as_str().into()),
    ])
}

fn interval_str(iv: &sgxs_analyze::Interval) -> String {
    if *iv == sgxs_analyze::Interval::TOP {
        "[?]".to_owned()
    } else if iv.lo == iv.hi {
        format!("[{}]", iv.lo)
    } else {
        format!("[{},{}]", iv.lo, iv.hi)
    }
}

fn ret_str(r: &RetSummary) -> String {
    match r {
        RetSummary::Top => "top".to_owned(),
        RetSummary::Num(iv) => format!("num{}", interval_str(iv)),
        RetSummary::Param { index, off } => format!("param{}+{}", index, interval_str(off)),
        RetSummary::Global { id, size, off } => {
            format!("global#{}({}B)+{}", id, size, interval_str(off))
        }
        RetSummary::FreshAlloc { size, escaped } => {
            format!("fresh({}B{})", size, if *escaped { ",escaped" } else { "" })
        }
    }
}

fn ipa_json(m: &Module, s: &Summaries) -> (Json, Json) {
    let name = |f: u32| m.funcs[f as usize].name.as_str();
    let mut nodes = Vec::new();
    let mut sums = Vec::new();
    for fi in 0..m.funcs.len() {
        let callees: Vec<Json> = s.graph.callees[fi]
            .iter()
            .map(|c| Json::from(name(*c)))
            .collect();
        nodes.push(Json::obj(vec![
            ("func", name(fi as u32).into()),
            ("callees", Json::Arr(callees)),
            ("scc", (s.graph.scc_of[fi] as u64).into()),
            ("unresolved", s.graph.unresolved[fi].into()),
        ]));
        let f = &s.funcs[fi];
        let bools = |v: &[bool]| Json::Arr(v.iter().map(|b| Json::from(*b)).collect());
        sums.push(Json::obj(vec![
            ("func", name(fi as u32).into()),
            ("ret", ret_str(&f.ret).into()),
            ("frees_params", bools(&f.frees_params)),
            ("must_frees_params", bools(&f.must_frees_params)),
            ("captures_params", bools(&f.captures_params)),
            ("frees_unknown", f.frees_unknown.into()),
            ("heap_benign", f.heap_benign().into()),
        ]));
    }
    (Json::Arr(nodes), Json::Arr(sums))
}

fn report_json(r: &LintReport, ipa: Option<(Json, Json)>) -> Json {
    let mut fields = vec![
        ("module", Json::from(r.module.as_str())),
        ("sites", (r.sites() as u64).into()),
        ("proved_safe", (r.proved_safe as u64).into()),
        ("unknown", (r.unknown as u64).into()),
        ("proved_oob", (r.proved_oob as u64).into()),
    ];
    if ipa.is_some() {
        fields.push(("proved_uaf", (r.proved_uaf as u64).into()));
        fields.push(("proved_df", (r.proved_df as u64).into()));
        fields.push(("leaks", (r.leaks as u64).into()));
    }
    fields.push((
        "findings",
        Json::Arr(r.findings.iter().map(finding_json).collect()),
    ));
    if let Some((cg, sums)) = ipa {
        fields.push((
            "temporal",
            Json::Arr(r.temporal.iter().map(temporal_json).collect()),
        ));
        fields.push(("call_graph", cg));
        fields.push(("summaries", sums));
    }
    Json::obj(fields)
}

fn render(r: &LintReport, ipa: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{}: {} access sites — {} proved-safe, {} unknown, {} proved-oob",
        r.module,
        r.sites(),
        r.proved_safe,
        r.unknown,
        r.proved_oob
    );
    if ipa {
        let _ = write!(
            out,
            "; {} proved-uaf, {} proved-df, {} leaks",
            r.proved_uaf, r.proved_df, r.leaks
        );
    }
    out.push('\n');
    for f in &r.findings {
        let off = match f.offset {
            Some((lo, hi)) => format!("[{lo}, {hi}]"),
            None => "?".to_owned(),
        };
        let _ = writeln!(
            out,
            "  {}:b{}:i{} [site {}]: {} of {}B at offset {} past {}\n    {}",
            f.function, f.block, f.inst, f.site, f.kind, f.width, off, f.object, f.ir
        );
    }
    for t in &r.temporal {
        let _ = writeln!(
            out,
            "  {}:b{}:i{} [site {}]: proved {} of {} (alloc site {})\n    {}",
            t.function, t.block, t.inst, t.site, t.kind, t.object, t.alloc_site, t.ir
        );
    }
    out
}

/// Everything one lint run produces, computed purely from the modules (no
/// I/O, no clock, no tier dependence) — the unit the determinism test
/// byte-compares.
pub struct LintOutcome {
    /// Human-readable per-module text.
    pub human: String,
    /// The `sgxs-lint-v1`/`-v2` JSON document.
    pub doc: Json,
    /// Total proved-OOB across modules.
    pub oob: usize,
    /// Total proved use-after-free across modules.
    pub uaf: usize,
    /// Total proved double-free across modules.
    pub df: usize,
    /// Total proved leaks across modules (informational).
    pub leaks: usize,
}

impl LintOutcome {
    /// The process exit code: nonzero iff a proved violation (not a leak)
    /// exists.
    pub fn exit_code(&self) -> i32 {
        if self.oob + self.uaf + self.df > 0 {
            1
        } else {
            0
        }
    }
}

/// Lints `modules` and assembles the outcome document. With `ipa`, the
/// interprocedural tier runs and the document is `sgxs-lint-v2`.
pub fn lint_modules(modules: Vec<Module>, seed: u64, ipa: bool) -> LintOutcome {
    let mut human = String::new();
    let mut reports = Vec::new();
    let mut blocks = Vec::new();
    for mut m in modules {
        let (r, extra) = if ipa {
            let (r, summaries) = lint_module_ipa(&mut m);
            let extra = ipa_json(&m, &summaries);
            (r, Some(extra))
        } else {
            (lint_module(&mut m), None)
        };
        human.push_str(&render(&r, ipa));
        blocks.push(report_json(&r, extra));
        reports.push(r);
    }
    let sum = |f: fn(&LintReport) -> usize| reports.iter().map(f).sum::<usize>();
    let (oob, uaf, df, leaks) = (
        sum(|r| r.proved_oob),
        sum(|r| r.proved_uaf),
        sum(|r| r.proved_df),
        sum(|r| r.leaks),
    );
    use std::fmt::Write as _;
    let _ = write!(
        human,
        "lint: {} modules, {} sites, {} proved-oob",
        reports.len(),
        reports.iter().map(LintReport::sites).sum::<usize>(),
        oob
    );
    if ipa {
        let _ = write!(
            human,
            ", {} proved-uaf, {} proved-df, {} leaks",
            uaf, df, leaks
        );
    }
    human.push('\n');
    let mut fields = vec![(
        "schema",
        Json::from(if ipa { "sgxs-lint-v2" } else { "sgxs-lint-v1" }),
    )];
    fields.push(("seed", seed.into()));
    if ipa {
        fields.push(("ipa", true.into()));
    }
    fields.push(("proved_oob", (oob as u64).into()));
    if ipa {
        fields.push(("proved_uaf", (uaf as u64).into()));
        fields.push(("proved_df", (df as u64).into()));
        fields.push(("leaks", (leaks as u64).into()));
    }
    fields.push(("modules", Json::Arr(blocks)));
    LintOutcome {
        human,
        doc: Json::obj(fields),
        oob,
        uaf,
        df,
        leaks,
    }
}

/// `repro lint [NAMES...] [--ipa] [--demo-oob] [--demo-uaf] [--ascii]
/// [--json FILE] [--incident FILE] [--tier T] [--seed N]`: lints workload
/// modules (all benchmarks by default) and exits 1 on any proved-OOB,
/// proved-UAF, or proved-double-free access. `--demo-uaf` implies
/// `--ipa` (only the interprocedural tier proves it). With `--demo-oob`,
/// `--incident` additionally runs the demo under SGXBounds with the
/// forensic ledger attached and writes the detection as a
/// cross-tier-pinned `sgxs-incident-v1` artifact. `--ascii` renders the
/// call graph and summaries (after round-tripping the document through
/// the validating reader).
pub fn run_lint(args: &[String]) -> Result<i32, String> {
    let mut json: Option<String> = None;
    let mut incident: Option<String> = None;
    let mut demo = false;
    let mut demo_uaf = false;
    let mut ipa = false;
    let mut ascii = false;
    let mut names: Vec<String> = Vec::new();
    let mut seed = crate::exp::DEFAULT_SEED;
    let mut it = Args::new("lint", args);
    while let Some(a) = it.next_arg() {
        match a {
            "--json" => json = Some(it.value("--json")?),
            "--incident" => incident = Some(it.value("--incident")?),
            "--demo-oob" => demo = true,
            "--demo-uaf" => {
                demo_uaf = true;
                ipa = true;
            }
            "--ipa" => ipa = true,
            "--ascii" => ascii = true,
            "--seed" => seed = it.parse("--seed")?,
            "--tier" => {
                // Linting never executes code; the flag exists so callers
                // can prove tier-invariance of the output.
                crate::scheme::set_default_tier(crate::cli::tier_value(&mut it)?);
            }
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => return Err(it.fail(format!("unknown argument '{other}'"))),
        }
    }
    if incident.is_some() && !demo {
        return Err(it.fail("--incident requires --demo-oob (the demo is the incident source)"));
    }

    // Workload modules are built exactly as the experiments build them,
    // just never instrumented: the lint sees the application IR.
    let mut rc = RunConfig::new(Preset::Tiny);
    rc.params.size = SizeClass::XS;
    rc.params.seed = seed;
    let mut modules: Vec<Module> = Vec::new();
    if demo {
        modules.push(oob_demo());
    }
    if demo_uaf {
        modules.push(uaf_demo());
    }
    if names.is_empty() {
        if !demo && !demo_uaf {
            for w in sgxs_workloads::all_benchmarks() {
                modules.push(w.build(&rc.params));
            }
        }
    } else {
        for name in &names {
            let Some(w) = sgxs_workloads::by_name(name) else {
                return Err(it.fail(format!("unknown workload '{name}'")));
            };
            modules.push(w.build(&rc.params));
        }
    }

    let out = lint_modules(modules, seed, ipa);
    print!("{}", out.human);

    // Every emitted document must survive its own validating reader; the
    // ASCII view renders from the parsed form, proving the round trip.
    let parsed = sgxs_obs::read::lint_from_json(&out.doc)
        .map_err(|e| it.fail(format!("emitted document failed validation: {e}")))?;
    if ascii {
        print!("{}", sgxs_perf::render::lint_graph_ascii(&parsed));
    }

    if let Some(path) = &json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        std::fs::write(path, out.doc.to_pretty())
            .map_err(|e| it.fail(format!("cannot write {path}: {e}")))?;
        println!("lint json written to {path}");
    }
    if let Some(path) = &incident {
        let inc = crate::audit::pinned_demo_incident(sgxs_audit::DEFAULT_TRACE_WINDOW)
            .map_err(|e| it.fail(e))?;
        crate::cli::write_file(path, &inc.to_json().to_pretty()).map_err(|e| it.fail(e))?;
        println!("incident json written to {path} (id {})", inc.id());
    }
    Ok(out.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_module_is_provably_oob() {
        let mut m = oob_demo();
        let r = lint_module(&mut m);
        assert_eq!(r.proved_oob, 1, "{r:?}");
        assert_eq!(r.findings[0].kind, "load");
        assert_eq!(r.findings[0].offset, Some((40, 40)));
    }

    #[test]
    fn uaf_demo_is_provably_temporal_and_gates_the_exit_code() {
        let out = lint_modules(vec![uaf_demo()], 42, true);
        assert_eq!(out.uaf, 1, "{}", out.human);
        assert_eq!(out.oob, 0);
        assert_eq!(out.exit_code(), 1);
        // The emitted v2 document parses through the validating reader and
        // carries the summary that proved the violation.
        let doc = sgxs_obs::read::lint_from_json(&out.doc).expect("v2 validates");
        assert_eq!(doc.schema, "sgxs-lint-v2");
        assert_eq!(doc.proved_uaf, 1);
        let m = &doc.modules[0];
        let release = m.summaries.iter().find(|s| s.func == "release").unwrap();
        assert_eq!(release.must_frees_params, vec![true]);
        let main = m.call_graph.iter().find(|n| n.func == "main").unwrap();
        assert_eq!(main.callees, vec!["release".to_owned()]);
        // Without the interprocedural tier the violation is invisible.
        let intra = lint_modules(vec![uaf_demo()], 42, false);
        assert_eq!(intra.exit_code(), 0);
    }

    #[test]
    fn unknown_offsets_serialize_as_null_not_full_range() {
        // A parameter-relative OOB proof has no absolute offset; make one
        // via an obviously-underflowing gep on a known allocation freed
        // of its interval... simplest path: check the JSON writer maps
        // None to null via a synthetic finding.
        let f = sgxs_analyze::Finding {
            function: "f".into(),
            block: 0,
            inst: 0,
            site: 0,
            kind: "load",
            width: 8,
            object: "?".into(),
            offset: None,
            ir: "r0 = load.i64 [r1]".into(),
        };
        let j = finding_json(&f);
        assert!(j.get("offset_lo").unwrap().as_u64().is_none());
        assert!(j.to_compact().contains("\"offset_lo\":null"));
    }
}
