//! `repro lint`: the static OOB lint over workload modules.
//!
//! Builds each requested workload *uninstrumented*, runs the
//! `sgxs-analyze` classification, and reports every access the analysis
//! proves out of bounds. The human output is a per-module summary plus one
//! diagnostic line per finding; `--json` writes a `sgxs-lint-v1` document.
//! The exit code is nonzero iff any module has a proved-OOB access, so the
//! command doubles as a CI gate.

use crate::cli::Args;
use crate::scheme::RunConfig;
use sgxs_analyze::{lint_module, LintReport};
use sgxs_mir::{Module, ModuleBuilder, Operand, Ty};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

/// A committed, provably out-of-bounds module: a 5-element heap array
/// written in bounds, then read one element past the end. The lint must
/// flag exactly the final load — used by tests and `repro lint --demo-oob`
/// to prove the gate actually fires.
pub fn oob_demo() -> Module {
    let mut mb = ModuleBuilder::new("oob-demo");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let p = fb.intr_ptr("malloc", &[Operand::Imm(40)]);
        fb.count_loop(0u64, 5u64, |fb, i| {
            let a = fb.gep(p, i, 8, 0);
            fb.store(Ty::I64, a, i);
        });
        // One past the end: offset 40 in a 40-byte object.
        let oob = fb.gep(p, 5u64, 8, 0);
        let v = fb.load(Ty::I64, oob);
        fb.ret(Some(v.into()));
    });
    mb.finish()
}

fn finding_json(f: &sgxs_analyze::Finding) -> Json {
    Json::obj(vec![
        ("function", f.function.as_str().into()),
        ("block", (f.block as u64).into()),
        ("inst", (f.inst as u64).into()),
        ("site", (f.site as u64).into()),
        ("kind", f.kind.into()),
        ("width", (f.width as u64).into()),
        ("object", f.object.as_str().into()),
        ("offset_lo", f.offset.0.into()),
        ("offset_hi", f.offset.1.into()),
        ("ir", f.ir.as_str().into()),
    ])
}

fn report_json(r: &LintReport) -> Json {
    Json::obj(vec![
        ("module", r.module.as_str().into()),
        ("sites", (r.sites() as u64).into()),
        ("proved_safe", (r.proved_safe as u64).into()),
        ("unknown", (r.unknown as u64).into()),
        ("proved_oob", (r.proved_oob as u64).into()),
        (
            "findings",
            Json::Arr(r.findings.iter().map(finding_json).collect()),
        ),
    ])
}

fn render(r: &LintReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} access sites — {} proved-safe, {} unknown, {} proved-oob",
        r.module,
        r.sites(),
        r.proved_safe,
        r.unknown,
        r.proved_oob
    );
    for f in &r.findings {
        let _ = writeln!(
            out,
            "  {}:b{}:i{} [site {}]: {} of {}B at offset [{}, {}] past {}\n    {}",
            f.function,
            f.block,
            f.inst,
            f.site,
            f.kind,
            f.width,
            f.offset.0,
            f.offset.1,
            f.object,
            f.ir
        );
    }
    out
}

/// `repro lint [NAMES...] [--demo-oob] [--json FILE] [--incident FILE]`:
/// lints workload modules (all benchmarks by default) and exits 1 on any
/// proved-OOB access. With `--demo-oob`, `--incident` additionally runs
/// the demo under SGXBounds with the forensic ledger attached and writes
/// the detection as a cross-tier-pinned `sgxs-incident-v1` artifact.
pub fn run_lint(args: &[String]) -> Result<i32, String> {
    let mut json: Option<String> = None;
    let mut incident: Option<String> = None;
    let mut demo = false;
    let mut names: Vec<String> = Vec::new();
    let mut seed = crate::exp::DEFAULT_SEED;
    let mut it = Args::new("lint", args);
    while let Some(a) = it.next_arg() {
        match a {
            "--json" => json = Some(it.value("--json")?),
            "--incident" => incident = Some(it.value("--incident")?),
            "--demo-oob" => demo = true,
            "--seed" => seed = it.parse("--seed")?,
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => return Err(it.fail(format!("unknown argument '{other}'"))),
        }
    }
    if incident.is_some() && !demo {
        return Err(it.fail("--incident requires --demo-oob (the demo is the incident source)"));
    }

    // Workload modules are built exactly as the experiments build them,
    // just never instrumented: the lint sees the application IR.
    let mut rc = RunConfig::new(Preset::Tiny);
    rc.params.size = SizeClass::XS;
    rc.params.seed = seed;
    let mut modules: Vec<Module> = Vec::new();
    if demo {
        modules.push(oob_demo());
    }
    if names.is_empty() {
        if !demo {
            for w in sgxs_workloads::all_benchmarks() {
                modules.push(w.build(&rc.params));
            }
        }
    } else {
        for name in &names {
            let Some(w) = sgxs_workloads::by_name(name) else {
                return Err(it.fail(format!("unknown workload '{name}'")));
            };
            modules.push(w.build(&rc.params));
        }
    }

    let mut reports = Vec::new();
    for mut m in modules {
        let r = lint_module(&mut m);
        print!("{}", render(&r));
        reports.push(r);
    }
    let oob: usize = reports.iter().map(|r| r.proved_oob).sum();
    println!(
        "lint: {} modules, {} sites, {} proved-oob",
        reports.len(),
        reports.iter().map(LintReport::sites).sum::<usize>(),
        oob
    );

    if let Some(path) = &json {
        let doc = Json::obj(vec![
            ("schema", "sgxs-lint-v1".into()),
            ("seed", seed.into()),
            ("proved_oob", (oob as u64).into()),
            (
                "modules",
                Json::Arr(reports.iter().map(report_json).collect()),
            ),
        ]);
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        std::fs::write(path, doc.to_pretty())
            .map_err(|e| it.fail(format!("cannot write {path}: {e}")))?;
        println!("lint json written to {path}");
    }
    if let Some(path) = &incident {
        let inc = crate::audit::pinned_demo_incident(sgxs_audit::DEFAULT_TRACE_WINDOW)
            .map_err(|e| it.fail(e))?;
        crate::cli::write_file(path, &inc.to_json().to_pretty()).map_err(|e| it.fail(e))?;
        println!("incident json written to {path} (id {})", inc.id());
    }
    Ok(if oob > 0 { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_module_is_provably_oob() {
        let mut m = oob_demo();
        let r = lint_module(&mut m);
        assert_eq!(r.proved_oob, 1, "{r:?}");
        assert_eq!(r.findings[0].kind, "load");
        assert_eq!(r.findings[0].offset, (40, 40));
    }
}
