//! §7 security case studies: Heartbleed (Apache/OpenSSL), the Nginx
//! chunked-transfer stack overflow (CVE-2013-2028), summarized per scheme
//! and for SGXBounds' boundless-memory mode.

use crate::report::Table;
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxbounds::SbConfig;
use sgxs_mir::Trap;
use sgxs_sim::Preset;
use sgxs_workloads::apps::apache::Heartbleed;
use sgxs_workloads::apps::memcached::MemcachedCve2011_4971;
use sgxs_workloads::apps::nginx::NginxCve2013_2028;
use sgxs_workloads::Workload;
use std::fmt;

/// One case-study line.
#[derive(Debug, Clone)]
pub struct CaseRow {
    /// Case name.
    pub case: &'static str,
    /// Scheme label.
    pub scheme: String,
    /// What happened.
    pub verdict: String,
}

/// All case results.
#[derive(Debug, Clone)]
pub struct Cases {
    /// Rows.
    pub rows: Vec<CaseRow>,
}

fn verdict(case: &'static str, w: &dyn Workload, scheme: Scheme, rc: &RunConfig) -> String {
    let m = run_one(w, scheme, rc);
    let unprotected = matches!(scheme, Scheme::Baseline);
    match (&m.result, case) {
        (Err(Trap::SafetyViolation { .. }), _) => "detected, program halted".into(),
        (Err(Trap::InstructionLimit), "memcached_cve") => {
            "attack absorbed but daemon spins (paper's observed hang)".into()
        }
        (Ok(0), "heartbleed") => "no leak, server kept running".into(),
        (Ok(1), "heartbleed") => "SECRET LEAKED".into(),
        (Ok(n), "nginx_cve") if unprotected => {
            format!("STACK SMASHED silently; {n} requests served")
        }
        (Ok(n), "nginx_cve") => format!("attack dropped, {n} requests served"),
        (Ok(n), "memcached_cve") if unprotected => {
            format!("HEAP SMASHED silently; {n} requests served")
        }
        (Ok(v), _) => format!("completed ({v})"),
        (Err(t), _) => format!("{t}"),
    }
}

/// Runs every case under every scheme, plus SGXBounds+boundless.
pub fn run(preset: Preset, seed: u64) -> Cases {
    let mut rc = RunConfig::new(preset);
    rc.params.seed = seed;
    let boundless = Scheme::SgxBoundsCustom(SbConfig {
        boundless: true,
        ..SbConfig::default()
    });
    let mut rows = Vec::new();
    let cases: [(&'static str, Box<dyn Workload>); 3] = [
        ("heartbleed", Box::new(Heartbleed)),
        ("memcached_cve", Box::new(MemcachedCve2011_4971)),
        ("nginx_cve", Box::new(NginxCve2013_2028)),
    ];
    for (case, w) in cases {
        // The memcached hang reproduction deliberately spins; cap its budget
        // so `repro cases` stays fast.
        let mut case_rc = rc;
        if case == "memcached_cve" {
            case_rc.max_instructions = 150_000_000;
        }
        for scheme in [
            Scheme::Baseline,
            Scheme::Mpx,
            Scheme::Asan,
            Scheme::SgxBounds,
        ] {
            rows.push(CaseRow {
                case,
                scheme: scheme.label().into(),
                verdict: verdict(case, w.as_ref(), scheme, &case_rc),
            });
        }
        rows.push(CaseRow {
            case,
            scheme: "sgxbounds+boundless".into(),
            verdict: verdict(case, w.as_ref(), boundless, &case_rc),
        });
    }
    Cases { rows }
}

impl Cases {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> sgxs_obs::json::Json {
        use sgxs_obs::json::Json;
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("case", r.case.into()),
                    ("scheme", r.scheme.as_str().into()),
                    ("verdict", r.verdict.as_str().into()),
                ])
            })
            .collect();
        Json::obj(vec![("rows", Json::Arr(rows))])
    }
}

impl fmt::Display for Cases {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 7 security case studies")?;
        let mut t = Table::new(&["case", "scheme", "verdict"]);
        for r in &self.rows {
            t.row(vec![r.case.into(), r.scheme.clone(), r.verdict.clone()]);
        }
        write!(f, "{}", t.render())
    }
}
