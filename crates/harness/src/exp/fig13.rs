//! Figure 13: case-study servers — throughput/latency across client
//! concurrency plus the peak-memory table (Memcached, Apache, Nginx).

use crate::report::{fmt_bytes, json_opt_f64, json_opt_u64, Table};
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::{Mode, Preset};
use sgxs_workloads::apps::{apache::Apache, memcached::Memcached, nginx::Nginx};
use sgxs_workloads::Workload;
use std::fmt;

/// One (app, clients, scheme) measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Client concurrency.
    pub clients: u32,
    /// Scheme label ("native" is non-enclave baseline).
    pub scheme: &'static str,
    /// Requests per million cycles (throughput).
    pub throughput: Option<f64>,
    /// Mean cycles per request times concurrency (closed-loop latency).
    pub latency: Option<f64>,
    /// Peak reserved memory.
    pub peak_mem: Option<u64>,
}

/// One application's curves.
#[derive(Debug, Clone)]
pub struct AppCurves {
    /// Application name.
    pub name: String,
    /// All samples.
    pub samples: Vec<Sample>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Per-application curves.
    pub apps: Vec<AppCurves>,
}

fn build_app(name: &str, clients: u32, requests: u64) -> Box<dyn Workload> {
    match name {
        "memcached" => Box::new(Memcached {
            clients_override: Some(clients),
            requests_override: Some(requests),
        }),
        "apache" => Box::new(Apache {
            clients_override: Some(clients),
            requests_override: Some(requests),
        }),
        "nginx" => Box::new(Nginx {
            clients_override: Some(clients),
            requests_override: Some(requests),
        }),
        _ => unreachable!(),
    }
}

/// Runs the sweep over `client_steps`, issuing `req_per_client` requests
/// per client.
pub fn run(preset: Preset, client_steps: &[u32], req_per_client: u64, seed: u64) -> Fig13 {
    let mut apps = Vec::new();
    for name in ["memcached", "apache", "nginx"] {
        let mut samples = Vec::new();
        for &clients in client_steps {
            let requests = req_per_client * clients as u64;
            let w = build_app(name, clients, requests);
            // Five variants: native (non-enclave), SGX baseline, and the
            // three hardened enclave runs.
            let mut variants: Vec<(&'static str, Scheme, Mode)> = vec![
                ("native", Scheme::Baseline, Mode::Native),
                ("sgx", Scheme::Baseline, Mode::Enclave),
            ];
            for s in Scheme::all_hardened() {
                variants.push((s.label(), s, Mode::Enclave));
            }
            for (label, scheme, mode) in variants {
                let mut rc = RunConfig::new(preset);
                rc.mode = mode;
                rc.params.seed = seed;
                let m = run_one(w.as_ref(), scheme, &rc);
                let (tp, lat) = if m.ok() && m.wall_cycles > 0 {
                    let tp = requests as f64 / (m.wall_cycles as f64 / 1_000_000.0);
                    let lat = m.wall_cycles as f64 * clients as f64 / requests as f64;
                    (Some(tp), Some(lat))
                } else {
                    (None, None)
                };
                samples.push(Sample {
                    clients,
                    scheme: label,
                    throughput: tp,
                    latency: lat,
                    peak_mem: m.ok().then_some(m.peak_reserved),
                });
            }
        }
        apps.push(AppCurves {
            name: name.to_owned(),
            samples,
        });
    }
    Fig13 { apps }
}

impl Fig13 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let apps: Vec<Json> = self
            .apps
            .iter()
            .map(|app| {
                let samples: Vec<Json> = app
                    .samples
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("clients", s.clients.into()),
                            ("scheme", s.scheme.into()),
                            ("throughput_req_per_mcycle", json_opt_f64(s.throughput)),
                            ("latency_cycles", json_opt_f64(s.latency)),
                            ("peak_reserved_bytes", json_opt_u64(s.peak_mem)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("app", app.name.as_str().into()),
                    ("samples", Json::Arr(samples)),
                ])
            })
            .collect();
        Json::obj(vec![("apps", Json::Arr(apps))])
    }

    /// Peak memory table at the highest client count (the paper's
    /// "memory usage for peak throughput" table).
    pub fn memory_table(&self) -> String {
        let mut t = Table::new(&["scheme", "memcached", "apache", "nginx"]);
        for scheme in ["sgx", "mpx", "asan", "sgxbounds"] {
            let mut cells = vec![scheme.to_owned()];
            for app in &self.apps {
                let max_clients = app.samples.iter().map(|s| s.clients).max().unwrap_or(0);
                let cell = app
                    .samples
                    .iter()
                    .find(|s| s.clients == max_clients && s.scheme == scheme)
                    .and_then(|s| s.peak_mem)
                    .map(fmt_bytes)
                    .unwrap_or_else(|| "crash".into());
                cells.push(cell);
            }
            t.row(cells);
        }
        format!("Peak memory at highest concurrency:\n{}", t.render())
    }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: throughput (req/Mcycle) and latency (cycles) by concurrency"
        )?;
        for app in &self.apps {
            writeln!(f, "\n[{}]", app.name)?;
            let mut t = Table::new(&["clients", "scheme", "throughput", "latency"]);
            for s in &app.samples {
                t.row(vec![
                    s.clients.to_string(),
                    s.scheme.to_owned(),
                    s.throughput
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "crash".into()),
                    s.latency
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "crash".into()),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        writeln!(f)?;
        write!(f, "{}", self.memory_table())
    }
}
