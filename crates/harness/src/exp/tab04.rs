//! Table 4: RIPE security benchmark — attacks prevented per scheme.

use crate::report::Table;
use crate::scheme::RunConfig;
use sgxs_baselines::asan::runtime::asan_alloc_opts;
use sgxs_baselines::{
    install_asan, install_mpx, instrument_asan, instrument_mpx, AsanConfig, MpxConfig,
};
use sgxs_mir::{verify, Module, Trap, Vm, VmConfig};
use sgxs_obs::json::Json;
use sgxs_rt::{install_base, AllocOpts};
use sgxs_sim::{MachineConfig, Preset};
use sgxs_workloads::apps::ripe::{self, AttackConfig};
use std::fmt;

/// Outcome of one attack under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The scheme trapped before control flow was captured.
    Prevented,
    /// The shell function ran.
    Succeeded,
    /// Something else happened (counts as not prevented).
    Other,
}

/// The full matrix.
#[derive(Debug, Clone)]
pub struct Tab4 {
    /// (attack, [mpx, asan, sgxbounds]) outcomes.
    pub matrix: Vec<(AttackConfig, [Outcome; 3])>,
}

fn run_attack(module: Module, scheme: &str, rc: &RunConfig) -> Outcome {
    let mut module = module;
    let scale = rc.scale();
    match scheme {
        "sgxbounds" => {
            sgxbounds::instrument(&mut module, &sgxbounds::SbConfig::default()).unwrap();
        }
        "asan" => {
            instrument_asan(&mut module).unwrap();
        }
        "mpx" => {
            instrument_mpx(&mut module).unwrap();
        }
        _ => {}
    }
    verify(&module).expect("attack module verifies");
    let mut cfg = VmConfig::new(MachineConfig::preset(rc.preset, rc.mode));
    cfg.max_instructions = 50_000_000;
    let mut vm = Vm::new(&module, cfg);
    let asan_cfg = AsanConfig::for_scale(scale);
    let heap = match scheme {
        "asan" => install_base(&mut vm, asan_alloc_opts(&asan_cfg, rc.enclave_cap())),
        _ => install_base(&mut vm, AllocOpts::default()),
    };
    match scheme {
        "sgxbounds" => {
            sgxbounds::install_sgxbounds(&mut vm, heap, &sgxbounds::SbConfig::default(), None);
        }
        "asan" => {
            install_asan(&mut vm, heap, &asan_cfg);
        }
        "mpx" => {
            install_mpx(&mut vm, heap, MpxConfig::for_scale(scale));
        }
        _ => {}
    }
    match vm.run("main", &[]).result {
        Err(Trap::SafetyViolation { .. }) => Outcome::Prevented,
        Ok(v) if v == ripe::SHELL_MAGIC => Outcome::Succeeded,
        _ => Outcome::Other,
    }
}

/// Runs the full matrix.
pub fn run(preset: Preset, seed: u64) -> Tab4 {
    let mut rc = RunConfig::new(preset);
    rc.params.seed = seed;
    let mut matrix = Vec::new();
    for cfg in ripe::all_attacks() {
        let outcomes =
            ["mpx", "asan", "sgxbounds"].map(|s| run_attack(ripe::build_attack(&cfg), s, &rc));
        matrix.push((cfg, outcomes));
    }
    Tab4 { matrix }
}

impl Tab4 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let cell = |o: Outcome| {
            Json::Str(
                match o {
                    Outcome::Prevented => "prevented",
                    Outcome::Succeeded => "hijacked",
                    Outcome::Other => "other",
                }
                .into(),
            )
        };
        let attacks: Vec<Json> = self
            .matrix
            .iter()
            .map(|(cfg, o)| {
                Json::obj(vec![
                    ("attack", cfg.label().into()),
                    ("mpx", cell(o[0])),
                    ("asan", cell(o[1])),
                    ("sgxbounds", cell(o[2])),
                ])
            })
            .collect();
        let p = self.prevented();
        Json::obj(vec![
            ("attacks", Json::Arr(attacks)),
            (
                "prevented",
                Json::obj(vec![
                    ("mpx", p[0].into()),
                    ("asan", p[1].into()),
                    ("sgxbounds", p[2].into()),
                    ("total", self.matrix.len().into()),
                ]),
            ),
        ])
    }

    /// Prevented counts in [mpx, asan, sgxbounds] order.
    pub fn prevented(&self) -> [usize; 3] {
        let mut p = [0; 3];
        for (_, o) in &self.matrix {
            for i in 0..3 {
                if o[i] == Outcome::Prevented {
                    p[i] += 1;
                }
            }
        }
        p
    }
}

impl fmt::Display for Tab4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: RIPE results ({} SGX-viable of {} native attacks; shellcode dies on `int` in the enclave)",
            ripe::SGX_VIABLE,
            ripe::NATIVE_VIABLE
        )?;
        let mut t = Table::new(&["attack", "mpx", "asan", "sgxbounds"]);
        let cell = |o: Outcome| match o {
            Outcome::Prevented => "prevented".to_owned(),
            Outcome::Succeeded => "HIJACKED".to_owned(),
            Outcome::Other => "other".to_owned(),
        };
        for (cfg, o) in &self.matrix {
            t.row(vec![cfg.label(), cell(o[0]), cell(o[1]), cell(o[2])]);
        }
        let p = self.prevented();
        t.row(vec![
            "prevented".into(),
            format!("{}/16", p[0]),
            format!("{}/16", p[1]),
            format!("{}/16", p[2]),
        ]);
        write!(f, "{}", t.render())
    }
}
