//! Figure 1 (the motivating experiment): SQLite speedtest performance and
//! memory with increasing working-set items. MPX dies of bounds-table OOM
//! early in the sweep; ASan is stable but slow and memory-hungry;
//! SGXBounds stays within ~35% of native SGX with near-zero extra memory.

use crate::report::{fmt_bytes, fmt_ratio, json_opt_f64, json_opt_u64, ratio, Table};
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use sgxs_workloads::apps::sqlite::{Sqlite, BYTES_PER_ROW};
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Rows in the table.
    pub rows: u64,
    /// Native-SGX working set estimate in bytes.
    pub ws_bytes: u64,
    /// Perf overhead vs native SGX per scheme (MPX, ASan, SGXBounds).
    pub perf: [Option<f64>; 3],
    /// Peak reserved memory per scheme, plus baseline (bytes).
    pub mem: [Option<u64>; 3],
    /// Baseline memory.
    pub base_mem: u64,
}

/// The sweep.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Sweep points (increasing working set).
    pub points: Vec<Point>,
}

/// Runs the sweep. `steps` points, doubling row counts.
pub fn run(preset: Preset, steps: usize, seed: u64) -> Fig1 {
    let mut rc = RunConfig::new(preset);
    rc.params.seed = seed;
    // Start around 1/16th of the enclave cap's row equivalent and double;
    // the later points push MPX's 4x bounds-table factor over the cap.
    let cap = rc.enclave_cap();
    let start_rows = (cap / 40 / BYTES_PER_ROW).max(256);
    let mut points = Vec::new();
    for s in 0..steps {
        let rows = start_rows << s;
        let w = Sqlite::with_rows(rows);
        let base = run_one(&w, Scheme::Baseline, &rc);
        assert!(base.ok(), "sqlite baseline failed: {:?}", base.result);
        let mut perf = [None; 3];
        let mut mem = [None; 3];
        for (i, scheme) in Scheme::all_hardened().into_iter().enumerate() {
            let m = run_one(&w, scheme, &rc);
            if m.ok() {
                perf[i] = Some(ratio(m.wall_cycles, base.wall_cycles));
                mem[i] = Some(m.peak_reserved);
            }
        }
        points.push(Point {
            rows,
            ws_bytes: rows * BYTES_PER_ROW,
            perf,
            mem,
            base_mem: base.peak_reserved,
        });
    }
    Fig1 { points }
}

impl Fig1 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("rows", p.rows.into()),
                    ("ws_bytes", p.ws_bytes.into()),
                    (
                        "perf_vs_sgx",
                        Json::obj(vec![
                            ("mpx", json_opt_f64(p.perf[0])),
                            ("asan", json_opt_f64(p.perf[1])),
                            ("sgxbounds", json_opt_f64(p.perf[2])),
                        ]),
                    ),
                    (
                        "peak_reserved_bytes",
                        Json::obj(vec![
                            ("sgx", p.base_mem.into()),
                            ("mpx", json_opt_u64(p.mem[0])),
                            ("asan", json_opt_u64(p.mem[1])),
                            ("sgxbounds", json_opt_u64(p.mem[2])),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![("points", Json::Arr(points))])
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: SQLite speedtest with increasing working set (in-enclave)"
        )?;
        let mut t = Table::new(&[
            "rows",
            "ws",
            "perf mpx",
            "perf asan",
            "perf sgxbounds",
            "mem sgx",
            "mem mpx",
            "mem asan",
            "mem sgxbounds",
        ]);
        for p in &self.points {
            let memcell = |m: Option<u64>| m.map(fmt_bytes).unwrap_or_else(|| "crash".into());
            t.row(vec![
                p.rows.to_string(),
                fmt_bytes(p.ws_bytes),
                fmt_ratio(p.perf[0]),
                fmt_ratio(p.perf[1]),
                fmt_ratio(p.perf[2]),
                fmt_bytes(p.base_mem),
                memcell(p.mem[0]),
                memcell(p.mem[1]),
                memcell(p.mem[2]),
            ]);
        }
        write!(f, "{}", t.render())
    }
}
