//! Figure 12: SPEC outside the enclave (normal, unconstrained execution).
//! The shape inverts: without EPC pressure, SGXBounds' per-access
//! arithmetic costs more than ASan's cached shadow loads (paper §6.7:
//! 55% vs 38%).

use super::fig11::{run_spec, SpecFig};
use super::Effort;
use sgxs_sim::{Mode, Preset};

/// Runs SPEC in native (non-enclave) mode.
pub fn run(preset: Preset, effort: Effort, seed: u64) -> SpecFig {
    run_spec(
        preset,
        effort,
        Mode::Native,
        "Figure 12: SPEC outside the enclave — overheads over native execution",
        seed,
    )
}
