//! Figure 7: performance and memory overheads of MPX, ASan, and SGXBounds
//! over native SGX on Phoenix + PARSEC (8 threads).

use super::Effort;
use crate::report::{fmt_ratio, geomean, json_scheme_triple, ratio, Table};
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use std::fmt;

/// One benchmark's overheads; order: MPX, ASan, SGXBounds.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Performance overhead per scheme (None = crash).
    pub perf: [Option<f64>; 3],
    /// Memory overhead per scheme.
    pub mem: [Option<f64>; 3],
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// Geometric means (over completing runs).
    pub gmean_perf: [Option<f64>; 3],
    /// Memory geometric means.
    pub gmean_mem: [Option<f64>; 3],
}

/// Runs the experiment.
pub fn run(preset: Preset, effort: Effort, seed: u64) -> Fig7 {
    let mut rc = RunConfig::new(preset);
    rc.params.size = effort.size();
    rc.params.threads = 8;
    rc.params.seed = seed;
    let mut rows = Vec::new();
    for w in sgxs_workloads::phoenix_parsec() {
        let base = run_one(w.as_ref(), Scheme::Baseline, &rc);
        assert!(base.ok(), "{} baseline failed: {:?}", w.name(), base.result);
        let mut perf = [None; 3];
        let mut mem = [None; 3];
        for (i, s) in Scheme::all_hardened().into_iter().enumerate() {
            let m = run_one(w.as_ref(), s, &rc);
            if m.ok() {
                perf[i] = Some(ratio(m.wall_cycles, base.wall_cycles));
                mem[i] = Some(ratio(m.peak_reserved, base.peak_reserved));
            }
        }
        rows.push(Row {
            name: w.name().to_owned(),
            perf,
            mem,
        });
    }
    let col = |get: &dyn Fn(&Row) -> [Option<f64>; 3], i: usize| {
        geomean(rows.iter().filter_map(|r| get(r)[i]))
    };
    Fig7 {
        gmean_perf: [0, 1, 2].map(|i| col(&|r| r.perf, i)),
        gmean_mem: [0, 1, 2].map(|i| col(&|r| r.mem, i)),
        rows,
    }
}

impl Fig7 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("benchmark", r.name.as_str().into()),
                    ("perf", json_scheme_triple(r.perf)),
                    ("mem", json_scheme_triple(r.mem)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("rows", Json::Arr(rows)),
            ("gmean_perf", json_scheme_triple(self.gmean_perf)),
            ("gmean_mem", json_scheme_triple(self.gmean_mem)),
        ])
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: overheads over native SGX (Phoenix + PARSEC, 8 threads)"
        )?;
        let mut t = Table::new(&[
            "benchmark",
            "perf mpx",
            "perf asan",
            "perf sgxbounds",
            "mem mpx",
            "mem asan",
            "mem sgxbounds",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_ratio(r.perf[0]),
                fmt_ratio(r.perf[1]),
                fmt_ratio(r.perf[2]),
                fmt_ratio(r.mem[0]),
                fmt_ratio(r.mem[1]),
                fmt_ratio(r.mem[2]),
            ]);
        }
        t.row(vec![
            "gmean".into(),
            fmt_ratio(self.gmean_perf[0]),
            fmt_ratio(self.gmean_perf[1]),
            fmt_ratio(self.gmean_perf[2]),
            fmt_ratio(self.gmean_mem[0]),
            fmt_ratio(self.gmean_mem[1]),
            fmt_ratio(self.gmean_mem[2]),
        ]);
        write!(f, "{}", t.render())
    }
}
