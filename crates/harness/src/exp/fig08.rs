//! Figure 8 + Table 3: performance with increasing working-set sizes
//! (XS–XL), normalized against SGXBounds, plus the hardware-counter table
//! (LLC misses, page faults, bounds-table counts).

use crate::report::{fmt_bytes, fmt_ratio, ratio, Table};
use crate::scheme::{run_one, Measured, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;
use std::fmt;

/// Benchmarks the paper highlights in this sweep.
pub const BENCHMARKS: [&str; 4] = [
    "kmeans",
    "matrix_multiply",
    "word_count",
    "linear_regression",
];

/// One (benchmark, size) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Size class.
    pub size: SizeClass,
    /// Baseline (native SGX) committed working set.
    pub ws_bytes: u64,
    /// Overheads vs SGXBounds: [sgx, mpx, asan].
    pub vs_sgxbounds: [Option<f64>; 3],
    /// Counters for Table 3.
    pub sgxb: CounterSet,
    /// ASan counters.
    pub asan: Option<CounterSet>,
    /// MPX counters (+ BT count).
    pub mpx: Option<CounterSet>,
}

/// Hardware counters of one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSet {
    /// LLC miss percentage.
    pub llc_pct: f64,
    /// EPC page faults.
    pub faults: u64,
    /// MPX bounds tables (0 elsewhere).
    pub bts: usize,
}

fn counters(m: &Measured) -> CounterSet {
    CounterSet {
        llc_pct: m.stats.llc_miss_pct(),
        faults: m.stats.epc_faults,
        bts: m.mpx_bts,
    }
}

/// One benchmark's sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Benchmark name.
    pub name: String,
    /// XS..XL cells.
    pub cells: Vec<Cell>,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Sweeps per benchmark.
    pub sweeps: Vec<Sweep>,
}

/// Runs the sweep over `sizes`.
pub fn run(preset: Preset, sizes: &[SizeClass], seed: u64) -> Fig8 {
    let mut sweeps = Vec::new();
    for name in BENCHMARKS {
        let w = sgxs_workloads::by_name(name).expect("benchmark registered");
        let mut cells = Vec::new();
        for &size in sizes {
            let mut rc = RunConfig::new(preset);
            rc.params.size = size;
            rc.params.threads = 8;
            rc.params.seed = seed;
            let sgxb = run_one(w.as_ref(), Scheme::SgxBounds, &rc);
            assert!(sgxb.ok(), "{name} sgxbounds failed: {:?}", sgxb.result);
            let base = run_one(w.as_ref(), Scheme::Baseline, &rc);
            let asan = run_one(w.as_ref(), Scheme::Asan, &rc);
            let mpx = run_one(w.as_ref(), Scheme::Mpx, &rc);
            cells.push(Cell {
                size,
                ws_bytes: base.peak_committed,
                vs_sgxbounds: [
                    base.ok().then(|| ratio(base.wall_cycles, sgxb.wall_cycles)),
                    mpx.ok().then(|| ratio(mpx.wall_cycles, sgxb.wall_cycles)),
                    asan.ok().then(|| ratio(asan.wall_cycles, sgxb.wall_cycles)),
                ],
                sgxb: counters(&sgxb),
                asan: asan.ok().then(|| counters(&asan)),
                mpx: mpx.ok().then(|| counters(&mpx)),
            });
        }
        sweeps.push(Sweep {
            name: name.to_owned(),
            cells,
        });
    }
    Fig8 { sweeps }
}

fn counter_json(cs: &CounterSet) -> Json {
    Json::obj(vec![
        ("llc_miss_pct", cs.llc_pct.into()),
        ("epc_faults", cs.faults.into()),
        ("bounds_tables", cs.bts.into()),
    ])
}

impl Fig8 {
    /// Machine-readable form for `results/bench.json` (covers Table 3's
    /// counters too).
    pub fn to_json(&self) -> Json {
        let sweeps: Vec<Json> = self
            .sweeps
            .iter()
            .map(|s| {
                let cells: Vec<Json> = s
                    .cells
                    .iter()
                    .map(|c| {
                        let opt = |x: &Option<CounterSet>| {
                            x.as_ref().map(counter_json).unwrap_or(Json::Null)
                        };
                        Json::obj(vec![
                            ("size", format!("{:?}", c.size).into()),
                            ("ws_bytes", c.ws_bytes.into()),
                            (
                                "vs_sgxbounds",
                                Json::obj(vec![
                                    ("sgx", crate::report::json_opt_f64(c.vs_sgxbounds[0])),
                                    ("mpx", crate::report::json_opt_f64(c.vs_sgxbounds[1])),
                                    ("asan", crate::report::json_opt_f64(c.vs_sgxbounds[2])),
                                ]),
                            ),
                            ("counters_sgxbounds", counter_json(&c.sgxb)),
                            ("counters_asan", opt(&c.asan)),
                            ("counters_mpx", opt(&c.mpx)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("benchmark", s.name.as_str().into()),
                    ("cells", Json::Arr(cells)),
                ])
            })
            .collect();
        Json::obj(vec![("sweeps", Json::Arr(sweeps))])
    }

    /// Renders Table 3 (counters for kmeans and matrixmul).
    pub fn table3(&self) -> String {
        let mut out =
            String::from("Table 3: counters with increasing working set (vs SGXBounds)\n");
        let mut t = Table::new(&[
            "bench/size",
            "ws",
            "asan dLLC%",
            "mpx dLLC%",
            "asan faults x",
            "mpx faults x",
            "# BTs",
        ]);
        for sweep in &self.sweeps {
            if sweep.name != "kmeans" && sweep.name != "matrix_multiply" {
                continue;
            }
            for c in &sweep.cells {
                let d = |x: Option<CounterSet>| {
                    x.map(|cs| format!("{:+.1}", cs.llc_pct - c.sgxb.llc_pct))
                        .unwrap_or_else(|| "crash".into())
                };
                let fx = |x: Option<CounterSet>| {
                    x.map(|cs| {
                        if c.sgxb.faults == 0 {
                            format!("{}", cs.faults)
                        } else {
                            format!("{:.1}", cs.faults as f64 / c.sgxb.faults as f64)
                        }
                    })
                    .unwrap_or_else(|| "crash".into())
                };
                t.row(vec![
                    format!("{} {:?}", sweep.name, c.size),
                    fmt_bytes(c.ws_bytes),
                    d(c.asan),
                    d(c.mpx),
                    fx(c.asan),
                    fx(c.mpx),
                    c.mpx
                        .map(|m| m.bts.to_string())
                        .unwrap_or_else(|| "crash".into()),
                ]);
            }
        }
        out.push_str(&t.render());
        out
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: overheads vs SGXBounds with increasing working set (8 threads)"
        )?;
        let mut t = Table::new(&["bench/size", "ws", "sgx", "mpx", "asan"]);
        for sweep in &self.sweeps {
            for c in &sweep.cells {
                t.row(vec![
                    format!("{} {:?}", sweep.name, c.size),
                    fmt_bytes(c.ws_bytes),
                    fmt_ratio(c.vs_sgxbounds[0]),
                    fmt_ratio(c.vs_sgxbounds[1]),
                    fmt_ratio(c.vs_sgxbounds[2]),
                ]);
            }
        }
        write!(f, "{}", t.render())
    }
}
