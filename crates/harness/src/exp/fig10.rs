//! Figure 10: SGXBounds optimization ablation — no optimizations /
//! safe-access only / hoisting only / both / both + flow-sensitive
//! elision (paper §4.4, §6.5; the `flow` column is this repo's
//! dataflow-tier extension).

use super::Effort;
use crate::report::{fmt_ratio, geomean, json_opt_f64, ratio, Table};
use crate::scheme::{run_one, run_one_obs, RunConfig, Scheme};
use sgxbounds::SbConfig;
use sgxs_obs::json::Json;
use sgxs_sim::obs::TraceRecorder;
use sgxs_sim::Preset;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Number of ablation variants (columns).
pub const NVARIANTS: usize = 5;

/// Ablation configurations in column order.
pub fn variants() -> [(&'static str, SbConfig); NVARIANTS] {
    let off = SbConfig {
        safe_access_opt: false,
        hoist_opt: false,
        boundless: false,
        narrow_bounds: false,
        site_markers: false,
        flow_elide: false,
    };
    [
        ("none", off),
        (
            "safe",
            SbConfig {
                safe_access_opt: true,
                ..off
            },
        ),
        (
            "hoist",
            SbConfig {
                hoist_opt: true,
                ..off
            },
        ),
        ("both", SbConfig::default()),
        (
            "flow",
            SbConfig {
                flow_elide: true,
                ..SbConfig::default()
            },
        ),
    ]
}

/// One benchmark row: overhead vs native SGX and dynamic check count per
/// variant.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Overheads (none, safe, hoist, both, flow).
    pub over: [Option<f64>; NVARIANTS],
    /// Dynamic bounds checks executed (site kinds other than `sb_safe`),
    /// from a separate profiled run so the timing runs stay unperturbed.
    pub checks: [Option<u64>; NVARIANTS],
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Rows.
    pub rows: Vec<Row>,
    /// Geometric means per variant.
    pub gmean: [Option<f64>; NVARIANTS],
}

/// Counts dynamic check executions for one (workload, config): the sum of
/// per-site exec counters over real check sites. `sb_safe` markers wrap a
/// bare tag strip — not a bounds check — and are excluded, so the metric
/// is exactly "checks the optimization tiers failed to remove".
fn count_checks(w: &dyn sgxs_workloads::Workload, cfg: SbConfig, rc: &RunConfig) -> Option<u64> {
    let rec = Rc::new(RefCell::new(TraceRecorder::new(1)));
    let run = run_one_obs(w, Scheme::SgxBoundsCustom(cfg), rc, rec.clone());
    if !run.measured.ok() {
        return None;
    }
    let rec = rec.borrow();
    let mut checks = 0;
    for (i, stat) in rec.sites().iter().enumerate() {
        let real = run.sites.get(i).is_none_or(|s| s.kind != "sb_safe");
        if real {
            checks += stat.execs;
        }
    }
    Some(checks)
}

/// Runs the ablation.
pub fn run(preset: Preset, effort: Effort, seed: u64) -> Fig10 {
    let mut rc = RunConfig::new(preset);
    rc.params.size = effort.size();
    rc.params.threads = 8;
    rc.params.seed = seed;
    let mut rows = Vec::new();
    for w in sgxs_workloads::phoenix_parsec() {
        let base = run_one(w.as_ref(), Scheme::Baseline, &rc);
        assert!(base.ok(), "{} baseline failed", w.name());
        let mut over = [None; NVARIANTS];
        let mut checks = [None; NVARIANTS];
        for (i, (_, cfg)) in variants().into_iter().enumerate() {
            let m = run_one(w.as_ref(), Scheme::SgxBoundsCustom(cfg), &rc);
            if m.ok() {
                over[i] = Some(ratio(m.wall_cycles, base.wall_cycles));
            }
            checks[i] = count_checks(w.as_ref(), cfg, &rc);
        }
        rows.push(Row {
            name: w.name().to_owned(),
            over,
            checks,
        });
    }
    let gmean = [0, 1, 2, 3, 4].map(|i| geomean(rows.iter().filter_map(|r| r.over[i])));
    Fig10 { rows, gmean }
}

fn names() -> [&'static str; NVARIANTS] {
    variants().map(|(n, _)| n)
}

fn variant_obj(vals: [Option<f64>; NVARIANTS]) -> Json {
    Json::obj(
        names()
            .into_iter()
            .zip(vals)
            .map(|(n, v)| (n, json_opt_f64(v)))
            .collect(),
    )
}

fn checks_obj(vals: [Option<u64>; NVARIANTS]) -> Json {
    Json::obj(
        names()
            .into_iter()
            .zip(vals)
            .map(|(n, v)| (n, json_opt_f64(v.map(|c| c as f64))))
            .collect(),
    )
}

impl Fig10 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("benchmark", r.name.as_str().into()),
                    ("over", variant_obj(r.over)),
                    ("checks", checks_obj(r.checks)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("rows", Json::Arr(rows)),
            ("gmean", variant_obj(self.gmean)),
        ])
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: SGXBounds overhead by optimization level (8 threads)"
        )?;
        let mut header = vec!["benchmark"];
        header.extend(names());
        header.push("checks(both)");
        header.push("checks(flow)");
        let mut t = Table::new(&header);
        let fmt_checks = |c: Option<u64>| c.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        for r in &self.rows {
            let mut cells = vec![r.name.clone()];
            cells.extend(r.over.iter().map(|o| fmt_ratio(*o)));
            cells.push(fmt_checks(r.checks[3]));
            cells.push(fmt_checks(r.checks[4]));
            t.row(cells);
        }
        let mut cells = vec!["gmean".to_owned()];
        cells.extend(self.gmean.iter().map(|o| fmt_ratio(*o)));
        cells.push("-".into());
        cells.push("-".into());
        t.row(cells);
        write!(f, "{}", t.render())
    }
}
