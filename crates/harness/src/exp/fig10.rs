//! Figure 10: SGXBounds optimization ablation — no optimizations /
//! safe-access only / hoisting only / both (paper §4.4, §6.5).

use super::Effort;
use crate::report::{fmt_ratio, geomean, json_opt_f64, ratio, Table};
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxbounds::SbConfig;
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use std::fmt;

/// Ablation configurations in column order.
pub fn variants() -> [(&'static str, SbConfig); 4] {
    [
        (
            "none",
            SbConfig {
                safe_access_opt: false,
                hoist_opt: false,
                boundless: false,
                narrow_bounds: false,
                site_markers: false,
            },
        ),
        (
            "safe",
            SbConfig {
                safe_access_opt: true,
                hoist_opt: false,
                boundless: false,
                narrow_bounds: false,
                site_markers: false,
            },
        ),
        (
            "hoist",
            SbConfig {
                safe_access_opt: false,
                hoist_opt: true,
                boundless: false,
                narrow_bounds: false,
                site_markers: false,
            },
        ),
        ("all", SbConfig::default()),
    ]
}

/// One benchmark row: overhead vs native SGX per variant.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Overheads (none, safe, hoist, all).
    pub over: [Option<f64>; 4],
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Rows.
    pub rows: Vec<Row>,
    /// Geometric means per variant.
    pub gmean: [Option<f64>; 4],
}

/// Runs the ablation.
pub fn run(preset: Preset, effort: Effort, seed: u64) -> Fig10 {
    let mut rc = RunConfig::new(preset);
    rc.params.size = effort.size();
    rc.params.threads = 8;
    rc.params.seed = seed;
    let mut rows = Vec::new();
    for w in sgxs_workloads::phoenix_parsec() {
        let base = run_one(w.as_ref(), Scheme::Baseline, &rc);
        assert!(base.ok(), "{} baseline failed", w.name());
        let mut over = [None; 4];
        for (i, (_, cfg)) in variants().into_iter().enumerate() {
            let m = run_one(w.as_ref(), Scheme::SgxBoundsCustom(cfg), &rc);
            if m.ok() {
                over[i] = Some(ratio(m.wall_cycles, base.wall_cycles));
            }
        }
        rows.push(Row {
            name: w.name().to_owned(),
            over,
        });
    }
    let gmean = [0, 1, 2, 3].map(|i| geomean(rows.iter().filter_map(|r| r.over[i])));
    Fig10 { rows, gmean }
}

fn variant_obj(vals: [Option<f64>; 4]) -> Json {
    Json::obj(vec![
        ("none", json_opt_f64(vals[0])),
        ("safe", json_opt_f64(vals[1])),
        ("hoist", json_opt_f64(vals[2])),
        ("all", json_opt_f64(vals[3])),
    ])
}

impl Fig10 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("benchmark", r.name.as_str().into()),
                    ("over", variant_obj(r.over)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("rows", Json::Arr(rows)),
            ("gmean", variant_obj(self.gmean)),
        ])
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: SGXBounds overhead by optimization level (8 threads)"
        )?;
        let mut t = Table::new(&["benchmark", "none", "safe", "hoist", "all"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_ratio(r.over[0]),
                fmt_ratio(r.over[1]),
                fmt_ratio(r.over[2]),
                fmt_ratio(r.over[3]),
            ]);
        }
        t.row(vec![
            "gmean".into(),
            fmt_ratio(self.gmean[0]),
            fmt_ratio(self.gmean[1]),
            fmt_ratio(self.gmean[2]),
            fmt_ratio(self.gmean[3]),
        ]);
        write!(f, "{}", t.render())
    }
}
