//! One module per table/figure of the paper's evaluation.

pub mod cases;
pub mod fig01;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod tab04;

use sgxs_workloads::SizeClass;

/// The input-generation seed every committed baseline was recorded with
/// (the `Params::new` default). `repro bench record` varies the seed per
/// replicate so same-rev runs expose the input-sensitivity noise floor;
/// everything else passes this constant for byte-stable outputs.
pub const DEFAULT_SEED: u64 = 42;

/// Experiment effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small inputs (benches and CI).
    Quick,
    /// Paper-shaped inputs for the preset.
    Full,
}

impl Effort {
    /// Size class used for single-size experiments.
    pub fn size(self) -> SizeClass {
        match self {
            Effort::Quick => SizeClass::S,
            Effort::Full => SizeClass::L,
        }
    }
}
