//! Figure 9: overheads of ASan and SGXBounds with 1 vs 4 threads.
//! SGXBounds is synchronization-free (§4.1), so its overhead must not grow
//! with thread count.

use super::Effort;
use crate::report::{fmt_ratio, geomean, json_opt_f64, ratio, Table};
use crate::scheme::{run_one, RunConfig, Scheme};
use sgxs_obs::json::Json;
use sgxs_sim::Preset;
use std::fmt;

/// One benchmark's overheads at both thread counts, in the order
/// `asan@1t, asan@4t, sgxbounds@1t, sgxbounds@4t`.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark.
    pub name: String,
    /// Overheads.
    pub over: [Option<f64>; 4],
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Rows.
    pub rows: Vec<Row>,
    /// Geometric means in the same order.
    pub gmean: [Option<f64>; 4],
}

/// Runs the experiment.
pub fn run(preset: Preset, effort: Effort, seed: u64) -> Fig9 {
    let mut rows = Vec::new();
    for w in sgxs_workloads::phoenix_parsec() {
        let mut over = [None; 4];
        for (ti, threads) in [1u32, 4].into_iter().enumerate() {
            let mut rc = RunConfig::new(preset);
            rc.params.size = effort.size();
            rc.params.threads = threads;
            rc.params.seed = seed;
            let base = run_one(w.as_ref(), Scheme::Baseline, &rc);
            assert!(base.ok(), "{} baseline failed", w.name());
            for (si, scheme) in [Scheme::Asan, Scheme::SgxBounds].into_iter().enumerate() {
                let m = run_one(w.as_ref(), scheme, &rc);
                if m.ok() {
                    over[si * 2 + ti] = Some(ratio(m.wall_cycles, base.wall_cycles));
                }
            }
        }
        rows.push(Row {
            name: w.name().to_owned(),
            over,
        });
    }
    let gmean = [0, 1, 2, 3].map(|i| geomean(rows.iter().filter_map(|r| r.over[i])));
    Fig9 { rows, gmean }
}

fn quad(vals: [Option<f64>; 4]) -> Json {
    Json::obj(vec![
        ("asan_1t", json_opt_f64(vals[0])),
        ("asan_4t", json_opt_f64(vals[1])),
        ("sgxbounds_1t", json_opt_f64(vals[2])),
        ("sgxbounds_4t", json_opt_f64(vals[3])),
    ])
}

impl Fig9 {
    /// Machine-readable form for `results/bench.json`.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("benchmark", r.name.as_str().into()),
                    ("over", quad(r.over)),
                ])
            })
            .collect();
        Json::obj(vec![("rows", Json::Arr(rows)), ("gmean", quad(self.gmean))])
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: overheads over native SGX with 1 and 4 threads"
        )?;
        let mut t = Table::new(&[
            "benchmark",
            "asan 1t",
            "asan 4t",
            "sgxbounds 1t",
            "sgxbounds 4t",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_ratio(r.over[0]),
                fmt_ratio(r.over[1]),
                fmt_ratio(r.over[2]),
                fmt_ratio(r.over[3]),
            ]);
        }
        t.row(vec![
            "gmean".into(),
            fmt_ratio(self.gmean[0]),
            fmt_ratio(self.gmean[1]),
            fmt_ratio(self.gmean[2]),
            fmt_ratio(self.gmean[3]),
        ]);
        write!(f, "{}", t.render())
    }
}
