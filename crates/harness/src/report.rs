//! Report helpers: overheads, geometric means, and aligned text tables
//! (the reproduction's equivalent of the paper's Fex-generated plots).

/// Ratio `x / base`, or `NaN` when the base is zero.
pub fn ratio(x: u64, base: u64) -> f64 {
    if base == 0 {
        f64::NAN
    } else {
        x as f64 / base as f64
    }
}

/// Geometric mean over finite positive values; `None` if none qualify.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Formats a ratio as the paper does: `1.17x`, or `crash`/`n/a` markers.
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) if v.is_finite() => format!("{v:.2}x"),
        _ => "crash".to_owned(),
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// `Option<f64>` as JSON; `null` encodes a crashed/missing measurement.
pub fn json_opt_f64(v: Option<f64>) -> sgxs_obs::json::Json {
    match v {
        Some(x) if x.is_finite() => sgxs_obs::json::Json::F64(x),
        _ => sgxs_obs::json::Json::Null,
    }
}

/// `Option<u64>` as JSON; `null` encodes a crashed/missing measurement.
pub fn json_opt_u64(v: Option<u64>) -> sgxs_obs::json::Json {
    match v {
        Some(x) => sgxs_obs::json::Json::U64(x),
        None => sgxs_obs::json::Json::Null,
    }
}

/// `[mpx, asan, sgxbounds]` measurement triple as a keyed JSON object (the
/// column order every scheme-comparison figure uses).
pub fn json_scheme_triple(vals: [Option<f64>; 3]) -> sgxs_obs::json::Json {
    sgxs_obs::json::Json::obj(vec![
        ("mpx", json_opt_f64(vals[0])),
        ("asan", json_opt_f64(vals[1])),
        ("sgxbounds", json_opt_f64(vals[2])),
    ])
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        let g = geomean([1.0, 1.0, 1.0]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_skips_nan_and_empty() {
        assert!(geomean([f64::NAN]).is_none());
        let g = geomean([f64::NAN, 3.0]).unwrap();
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "perf"]);
        t.row(vec!["kmeans".into(), "1.17x".into()]);
        t.row(vec!["x".into(), "10.00x".into()]);
        let s = t.render();
        assert!(s.contains("kmeans"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ratio(Some(1.234)), "1.23x");
        assert_eq!(fmt_ratio(None), "crash");
        assert_eq!(fmt_bytes(512), "512 B");
        assert!(fmt_bytes(3 << 20).contains("MB"));
    }
}
