//! In-process tests of the `repro` command line. Every subcommand
//! returns `Result<i32, String>` instead of exiting, so the acceptance
//! criteria of the analysis tier are pinned here without spawning
//! processes:
//!
//! * same-rev replicates must pass the `--gate`;
//! * a synthetic +30 % `perf_vs_sgx` shift must fail it with exit 1;
//! * the committed `results/history.jsonl` must gate cleanly against the
//!   committed `results/bench.json` (what the CI perf-gate job runs);
//! * `profile` → `render` round-trips through `sgxs-profile-v1`.

use sgxs_harness::cli;
use sgxs_perf::HistoryRecord;

/// Repo-relative path into `results/`.
fn results(name: &str) -> String {
    format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A fresh scratch directory per test.
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sgxs-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

/// A minimal valid bench document with one directional metric.
fn bench_doc(perf: f64) -> String {
    format!(
        r#"{{
  "schema": "sgxs-bench-v1",
  "preset": "Tiny",
  "effort": "Quick",
  "experiments": {{
    "fig1": {{
      "points": [
        {{"rows": 256, "perf_vs_sgx": {{"mpx": 18.8, "asan": 4.5, "sgxbounds": {perf}}}}}
      ]
    }}
  }}
}}"#
    )
}

#[test]
fn same_rev_replicates_pass_the_gate() {
    let dir = scratch("samerev");
    // Three replicates of the same rev, seed-level jitter only.
    let mut lines = String::new();
    for (seed, perf) in [(42u64, 1.170), (43, 1.173), (44, 1.168)] {
        let bench = sgxs_obs::json::Json::parse(&bench_doc(perf)).unwrap();
        lines.push_str(&HistoryRecord::new("r1", seed, bench).unwrap().to_line());
        lines.push('\n');
    }
    let hist = dir.join("history.jsonl");
    std::fs::write(&hist, lines).unwrap();
    let base = dir.join("base.json");
    std::fs::write(&base, bench_doc(1.171)).unwrap();

    let code = cli::run_compare(&args(&[
        base.to_str().unwrap(),
        hist.to_str().unwrap(),
        "--gate",
    ]))
    .unwrap();
    assert_eq!(code, 0, "same-rev replicates must not trip the gate");
}

#[test]
fn synthetic_thirty_percent_shift_fails_the_gate() {
    let dir = scratch("shift");
    let base = dir.join("base.json");
    let new = dir.join("new.json");
    std::fs::write(&base, bench_doc(1.17)).unwrap();
    std::fs::write(&new, bench_doc(1.521)).unwrap(); // +30 %

    let gated = cli::run_compare(&args(&[
        base.to_str().unwrap(),
        new.to_str().unwrap(),
        "--gate",
    ]))
    .unwrap();
    assert_eq!(gated, 1, "+30% perf_vs_sgx shift must fail the gate");

    // Without --gate the regression is reported but the exit stays 0.
    let ungated =
        cli::run_compare(&args(&[base.to_str().unwrap(), new.to_str().unwrap()])).unwrap();
    assert_eq!(ungated, 0);
}

#[test]
fn committed_history_gates_cleanly_against_committed_baseline() {
    let report = scratch("committed").join("compare.json");
    let code = cli::run_compare(&args(&[
        &results("bench.json"),
        &results("history.jsonl"),
        "--gate",
        "--json",
        report.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(code, 0, "committed artifacts must agree with each other");
    let text = std::fs::read_to_string(&report).unwrap();
    let j = sgxs_obs::json::Json::parse(&text).unwrap();
    assert_eq!(
        j.get("schema").and_then(sgxs_obs::json::Json::as_str),
        Some("sgxs-compare-v1")
    );
}

#[test]
fn profile_then_render_roundtrips() {
    let dir = scratch("render");
    let json = dir.join("profile.json");
    let folded = dir.join("profile.folded");
    let svg = dir.join("profile.svg");
    let code = cli::run_profile(&args(&[
        "sqlite",
        "--tiny",
        "--quick",
        "--json",
        json.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(code, 0);
    let code = cli::run_render(&args(&[
        json.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(code, 0);

    // Folded stacks are inferno-shaped and sum to the profiled cpu cycles.
    let doc = sgxs_obs::read::parse_profile(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let text = std::fs::read_to_string(&folded).unwrap();
    let total: u64 = text
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(
        total, doc.cpu_cycles,
        "folded counts must sum to cpu_cycles"
    );
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg ") && svg_text.trim_end().ends_with("</svg>"));
}

#[test]
fn usage_errors_are_errors_not_exits() {
    assert!(cli::run(&[]).is_err());
    assert!(cli::run(&args(&["no_such_experiment"])).is_err());
    assert!(cli::run(&args(&["compare", "only-one-side.json"])).is_err());
    assert!(cli::run(&args(&["render"])).is_err());
    assert!(cli::run(&args(&["bench"])).is_err());
    assert!(cli::run(&args(&["profile", "--scheme"])).is_err());

    // Malformed inputs surface as errors too.
    let dir = scratch("badinput");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    assert!(cli::run_compare(&args(&[bad.to_str().unwrap(), bad.to_str().unwrap()])).is_err());
    assert!(cli::run_render(&args(&[bad.to_str().unwrap()])).is_err());
}

#[test]
fn lint_gates_on_the_demo_and_passes_clean_workloads() {
    let dir = scratch("lint");
    let json = dir.join("lint.json");

    // The committed provably-OOB demo must fail the gate and produce a
    // well-formed sgxs-lint-v1 document.
    let code = cli::run(&args(&[
        "lint",
        "--demo-oob",
        "--json",
        json.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(code, 1, "demo OOB must exit nonzero");
    let doc = sgxs_obs::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("sgxs-lint-v1")
    );
    assert_eq!(doc.get("proved_oob").and_then(|v| v.as_u64()), Some(1));
    let modules = doc.get("modules").and_then(|v| v.as_arr()).unwrap();
    let findings = modules[0].get("findings").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.get("kind").and_then(|v| v.as_str()), Some("load"));
    assert_eq!(f.get("offset_lo").and_then(|v| v.as_u64()), Some(40));
    assert!(f
        .get("ir")
        .and_then(|v| v.as_str())
        .is_some_and(|s| s.contains("load")));

    // Clean workloads lint green.
    let code = cli::run(&args(&["lint", "kmeans", "histogram"])).unwrap();
    assert_eq!(code, 0, "clean workloads must lint green");

    // Unknown workloads are usage errors.
    assert!(cli::run(&args(&["lint", "no_such_workload"])).is_err());
}

#[test]
fn supervised_fuzz_cli_pins_worker_byte_identity_and_quarantine_semantics() {
    let dir = scratch("super");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    // Worker count never leaks into the artifact.
    let w1 = p("w1.json");
    let w2 = p("w2.json");
    let code = cli::run(&args(&[
        "fuzz",
        "--seeds",
        "6",
        "--workers",
        "1",
        "--json",
        &w1,
    ]))
    .unwrap();
    assert_eq!(code, 0);
    let code = cli::run(&args(&[
        "fuzz",
        "--seeds",
        "6",
        "--workers",
        "2",
        "--json",
        &w2,
    ]))
    .unwrap();
    assert_eq!(code, 0);
    assert_eq!(
        std::fs::read_to_string(&w1).unwrap(),
        std::fs::read_to_string(&w2).unwrap(),
        "fuzz doc diverged between 1 and 2 workers"
    );

    // A quarantined seed fails the run unless --quarantine tolerates it,
    // and the tolerated run still accounts for it in the document.
    let code = cli::run(&args(&["fuzz", "--seeds", "6", "--demo-panic", "2"])).unwrap();
    assert_eq!(code, 1, "quarantine without --quarantine must exit 1");
    let quar = p("quar.json");
    let code = cli::run(&args(&[
        "fuzz",
        "--seeds",
        "6",
        "--demo-panic",
        "2",
        "--quarantine",
        "--json",
        &quar,
    ]))
    .unwrap();
    assert_eq!(code, 0, "--quarantine must tolerate the demo panic");
    let doc = sgxs_obs::json::Json::parse(&std::fs::read_to_string(&quar).unwrap()).unwrap();
    let cov = doc.get("coverage").expect("fuzz doc has coverage");
    assert_eq!(cov.get("completed").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(cov.get("quarantined").and_then(|v| v.as_u64()), Some(1));
    let q = doc.get("quarantine").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(q[0].get("class").and_then(|v| v.as_str()), Some("panic"));

    // Graceful stop exits EXIT_STOPPED and resume completes the campaign
    // to the byte-identical uninterrupted artifact.
    let journal = p("j.jsonl");
    let stopped = p("stopped.json");
    let code = cli::run(&args(&[
        "fuzz",
        "--seeds",
        "6",
        "--workers",
        "2",
        "--journal",
        &journal,
        "--stop-after",
        "2",
        "--json",
        &stopped,
    ]))
    .unwrap();
    assert_eq!(code, cli::EXIT_STOPPED, "early stop must exit distinctly");
    let resumed = p("resumed.json");
    let code = cli::run(&args(&[
        "fuzz", "--seeds", "6", "--resume", &journal, "--json", &resumed,
    ]))
    .unwrap();
    assert_eq!(code, 0);
    assert_eq!(
        std::fs::read_to_string(&resumed).unwrap(),
        std::fs::read_to_string(&w1).unwrap(),
        "resumed fuzz doc diverged from the uninterrupted artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_chaos_cli_round_trips_through_the_validating_reader() {
    let dir = scratch("super-chaos");
    let out = dir.join("chaos.json").to_string_lossy().into_owned();
    let code = cli::run(&args(&[
        "chaos",
        "--seeds",
        "4",
        "--requests",
        "16",
        "--workers",
        "2",
        "--demo-panic",
        "2",
        "--quarantine",
        "--json",
        &out,
    ]))
    .unwrap();
    assert_eq!(code, 0);
    // The emitted document — coverage and quarantine blocks included —
    // survives the reader's cross-checks (coverage sums, runs==completed,
    // quarantine list length).
    let doc = sgxs_obs::read::parse_chaos(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(doc.seeds, 4);
    assert_eq!(doc.combos[0].runs, 3, "one seed quarantined, three ran");
    let _ = std::fs::remove_dir_all(&dir);
}
