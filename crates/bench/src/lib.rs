//! Criterion benchmark support: shared setup helpers so every bench
//! regenerates its paper artifact once (printed to stdout) and then times
//! representative runs.

use sgxs_harness::{run_one, Measured, RunConfig, Scheme};
use sgxs_sim::Preset;
use sgxs_workloads::SizeClass;

/// The preset benches run at (fast enough for `cargo bench`).
pub const BENCH_PRESET: Preset = Preset::Tiny;

/// Run configuration used by timing loops: smallest size, 8 threads.
pub fn bench_rc() -> RunConfig {
    let mut rc = RunConfig::new(BENCH_PRESET);
    rc.params.size = SizeClass::XS;
    rc.params.threads = 8;
    rc
}

/// Runs `workload` under `scheme` at bench scale; panics on baseline
/// failure so benches fail loudly.
pub fn timed_run(name: &str, scheme: Scheme) -> Measured {
    let w = sgxs_workloads::by_name(name).expect("workload exists");
    run_one(w.as_ref(), scheme, &bench_rc())
}
