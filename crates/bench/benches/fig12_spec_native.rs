//! Regenerates Figure 12 (SPEC outside the enclave).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{bench_rc, BENCH_PRESET};
use sgxs_harness::exp::{fig12, Effort, DEFAULT_SEED};
use sgxs_harness::{run_one, Scheme};
use sgxs_sim::Mode;

fn bench(c: &mut Criterion) {
    println!("{}", fig12::run(BENCH_PRESET, Effort::Quick, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for scheme in [Scheme::SgxBounds, Scheme::Asan] {
        g.bench_function(format!("hmmer_native/{}", scheme.label()), |b| {
            let w = sgxs_workloads::by_name("hmmer").unwrap();
            let mut rc = bench_rc();
            rc.mode = Mode::Native;
            b.iter(|| run_one(w.as_ref(), scheme, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
