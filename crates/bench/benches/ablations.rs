//! Ablations of SGXBounds design choices (DESIGN.md §5):
//!
//! - `ablate_epc`: EPC-size sensitivity of a thrashing workload under each
//!   scheme — shows where ASan's shadow pushes the working set over the
//!   cliff while SGXBounds stays on the baseline's side.
//! - `ablate_boundless`: fail-stop vs boundless overhead on a clean run
//!   (the LRU cache must cost nothing off the attack path).
//! - `ablate_lb_layout`: full checks vs UB-only checks isolate the cost of
//!   the appended-LB load that the layout makes cache-cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use sgxbounds::SbConfig;
use sgxs_bench::{bench_rc, BENCH_PRESET};
use sgxs_harness::{run_one, RunConfig, Scheme};
use sgxs_workloads::SizeClass;

fn epc_sweep() {
    println!("\nAblation: kmeans cycles by EPC size (scheme x EPC)");
    let w = sgxs_workloads::by_name("kmeans").unwrap();
    for epc_kb in [256u64, 736, 2048, 8192] {
        for scheme in [Scheme::Baseline, Scheme::SgxBounds, Scheme::Asan] {
            let mut rc = RunConfig::new(BENCH_PRESET);
            rc.params.size = SizeClass::M;
            rc.epc_override = Some(epc_kb << 10);
            let m = run_one(w.as_ref(), scheme, &rc);
            println!(
                "  epc={epc_kb}KB {:<10} cycles={} faults={}",
                scheme.label(),
                m.wall_cycles,
                m.stats.epc_faults
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    epc_sweep();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    // Boundless on/off on a clean (attack-free) run.
    for (label, boundless) in [("failstop", false), ("boundless", true)] {
        g.bench_function(format!("kmeans/{label}"), |b| {
            let w = sgxs_workloads::by_name("kmeans").unwrap();
            let cfg = SbConfig {
                boundless,
                ..SbConfig::default()
            };
            b.iter(|| run_one(w.as_ref(), Scheme::SgxBoundsCustom(cfg), &bench_rc()))
        });
    }
    // LB-load cost: optimizations off (full checks incl. LB load) vs
    // hoisting on (LB checks gone from hot loops).
    for (label, cfg) in [
        (
            "full_checks",
            SbConfig {
                safe_access_opt: false,
                hoist_opt: false,
                boundless: false,
                narrow_bounds: false,
                site_markers: false,
                flow_elide: false,
            },
        ),
        (
            "hoisted",
            SbConfig {
                safe_access_opt: true,
                hoist_opt: true,
                boundless: false,
                narrow_bounds: false,
                site_markers: false,
                flow_elide: false,
            },
        ),
    ] {
        g.bench_function(format!("linear_regression/{label}"), |b| {
            let w = sgxs_workloads::by_name("linear_regression").unwrap();
            b.iter(|| run_one(w.as_ref(), Scheme::SgxBoundsCustom(cfg), &bench_rc()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
