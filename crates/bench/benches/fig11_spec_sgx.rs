//! Regenerates Figure 11 (SPEC inside the enclave).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{timed_run, BENCH_PRESET};
use sgxs_harness::exp::{fig11, Effort, DEFAULT_SEED};
use sgxs_harness::Scheme;

fn bench(c: &mut Criterion) {
    println!("{}", fig11::run(BENCH_PRESET, Effort::Quick, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for scheme in [Scheme::Baseline, Scheme::SgxBounds, Scheme::Asan] {
        g.bench_function(format!("mcf/{}", scheme.label()), |b| {
            b.iter(|| timed_run("mcf", scheme))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
