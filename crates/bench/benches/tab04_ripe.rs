//! Regenerates Table 4 (RIPE) and times the full matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::BENCH_PRESET;
use sgxs_harness::exp::{tab04, DEFAULT_SEED};

fn bench(c: &mut Criterion) {
    let t = tab04::run(BENCH_PRESET, DEFAULT_SEED);
    println!("{t}");
    assert_eq!(t.prevented(), [2, 8, 8], "Table 4 must match the paper");
    let mut g = c.benchmark_group("tab04");
    g.sample_size(10);
    g.bench_function("ripe_matrix", |b| {
        b.iter(|| tab04::run(BENCH_PRESET, DEFAULT_SEED))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
