//! Regenerates Figure 7 (Phoenix + PARSEC overheads) and times
//! representative benchmark/scheme cells.

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{timed_run, BENCH_PRESET};
use sgxs_harness::exp::{fig07, Effort, DEFAULT_SEED};
use sgxs_harness::Scheme;

fn bench(c: &mut Criterion) {
    println!("{}", fig07::run(BENCH_PRESET, Effort::Quick, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig07");
    g.sample_size(10);
    for (name, scheme) in [
        ("kmeans", Scheme::Baseline),
        ("kmeans", Scheme::SgxBounds),
        ("kmeans", Scheme::Asan),
        ("kmeans", Scheme::Mpx),
        ("pca", Scheme::SgxBounds),
        ("pca", Scheme::Mpx),
    ] {
        g.bench_function(format!("{name}/{}", scheme.label()), |b| {
            b.iter(|| timed_run(name, scheme))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
