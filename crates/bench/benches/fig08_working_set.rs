//! Regenerates Figure 8 (overheads vs SGXBounds by working-set size).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::BENCH_PRESET;
use sgxs_harness::exp::{fig08, DEFAULT_SEED};
use sgxs_harness::{run_one, RunConfig, Scheme};
use sgxs_workloads::SizeClass;

fn bench(c: &mut Criterion) {
    let f8 = fig08::run(
        BENCH_PRESET,
        &[SizeClass::XS, SizeClass::M, SizeClass::XL],
        DEFAULT_SEED,
    );
    println!("{f8}");
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    for size in [SizeClass::XS, SizeClass::XL] {
        g.bench_function(format!("kmeans/sgxbounds/{size:?}"), |b| {
            let w = sgxs_workloads::by_name("kmeans").unwrap();
            let mut rc = RunConfig::new(BENCH_PRESET);
            rc.params.size = size;
            b.iter(|| run_one(w.as_ref(), Scheme::SgxBounds, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
