//! Regenerates Figure 10 (optimization ablation) and times the variants.

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{bench_rc, BENCH_PRESET};
use sgxs_harness::exp::{fig10, Effort, DEFAULT_SEED};
use sgxs_harness::{run_one, Scheme};

fn bench(c: &mut Criterion) {
    println!("{}", fig10::run(BENCH_PRESET, Effort::Quick, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (label, cfg) in fig10::variants() {
        g.bench_function(format!("kmeans/{label}"), |b| {
            let w = sgxs_workloads::by_name("kmeans").unwrap();
            b.iter(|| run_one(w.as_ref(), Scheme::SgxBoundsCustom(cfg), &bench_rc()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
