//! Regenerates Figure 13 (server throughput/latency + memory table).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{bench_rc, BENCH_PRESET};
use sgxs_harness::exp::{fig13, DEFAULT_SEED};
use sgxs_harness::{run_one, Scheme};
use sgxs_workloads::apps::memcached::Memcached;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        fig13::run(BENCH_PRESET, &[1, 4, 16], 16, DEFAULT_SEED)
    );
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for scheme in [Scheme::Baseline, Scheme::SgxBounds, Scheme::Mpx] {
        g.bench_function(format!("memcached/{}", scheme.label()), |b| {
            let w = Memcached {
                clients_override: Some(4),
                requests_override: Some(256),
            };
            b.iter(|| run_one(&w, scheme, &bench_rc()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
