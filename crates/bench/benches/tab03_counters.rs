//! Regenerates Table 3 (hardware counters across working-set sizes).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{timed_run, BENCH_PRESET};
use sgxs_harness::exp::{fig08, DEFAULT_SEED};
use sgxs_harness::Scheme;
use sgxs_workloads::SizeClass;

fn bench(c: &mut Criterion) {
    let f8 = fig08::run(
        BENCH_PRESET,
        &[SizeClass::XS, SizeClass::M, SizeClass::XL],
        DEFAULT_SEED,
    );
    println!("{}", f8.table3());
    let mut g = c.benchmark_group("tab03");
    g.sample_size(10);
    g.bench_function("matrix_multiply/mpx", |b| {
        b.iter(|| timed_run("matrix_multiply", Scheme::Mpx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
