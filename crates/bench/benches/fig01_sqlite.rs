//! Regenerates Figure 1 (SQLite speedtest sweep) and times one point.

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::{bench_rc, BENCH_PRESET};
use sgxs_harness::exp::{fig01, DEFAULT_SEED};
use sgxs_harness::{run_one, Scheme};
use sgxs_workloads::apps::sqlite::Sqlite;

fn bench(c: &mut Criterion) {
    println!("{}", fig01::run(BENCH_PRESET, 3, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig01");
    g.sample_size(10);
    for scheme in [Scheme::Baseline, Scheme::SgxBounds, Scheme::Asan] {
        g.bench_function(format!("sqlite/{}", scheme.label()), |b| {
            let w = Sqlite::with_rows(2000);
            b.iter(|| run_one(&w, scheme, &bench_rc()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
