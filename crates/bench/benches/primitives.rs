//! Microbenchmarks of the runtime primitives: tagged-pointer operations,
//! the boundless LRU, the allocator, and the cache/EPC models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sgxbounds::tagged;
use sgxs_sim::{cache::Cache, Machine, MachineConfig, Mode, Preset};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");

    g.bench_function("tagged/make_extract_check", |b| {
        b.iter(|| {
            let t = tagged::make(black_box(0x1000), black_box(0x2000));
            let p = tagged::ptr_of(t);
            let ub = tagged::ub_of(t);
            black_box(tagged::violates(p, 8, 0x1000, ub))
        })
    });

    g.bench_function("cache/access_hit", |b| {
        let mut cache = Cache::new(32 << 10, 8);
        cache.access(0x1000);
        b.iter(|| black_box(cache.access(black_box(0x1000))))
    });

    g.bench_function("machine/load_l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        m.store(0, 0x1000, 8, 7).unwrap();
        b.iter(|| black_box(m.load(0, black_box(0x1000), 8).unwrap()))
    });

    g.bench_function("machine/load_epc_thrash", |b| {
        let mut m = Machine::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 4096) % (8 << 20);
            black_box(m.load(0, a, 8).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
