//! Regenerates Figure 9 (1 vs 4 thread overheads).

use criterion::{criterion_group, criterion_main, Criterion};
use sgxs_bench::BENCH_PRESET;
use sgxs_harness::exp::{fig09, Effort, DEFAULT_SEED};
use sgxs_harness::{run_one, RunConfig, Scheme};
use sgxs_workloads::SizeClass;

fn bench(c: &mut Criterion) {
    println!("{}", fig09::run(BENCH_PRESET, Effort::Quick, DEFAULT_SEED));
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    for threads in [1u32, 4] {
        g.bench_function(format!("matrix_multiply/sgxbounds/{threads}t"), |b| {
            let w = sgxs_workloads::by_name("matrix_multiply").unwrap();
            let mut rc = RunConfig::new(BENCH_PRESET);
            rc.params.size = SizeClass::XS;
            rc.params.threads = threads;
            b.iter(|| run_one(w.as_ref(), Scheme::SgxBounds, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
