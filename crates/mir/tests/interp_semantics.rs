//! Focused interpreter-semantics tests: casts, atomics, selects, signed
//! arithmetic, and narrow memory widths.

use sgxs_mir::{BinOp, CastKind, CmpOp, Module, ModuleBuilder, RunOutcome, Trap, Ty, Vm, VmConfig};
use sgxs_sim::{MachineConfig, Mode, Preset};

fn run(m: &Module, args: &[u64]) -> RunOutcome {
    sgxs_mir::verify(m).unwrap();
    let mut vm = Vm::new(
        m,
        VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Native)),
    );
    vm.run("main", args)
}

fn expr(build: impl FnOnce(&mut sgxs_mir::FuncBuilder<'_>) -> sgxs_mir::Reg) -> u64 {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let r = build(fb);
        fb.ret(Some(r.into()));
    });
    run(&mb.finish(), &[]).expect_ok()
}

#[test]
fn sign_extensions() {
    assert_eq!(
        expr(|fb| fb.cast(CastKind::Sext(8), 0xFFu64)),
        u64::MAX,
        "sext i8 -1"
    );
    assert_eq!(expr(|fb| fb.cast(CastKind::Sext(8), 0x7Fu64)), 0x7F);
    assert_eq!(
        expr(|fb| fb.cast(CastKind::Sext(16), 0x8000u64)),
        0xFFFF_FFFF_FFFF_8000
    );
    assert_eq!(
        expr(|fb| fb.cast(CastKind::Sext(32), 0xFFFF_FFFFu64)),
        u64::MAX
    );
}

#[test]
fn truncation_masks_low_bits() {
    assert_eq!(expr(|fb| fb.cast(CastKind::Trunc(8), 0x1234u64)), 0x34);
    assert_eq!(
        expr(|fb| fb.cast(CastKind::Trunc(32), u64::MAX)),
        0xFFFF_FFFF
    );
}

#[test]
fn float_int_conversions() {
    assert_eq!(
        expr(|fb| {
            let f = fb.cast(CastKind::SiToF, (-3i64) as u64);
            fb.cast(CastKind::FToSi, f)
        }),
        (-3i64) as u64
    );
    assert_eq!(
        expr(|fb| {
            let f = fb.cast(CastKind::UiToF, 41u64);
            let g = fb.fadd(f, fb.fconst(1.25));
            fb.cast(CastKind::FToSi, g)
        }),
        42
    );
}

#[test]
fn signed_ops_and_comparisons() {
    assert_eq!(
        expr(|fb| fb.bin(BinOp::SDiv, (-9i64) as u64, 2u64)),
        (-4i64) as u64
    );
    assert_eq!(
        expr(|fb| fb.bin(BinOp::SRem, (-9i64) as u64, 2u64)),
        (-1i64) as u64
    );
    assert_eq!(
        expr(|fb| fb.bin(BinOp::AShr, (-8i64) as u64, 1u64)),
        (-4i64) as u64
    );
    assert_eq!(expr(|fb| fb.cmp(CmpOp::SLt, (-1i64) as u64, 0u64)), 1);
    assert_eq!(expr(|fb| fb.cmp(CmpOp::ULt, (-1i64) as u64, 0u64)), 0);
}

#[test]
fn atomic_cas_success_and_failure() {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let s = fb.slot("cell", 8);
        let p = fb.slot_addr(s);
        fb.store(Ty::I64, p, 10u64);
        // CAS(10 -> 20) succeeds, old = 10.
        let old1 = fb.atomic_cas(Ty::I64, p, 10u64, 20u64);
        // CAS(10 -> 30) fails (cell is 20), old = 20, cell unchanged.
        let old2 = fb.atomic_cas(Ty::I64, p, 10u64, 30u64);
        let cur = fb.load(Ty::I64, p);
        let a = fb.add(old1, old2);
        let b = fb.add(a, cur);
        fb.ret(Some(b.into())); // 10 + 20 + 20 = 50.
    });
    assert_eq!(run(&mb.finish(), &[]).expect_ok(), 50);
}

#[test]
fn atomic_rmw_variants() {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let s = fb.slot("cell", 8);
        let p = fb.slot_addr(s);
        fb.store(Ty::I64, p, 0b1100u64);
        let old_and = fb.atomic_rmw(BinOp::And, Ty::I64, p, 0b1010u64); // 12 -> 8.
        let old_or = fb.atomic_rmw(BinOp::Or, Ty::I64, p, 0b0001u64); // 8 -> 9.
        let old_xor = fb.atomic_rmw(BinOp::Xor, Ty::I64, p, 0b1111u64); // 9 -> 6.
        let cur = fb.load(Ty::I64, p);
        let a = fb.add(old_and, old_or);
        let b = fb.add(a, old_xor);
        let c = fb.add(b, cur);
        fb.ret(Some(c.into())); // 12 + 8 + 9 + 6 = 35.
    });
    assert_eq!(run(&mb.finish(), &[]).expect_ok(), 35);
}

#[test]
fn narrow_widths_roundtrip_through_memory() {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let s = fb.slot("buf", 16);
        let p = fb.slot_addr(s);
        fb.store(Ty::I64, p, 0u64);
        fb.store(Ty::I8, p, 0x1FFu64); // Truncated to 0xFF.
        let q2 = fb.gep(p, 0u64, 1, 2);
        fb.store(Ty::I16, q2, 0xABCDu64);
        let q4 = fb.gep(p, 0u64, 1, 4);
        fb.store(Ty::I32, q4, 0xDEAD_BEEFu64);
        let whole = fb.load(Ty::I64, p);
        fb.ret(Some(whole.into()));
    });
    assert_eq!(run(&mb.finish(), &[]).expect_ok(), 0xDEAD_BEEF_ABCD_00FF);
}

#[test]
fn select_picks_sides() {
    assert_eq!(expr(|fb| fb.select(1u64, 7u64, 9u64)), 7);
    assert_eq!(expr(|fb| fb.select(0u64, 7u64, 9u64)), 9);
    // Any nonzero condition is true.
    assert_eq!(expr(|fb| fb.select(0xF0u64, 7u64, 9u64)), 7);
}

#[test]
fn fmin_fmax_and_fabs() {
    assert_eq!(
        expr(|fb| {
            let m = fb.fbin(sgxs_mir::FBinOp::Min, fb.fconst(2.0), fb.fconst(-3.0));
            let a = fb.cast(CastKind::FAbs, m);
            fb.cast(CastKind::FToSi, a)
        }),
        3
    );
    assert_eq!(
        expr(|fb| {
            let m = fb.fbin(sgxs_mir::FBinOp::Max, fb.fconst(2.0), fb.fconst(-3.0));
            fb.cast(CastKind::FToSi, m)
        }),
        2
    );
}

#[test]
fn deadlock_is_reported() {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let s = fb.slot("m", 8);
        let p = fb.slot_addr(s);
        fb.intr_void("mutex_lock", &[p.into()]);
        // Joining a thread that blocks on the mutex we hold.
        let waiter = fb.func_addr(sgxs_mir::FuncId(1));
        let t = fb.intr("spawn", &[waiter.into(), p.into()]);
        fb.intr("join", &[t.into()]);
        fb.ret(Some(0u64.into()));
    });
    mb.func("waiter", &[Ty::Ptr], Some(Ty::I64), |fb| {
        let p = fb.param(0);
        fb.intr_void("mutex_lock", &[p.into()]);
        fb.ret(Some(0u64.into()));
    });
    let out = run(&mb.finish(), &[]);
    assert!(matches!(out.result, Err(Trap::Deadlock)));
}

#[test]
fn unreachable_traps() {
    let mut mb = ModuleBuilder::new("t");
    mb.func("main", &[], Some(Ty::I64), |fb| {
        let b = fb.block();
        fb.jmp(b);
        // Block b keeps its default Unreachable terminator.
        let _ = b;
    });
    let out = run(&mb.finish(), &[]);
    assert!(matches!(out.result, Err(Trap::Unreachable)));
}
