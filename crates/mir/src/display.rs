//! Textual printer for the IR, for debugging and golden tests.

use crate::ir::{AccessAttrs, Block, Function, Inst, Module, Operand, SiteMarker, Term};
use std::fmt::Write as _;

fn attrs(a: &AccessAttrs) -> String {
    let mut s = String::new();
    if a.safe {
        s.push_str(" safe");
    }
    if a.no_lower {
        s.push_str(" nolb");
    }
    if a.lowered {
        s.push_str(" lowered");
    }
    s
}

fn op(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => {
            if *v > 0xFFFF {
                format!("{v:#x}")
            } else {
                format!("{v}")
            }
        }
    }
}

fn inst(i: &Inst, out: &mut String) {
    match i {
        Inst::Bin { op: o, dst, a, b } => {
            let _ = writeln!(out, "    r{} = {:?} {}, {}", dst.0, o, op(a), op(b));
        }
        Inst::Cmp { op: o, dst, a, b } => {
            let _ = writeln!(out, "    r{} = icmp {:?} {}, {}", dst.0, o, op(a), op(b));
        }
        Inst::FBin { op: o, dst, a, b } => {
            let _ = writeln!(out, "    r{} = f{:?} {}, {}", dst.0, o, op(a), op(b));
        }
        Inst::FCmp { op: o, dst, a, b } => {
            let _ = writeln!(out, "    r{} = fcmp {:?} {}, {}", dst.0, o, op(a), op(b));
        }
        Inst::Cast { kind, dst, src } => {
            let _ = writeln!(out, "    r{} = cast {:?} {}", dst.0, kind, op(src));
        }
        Inst::Select { dst, cond, t, f } => {
            let _ = writeln!(
                out,
                "    r{} = select {}, {}, {}",
                dst.0,
                op(cond),
                op(t),
                op(f)
            );
        }
        Inst::Gep {
            dst,
            base,
            index,
            scale,
            disp,
            inbounds,
        } => {
            let _ = writeln!(
                out,
                "    r{} = gep{} {} + {}*{} + {}",
                dst.0,
                if *inbounds { " inbounds" } else { "" },
                op(base),
                op(index),
                scale,
                disp
            );
        }
        Inst::Load {
            dst,
            addr,
            ty,
            attrs: a,
        } => {
            let _ = writeln!(
                out,
                "    r{} = load {} [{}]{}",
                dst.0,
                ty,
                op(addr),
                attrs(a)
            );
        }
        Inst::Store {
            addr,
            val,
            ty,
            attrs: a,
        } => {
            let _ = writeln!(
                out,
                "    store {} {}, [{}]{}",
                ty,
                op(val),
                op(addr),
                attrs(a)
            );
        }
        Inst::AtomicRmw {
            op: o,
            dst,
            addr,
            val,
            ty,
            attrs: a,
        } => {
            let _ = writeln!(
                out,
                "    r{} = atomicrmw {:?} {} [{}], {}{}",
                dst.0,
                o,
                ty,
                op(addr),
                op(val),
                attrs(a)
            );
        }
        Inst::AtomicCas {
            dst,
            addr,
            expected,
            new,
            ty,
            attrs: a,
        } => {
            let _ = writeln!(
                out,
                "    r{} = cmpxchg {} [{}], {}, {}{}",
                dst.0,
                ty,
                op(addr),
                op(expected),
                op(new),
                attrs(a)
            );
        }
        Inst::ReadLocal { dst, local } => {
            let _ = writeln!(out, "    r{} = l{}", dst.0, local.0);
        }
        Inst::WriteLocal { local, val } => {
            let _ = writeln!(out, "    l{} = {}", local.0, op(val));
        }
        Inst::SlotAddr { dst, slot } => {
            let _ = writeln!(out, "    r{} = &slot{}", dst.0, slot.0);
        }
        Inst::GlobalAddr { dst, global } => {
            let _ = writeln!(out, "    r{} = &global{}", dst.0, global.0);
        }
        Inst::FuncAddr { dst, func } => {
            let _ = writeln!(out, "    r{} = &func{}", dst.0, func.0);
        }
        Inst::Call { dst, func, args } => {
            let args: Vec<_> = args.iter().map(op).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(out, "    r{} = call f{}({})", d.0, func.0, args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "    call f{}({})", func.0, args.join(", "));
                }
            }
        }
        Inst::CallIndirect { dst, target, args } => {
            let args: Vec<_> = args.iter().map(op).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "    r{} = call *{}({})",
                        d.0,
                        op(target),
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "    call *{}({})", op(target), args.join(", "));
                }
            }
        }
        Inst::CallIntrinsic {
            dst,
            intrinsic,
            args,
        } => {
            let args: Vec<_> = args.iter().map(op).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "    r{} = intrinsic #{}({})",
                        d.0,
                        intrinsic.0,
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "    intrinsic #{}({})", intrinsic.0, args.join(", "));
                }
            }
        }
        Inst::Site { site, marker } => {
            let which = match marker {
                SiteMarker::Begin => "begin",
                SiteMarker::End => "end",
            };
            let _ = writeln!(out, "    site {which} #{site}");
        }
    }
}

fn block(bi: usize, b: &Block, out: &mut String) {
    let _ = writeln!(out, "  b{bi}:");
    for i in &b.insts {
        inst(i, out);
    }
    match &b.term {
        Term::Jmp(t) => {
            let _ = writeln!(out, "    jmp b{}", t.0);
        }
        Term::Br { cond, t, f } => {
            let _ = writeln!(out, "    br {}, b{}, b{}", op(cond), t.0, f.0);
        }
        Term::Ret(Some(v)) => {
            let _ = writeln!(out, "    ret {}", op(v));
        }
        Term::Ret(None) => {
            let _ = writeln!(out, "    ret");
        }
        Term::Unreachable => {
            let _ = writeln!(out, "    unreachable");
        }
    }
}

/// Renders a single instruction as one trimmed line of text (the same
/// syntax `print_function` uses), for lint diagnostics and snapshots.
pub fn print_inst(i: &Inst) -> String {
    let mut out = String::new();
    inst(i, &mut out);
    out.trim().to_owned()
}

/// Renders one function as text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<_> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("r{i}: {t}"))
        .collect();
    let ret = f.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    let _ = writeln!(out, "fn {}({}){} {{", f.name, params.join(", "), ret);
    for (si, s) in f.slots.iter().enumerate() {
        let _ = writeln!(
            out,
            "  slot{si} {}: {} bytes (padded {})",
            s.name, s.size, s.padded_size
        );
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        block(bi, b, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Renders a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "module {} (hardening: {})",
        m.name,
        m.hardening.unwrap_or("none")
    );
    for (gi, g) in m.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "global{gi} {}: {} bytes (padded {})",
            g.name, g.size, g.padded_size
        );
    }
    for f in &m.funcs {
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ty::Ty;

    #[test]
    fn prints_without_panicking_and_contains_structure() {
        let mut mb = ModuleBuilder::new("demo");
        mb.global("g", 16, &[1, 2, 3]);
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let s = fb.slot("buf", 32);
            let p = fb.slot_addr(s);
            fb.count_loop(0u64, 4u64, |fb, i| {
                let q = fb.gep(p, i, 8, 0);
                fb.store(Ty::I64, q, i);
            });
            let v = fb.load(Ty::I64, p);
            fb.ret(Some(v.into()));
        });
        let text = print_module(&mb.finish());
        assert!(text.contains("module demo"));
        assert!(text.contains("fn main"));
        assert!(text.contains("gep"));
        assert!(text.contains("store i64"));
        assert!(text.contains("br "));
    }

    #[test]
    fn access_attributes_snapshot() {
        // Pins the exact textual form of `safe`/`nolb`/`lowered` so lint
        // diagnostics and golden tests can quote IR lines verbatim.
        use crate::ir::{AccessAttrs, BinOp, Reg};
        use crate::ty::Ty as T;

        let marked = AccessAttrs {
            safe: true,
            no_lower: true,
            lowered: true,
        };
        let plain = AccessAttrs::default();
        let lines = [
            (
                Inst::Load {
                    dst: Reg(1),
                    addr: Operand::Reg(Reg(0)),
                    ty: T::I64,
                    attrs: marked,
                },
                "r1 = load i64 [r0] safe nolb lowered",
            ),
            (
                Inst::Load {
                    dst: Reg(1),
                    addr: Operand::Reg(Reg(0)),
                    ty: T::I64,
                    attrs: plain,
                },
                "r1 = load i64 [r0]",
            ),
            (
                Inst::Store {
                    addr: Operand::Reg(Reg(0)),
                    val: Operand::Imm(7),
                    ty: T::I8,
                    attrs: AccessAttrs {
                        safe: true,
                        ..plain
                    },
                },
                "store i8 7, [r0] safe",
            ),
            (
                Inst::AtomicRmw {
                    op: BinOp::Add,
                    dst: Reg(2),
                    addr: Operand::Reg(Reg(0)),
                    val: Operand::Imm(1),
                    ty: T::I64,
                    attrs: AccessAttrs {
                        no_lower: true,
                        ..plain
                    },
                },
                "r2 = atomicrmw Add i64 [r0], 1 nolb",
            ),
            (
                Inst::AtomicCas {
                    dst: Reg(2),
                    addr: Operand::Reg(Reg(0)),
                    expected: Operand::Imm(0),
                    new: Operand::Imm(1),
                    ty: T::I64,
                    attrs: AccessAttrs {
                        lowered: true,
                        ..plain
                    },
                },
                "r2 = cmpxchg i64 [r0], 0, 1 lowered",
            ),
        ];
        for (inst, expect) in lines {
            assert_eq!(print_inst(&inst), expect);
        }
    }
}
