//! Structural verifier for modules.
//!
//! Run after construction and after every instrumentation pass; a pass that
//! produces ill-formed IR is a bug in the pass, not in the program being
//! hardened.

use crate::ir::{def_of, operands, Inst, Module, Operand, Term};

/// A verification failure, with enough context to locate the bad IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block index.
    pub block: usize,
    /// Description of the violation.
    pub what: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} block {}: {}", self.func, self.block, self.what)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural invariants of `m`.
///
/// Checked invariants: register/local/slot/global/function/intrinsic/block
/// indices are in range, call arities match declarations, blocks reachable
/// from the entry have real terminators, and every function's entry block
/// exists.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        let err = |block: usize, what: String| VerifyError {
            func: f.name.clone(),
            block,
            what,
        };
        if f.blocks.is_empty() {
            return Err(err(0, "function has no blocks".into()));
        }
        if f.params.len() > f.reg_tys.len() {
            return Err(err(0, "fewer registers than parameters".into()));
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                for op in operands(inst) {
                    if let Operand::Reg(r) = op {
                        if r.0 as usize >= f.reg_tys.len() {
                            return Err(err(bi, format!("use of undeclared register r{}", r.0)));
                        }
                    }
                }
                if let Some(d) = def_of(inst) {
                    if d.0 as usize >= f.reg_tys.len() {
                        return Err(err(bi, format!("def of undeclared register r{}", d.0)));
                    }
                }
                match inst {
                    Inst::ReadLocal { local, .. } | Inst::WriteLocal { local, .. }
                        if local.0 as usize >= f.locals.len() =>
                    {
                        return Err(err(bi, format!("bad local l{}", local.0)));
                    }
                    Inst::SlotAddr { slot, .. } if slot.0 as usize >= f.slots.len() => {
                        return Err(err(bi, format!("bad slot s{}", slot.0)));
                    }
                    Inst::GlobalAddr { global, .. } if global.0 as usize >= m.globals.len() => {
                        return Err(err(bi, format!("bad global g{}", global.0)));
                    }
                    Inst::FuncAddr { func, .. } if func.0 as usize >= m.funcs.len() => {
                        return Err(err(bi, format!("bad function ref f{}", func.0)));
                    }
                    Inst::Call { func, args, dst } => {
                        let Some(callee) = m.funcs.get(func.0 as usize) else {
                            return Err(err(bi, format!("call to unknown function f{}", func.0)));
                        };
                        if callee.params.len() != args.len() {
                            return Err(err(
                                bi,
                                format!(
                                    "call to {} with {} args, expected {}",
                                    callee.name,
                                    args.len(),
                                    callee.params.len()
                                ),
                            ));
                        }
                        if dst.is_some() && callee.ret.is_none() {
                            return Err(err(
                                bi,
                                format!("call to void function {} expects a result", callee.name),
                            ));
                        }
                    }
                    Inst::CallIntrinsic { intrinsic, .. }
                        if intrinsic.0 as usize >= m.intrinsics.len() =>
                    {
                        return Err(err(bi, format!("bad intrinsic id {}", intrinsic.0)));
                    }
                    Inst::Load { ty, dst, .. } => {
                        let declared = f.reg_tys[dst.0 as usize];
                        if declared.width() < ty.width() {
                            return Err(err(
                                bi,
                                format!("load of {ty} into narrower register of type {declared}"),
                            ));
                        }
                    }
                    Inst::Gep { scale, .. } if *scale == 0 => {
                        return Err(err(bi, "gep with zero scale".into()));
                    }
                    Inst::Site { site, .. } if *site as usize >= m.check_sites.len() => {
                        return Err(err(bi, format!("site marker #{site} has no table entry")));
                    }
                    _ => {}
                }
            }
            match &b.term {
                Term::Jmp(t) => {
                    if t.0 as usize >= f.blocks.len() {
                        return Err(err(bi, format!("jump to unknown block b{}", t.0)));
                    }
                }
                Term::Br { t, f: fb, cond } => {
                    if let Operand::Reg(r) = cond {
                        if r.0 as usize >= f.reg_tys.len() {
                            return Err(err(bi, format!("branch on undeclared register r{}", r.0)));
                        }
                    }
                    for tgt in [t, fb] {
                        if tgt.0 as usize >= f.blocks.len() {
                            return Err(err(bi, format!("branch to unknown block b{}", tgt.0)));
                        }
                    }
                }
                Term::Ret(v) => {
                    if v.is_some() != f.ret.is_some() {
                        return Err(err(
                            bi,
                            format!(
                                "return value presence mismatch (function returns {:?})",
                                f.ret
                            ),
                        ));
                    }
                }
                Term::Unreachable => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::{BlockId, Reg};
    use crate::ty::Ty;

    #[test]
    fn accepts_well_formed_module() {
        let mut mb = ModuleBuilder::new("ok");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let s = fb.slot("buf", 64);
            let p = fb.slot_addr(s);
            fb.store(Ty::I64, p, 1u64);
            let v = fb.load(Ty::I64, p);
            fb.ret(Some(v.into()));
        });
        verify(&mb.finish()).expect("well-formed module must verify");
    }

    #[test]
    fn rejects_undeclared_register() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("main", &[], None, |fb| {
            fb.ret(None);
        });
        let mut m = mb.finish();
        m.funcs[0].blocks[0].insts.push(crate::ir::Inst::Bin {
            op: crate::ir::BinOp::Add,
            dst: Reg(99),
            a: Reg(98).into(),
            b: 1u64.into(),
        });
        let e = verify(&m).unwrap_err();
        assert!(e.what.contains("register"));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("main", &[], None, |fb| {
            fb.ret(None);
        });
        let mut m = mb.finish();
        m.funcs[0].blocks[0].term = crate::ir::Term::Jmp(BlockId(7));
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            fb.ret(None);
        });
        assert!(verify(&mb.finish()).is_err());
    }

    #[test]
    fn rejects_narrow_load_destination() {
        let mut mb = ModuleBuilder::new("bad");
        mb.func("main", &[], None, |fb| {
            fb.ret(None);
        });
        let mut m = mb.finish();
        let dst = m.funcs[0].new_reg(Ty::I8);
        m.funcs[0].blocks[0].insts.push(crate::ir::Inst::Load {
            dst,
            addr: 0u64.into(),
            ty: Ty::I64,
            attrs: Default::default(),
        });
        assert!(verify(&m).is_err());
    }
}
