//! Natural-loop detection.

use super::cfg::{dominates, dominators, predecessors, successors};
use crate::ir::{BlockId, Function};

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Source of the back edge (the latch).
    pub latch: BlockId,
    /// All blocks in the loop, including the header.
    pub body: Vec<BlockId>,
    /// The unique out-of-loop predecessor of the header, if there is exactly
    /// one (hoisted checks are inserted there).
    pub preheader: Option<BlockId>,
}

impl NaturalLoop {
    /// Returns `true` if `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Finds all natural loops of `f` (one per back edge).
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut loops = Vec::new();
    for b in 0..f.blocks.len() {
        let from = BlockId(b as u32);
        if idom[b].is_none() && b != 0 {
            continue; // Unreachable.
        }
        for to in successors(f, from) {
            if dominates(&idom, to, from) {
                // Back edge from -> to; collect the loop body.
                let mut body = vec![to];
                let mut stack = vec![from];
                while let Some(n) = stack.pop() {
                    if body.contains(&n) {
                        continue;
                    }
                    body.push(n);
                    for &p in &preds[n.0 as usize] {
                        stack.push(p);
                    }
                }
                body.sort();
                let outside: Vec<BlockId> = preds[to.0 as usize]
                    .iter()
                    .copied()
                    .filter(|p| !body.contains(p))
                    .collect();
                let preheader = match outside.as_slice() {
                    [single] => Some(*single),
                    _ => None,
                };
                loops.push(NaturalLoop {
                    header: to,
                    latch: from,
                    body,
                    preheader,
                });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn count_loop_is_detected_with_preheader() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            fb.count_loop(0u64, 5u64, |_, _| {});
            fb.ret(None);
        });
        let m = mb.finish();
        let loops = find_loops(&m.funcs[0]);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.preheader, Some(BlockId(0)));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
    }

    #[test]
    fn nested_loops_yield_two_loops() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            fb.count_loop(0u64, 3u64, |fb, _| {
                fb.count_loop(0u64, 4u64, |_, _| {});
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let loops = find_loops(&m.funcs[0]);
        assert_eq!(loops.len(), 2);
        // One loop body strictly contains the other's header.
        let (a, b) = (&loops[0], &loops[1]);
        assert!(a.contains(b.header) || b.contains(a.header));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| fb.ret(None));
        let m = mb.finish();
        assert!(find_loops(&m.funcs[0]).is_empty());
    }
}
