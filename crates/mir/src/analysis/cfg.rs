//! Control-flow graph utilities: successors, predecessors, reverse
//! postorder, and dominators.

use crate::ir::{BlockId, Function, Term};

/// Successor blocks of `b`.
pub fn successors(f: &Function, b: BlockId) -> Vec<BlockId> {
    match &f.blocks[b.0 as usize].term {
        Term::Jmp(t) => vec![*t],
        Term::Br { t, f: fb, .. } => {
            if t == fb {
                vec![*t]
            } else {
                vec![*t, *fb]
            }
        }
        Term::Ret(_) | Term::Unreachable => vec![],
    }
}

/// Predecessor lists for all blocks.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for b in 0..f.blocks.len() {
        for s in successors(f, BlockId(b as u32)) {
            preds[s.0 as usize].push(BlockId(b as u32));
        }
    }
    preds
}

/// Blocks in reverse postorder from the entry (unreachable blocks omitted).
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = successors(f, BlockId(b));
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s.0, 0));
            }
        } else {
            post.push(BlockId(b));
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators, indexed by block; `None` for unreachable blocks,
/// and the entry block dominates itself.
///
/// Implements the classic Cooper–Harvey–Kennedy iterative algorithm.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let n = f.blocks.len();
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(BlockId(0));
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed in RPO");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed in RPO");
        }
    }
    a
}

/// Returns `true` if `a` dominates `b` (given the `idom` array).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ty::Ty;

    fn diamond() -> crate::ir::Module {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::I64], Some(Ty::I64), |fb| {
            let l = fb.local(Ty::I64);
            let p = fb.param(0);
            fb.if_else(p, |fb| fb.set(l, 1u64), |fb| fb.set(l, 2u64));
            let v = fb.get(l);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    #[test]
    fn diamond_preds_and_succs() {
        let m = diamond();
        let f = &m.funcs[0];
        assert_eq!(successors(f, BlockId(0)).len(), 2);
        let preds = predecessors(f);
        // Continuation block (3) has two predecessors.
        assert_eq!(preds[3].len(), 2);
    }

    #[test]
    fn diamond_dominators() {
        let m = diamond();
        let f = &m.funcs[0];
        let idom = dominators(f);
        // Entry dominates everything; the join is dominated by the entry,
        // not by either branch arm.
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!dominates(&idom, BlockId(1), BlockId(3)));
    }

    #[test]
    fn loop_rpo_places_header_before_body() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            fb.count_loop(0u64, 5u64, |_, _| {});
            fb.ret(None);
        });
        let m = mb.finish();
        let rpo = reverse_postorder(&m.funcs[0]);
        let pos = |b: u32| rpo.iter().position(|x| x.0 == b).unwrap();
        // entry(0) < head(1) and head(1) < body(2).
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }
}
