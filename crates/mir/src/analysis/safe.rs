//! Safe-access classification (paper §4.4 "Safe memory accesses").
//!
//! An access is *safe* when the compiler can prove it stays inside its
//! referent object: constant offsets into stack slots and globals of known
//! size, and `inbounds`-marked geps (struct fields, constant indices into
//! fixed arrays). Instrumentation passes skip bounds checks on safe
//! accesses entirely.
//!
//! The analysis is per-block and flow-insensitive across blocks, like the
//! paper's (which relies on LLVM's `SizeOffsetVisitor` without
//! inter-procedural reasoning, §6.5).

use crate::ir::{Function, Inst, Module, Operand, Reg};
use std::collections::HashMap;

/// What a register is known to point into within one block.
#[derive(Debug, Clone, Copy)]
struct Prov {
    /// Size of the referent object.
    size: u32,
    /// Constant byte offset from the object base, if statically known.
    offset: Option<u64>,
}

/// Marks `attrs.safe` on provably in-bounds accesses; returns how many
/// accesses were marked.
pub fn mark_safe_accesses(m: &mut Module) -> usize {
    let globals: Vec<u32> = m.globals.iter().map(|g| g.size).collect();
    let mut marked = 0;
    for f in &mut m.funcs {
        marked += mark_function(f, &globals);
    }
    marked
}

fn mark_function(f: &mut Function, globals: &[u32]) -> usize {
    let slot_sizes: Vec<u32> = f.slots.iter().map(|s| s.size).collect();
    let mut marked = 0;
    for b in &mut f.blocks {
        let mut prov: HashMap<Reg, Prov> = HashMap::new();
        for inst in &mut b.insts {
            match inst {
                Inst::SlotAddr { dst, slot } => {
                    prov.insert(
                        *dst,
                        Prov {
                            size: slot_sizes[slot.0 as usize],
                            offset: Some(0),
                        },
                    );
                }
                Inst::GlobalAddr { dst, global } => {
                    prov.insert(
                        *dst,
                        Prov {
                            size: globals[global.0 as usize],
                            offset: Some(0),
                        },
                    );
                }
                Inst::Gep {
                    dst,
                    base: Operand::Reg(base),
                    index,
                    scale,
                    disp,
                    inbounds,
                } => {
                    let derived = prov.get(base).copied().and_then(|p| {
                        if *inbounds {
                            // The builder vouches the result stays inside;
                            // the offset is unknown unless the index is
                            // constant.
                            let offset = match (index, p.offset) {
                                (Operand::Imm(i), Some(o)) => o
                                    .checked_add(i.checked_mul(*scale as u64)?)?
                                    .checked_add_signed(*disp),
                                _ => None,
                            };
                            Some(Prov {
                                size: p.size,
                                offset,
                            })
                        } else {
                            // Not inbounds: only a constant index with a
                            // statically known offset keeps provenance.
                            match (index, p.offset) {
                                (Operand::Imm(i), Some(o)) => {
                                    let off = o
                                        .checked_add(i.checked_mul(*scale as u64)?)?
                                        .checked_add_signed(*disp)?;
                                    Some(Prov {
                                        size: p.size,
                                        offset: Some(off),
                                    })
                                }
                                _ => None,
                            }
                        }
                    });
                    match derived {
                        Some(p) => {
                            prov.insert(*dst, p);
                        }
                        None => {
                            prov.remove(dst);
                        }
                    }
                }
                Inst::Load {
                    addr: Operand::Reg(a),
                    ty,
                    attrs,
                    dst,
                } => {
                    if is_safe(prov.get(a), ty.width()) && !attrs.safe {
                        attrs.safe = true;
                        marked += 1;
                    }
                    prov.remove(dst);
                }
                Inst::Store {
                    addr: Operand::Reg(a),
                    ty,
                    attrs,
                    ..
                } => {
                    if is_safe(prov.get(a), ty.width()) && !attrs.safe {
                        attrs.safe = true;
                        marked += 1;
                    }
                }
                other => {
                    // Any other definition invalidates tracked provenance of
                    // its destination.
                    if let Some(d) = crate::ir::def_of(other) {
                        prov.remove(&d);
                    }
                }
            }
        }
    }
    marked
}

fn is_safe(p: Option<&Prov>, width: u8) -> bool {
    match p {
        // Constant offset with the full access inside the object.
        Some(Prov {
            size,
            offset: Some(o),
        }) => o.saturating_add(width as u64) <= *size as u64,
        // Inbounds-derived pointer with unknown offset: the builder vouched
        // for the gep, and the access width is part of that vouching only if
        // the object is at least `width` large.
        Some(Prov { size, offset: None }) => *size as u64 >= width as u64,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ir::AccessAttrs;
    use crate::ty::Ty;

    fn attrs_of(m: &Module, func: usize) -> Vec<AccessAttrs> {
        let mut v = Vec::new();
        for b in &m.funcs[func].blocks {
            for i in &b.insts {
                match i {
                    Inst::Load { attrs, .. } | Inst::Store { attrs, .. } => v.push(*attrs),
                    _ => {}
                }
            }
        }
        v
    }

    #[test]
    fn constant_slot_access_is_safe() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            let s = fb.slot("buf", 64);
            let p = fb.slot_addr(s);
            let q = fb.gep(p, 7u64, 8, 0); // Offset 56, width 8: in bounds.
            fb.store(Ty::I64, q, 1u64);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 1);
        assert!(attrs_of(&m, 0)[0].safe);
    }

    #[test]
    fn constant_out_of_bounds_access_is_not_safe() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            let s = fb.slot("buf", 64);
            let p = fb.slot_addr(s);
            let q = fb.gep(p, 8u64, 8, 0); // Offset 64, width 8: one past.
            fb.store(Ty::I64, q, 1u64);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 0);
    }

    #[test]
    fn variable_index_is_not_safe_without_inbounds() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::I64], None, |fb| {
            let s = fb.slot("buf", 64);
            let p = fb.slot_addr(s);
            let i = fb.param(0);
            let q = fb.gep(p, i, 8, 0);
            fb.store(Ty::I64, q, 1u64);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 0);
    }

    #[test]
    fn inbounds_gep_with_variable_index_is_safe() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::I64], None, |fb| {
            let s = fb.slot("buf", 64);
            let p = fb.slot_addr(s);
            let i = fb.param(0);
            let q = fb.gep_inbounds(p, i, 8, 0);
            let _ = fb.load(Ty::I64, q);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 1);
    }

    #[test]
    fn global_struct_field_is_safe() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_zeroed("cfg", 24);
        mb.func("f", &[], None, |fb| {
            let p = fb.global_addr(g);
            let field = fb.gep_inbounds(p, 0u64, 1, 16);
            fb.store(Ty::I64, field, 7u64);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 1);
    }

    #[test]
    fn unknown_pointer_parameter_is_never_safe() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::Ptr], None, |fb| {
            let p = fb.param(0);
            fb.store(Ty::I64, p, 1u64);
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(mark_safe_accesses(&mut m), 0);
    }
}
