//! Scalar-evolution-lite: recognizes counted loops and affine accesses.
//!
//! The paper's check-hoisting optimization (§4.4) reuses LLVM's scalar
//! evolution to find loops of the form `for (i = start; i < end; i += step)`
//! whose memory accesses are `base + i*scale + disp` with a loop-invariant
//! `base`. This module implements exactly that slice of the analysis for the
//! mini-IR: it is deliberately conservative — a loop that does not match is
//! simply not optimized, mirroring the paper's observation that their
//! implementation only handles simple loops (§6.5).

use super::cfg::predecessors;
use super::loops::{find_loops, NaturalLoop};
use crate::ir::{BinOp, BlockId, CmpOp, Function, Inst, LocalId, Operand, Reg, Term};
use std::collections::HashMap;

/// A recognized `for (i = start; i < end; i += step)` loop.
#[derive(Debug, Clone)]
pub struct CountedLoop {
    /// The underlying natural loop.
    pub lp: NaturalLoop,
    /// The induction local.
    pub induction: LocalId,
    /// Initial value (written in the preheader).
    pub start: Operand,
    /// Exclusive bound from the header guard `i < end` (loop-invariant).
    pub end: Operand,
    /// Increment per iteration.
    pub step: u64,
}

/// A memory access of the form `base + i*scale + disp` inside a counted
/// loop.
#[derive(Debug, Clone)]
pub struct AffineAccess {
    /// Block containing the access.
    pub block: BlockId,
    /// Instruction index within the block.
    pub idx: usize,
    /// Loop-invariant base operand.
    pub base: Operand,
    /// Element scale in bytes.
    pub scale: u32,
    /// Constant displacement.
    pub disp: i64,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u8,
}

/// Definition sites of every register.
fn def_sites(f: &Function) -> HashMap<Reg, Vec<(BlockId, usize)>> {
    let mut map: HashMap<Reg, Vec<(BlockId, usize)>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Some(d) = crate::ir::def_of(inst) {
                map.entry(d).or_default().push((BlockId(bi as u32), ii));
            }
        }
    }
    map
}

/// True if `op` is loop-invariant: an immediate, a parameter, or a register
/// defined exactly once outside the loop.
fn invariant(
    op: Operand,
    f: &Function,
    lp: &NaturalLoop,
    defs: &HashMap<Reg, Vec<(BlockId, usize)>>,
) -> bool {
    match op {
        Operand::Imm(_) => true,
        Operand::Reg(r) => {
            if (r.0 as usize) < f.params.len() {
                return true;
            }
            match defs.get(&r) {
                Some(sites) if sites.len() == 1 => !lp.contains(sites[0].0),
                _ => false,
            }
        }
    }
}

/// Finds counted loops in `f`.
pub fn counted_loops(f: &Function) -> Vec<CountedLoop> {
    let defs = def_sites(f);
    let preds = predecessors(f);
    let mut out = Vec::new();
    'next_loop: for lp in find_loops(f) {
        let Some(preheader) = lp.preheader else {
            continue;
        };
        // The header must end in `br (i < end), inside, outside`.
        let header = &f.blocks[lp.header.0 as usize];
        let Term::Br {
            cond: Operand::Reg(c),
            t,
            f: fexit,
        } = header.term
        else {
            continue;
        };
        if !lp.contains(t) || lp.contains(fexit) {
            continue;
        }
        // Find the compare defining `c` in the header.
        let Some(Inst::Cmp {
            op: CmpOp::ULt,
            a: Operand::Reg(iv),
            b: end,
            ..
        }) = header
            .insts
            .iter()
            .rev()
            .find(|i| crate::ir::def_of(i) == Some(c))
        else {
            continue;
        };
        // `iv` must be a ReadLocal of some local, defined in the header.
        let Some(Inst::ReadLocal { local, .. }) = header
            .insts
            .iter()
            .rev()
            .find(|i| crate::ir::def_of(i) == Some(*iv))
        else {
            continue;
        };
        let induction = *local;
        if !invariant(*end, f, &lp, &defs) {
            continue;
        }
        // Exactly one write to the induction local inside the loop, of the
        // form `l = l + step` with a constant step.
        let mut step: Option<u64> = None;
        for &bi in &lp.body {
            let blk = &f.blocks[bi.0 as usize];
            for (ii, inst) in blk.insts.iter().enumerate() {
                if let Inst::WriteLocal { local, val } = inst {
                    if *local != induction {
                        continue;
                    }
                    if step.is_some() {
                        continue 'next_loop; // Multiple writes: give up.
                    }
                    // `val` must be Add(ReadLocal(induction), Imm k) defined
                    // earlier in this block.
                    let Operand::Reg(v) = val else {
                        continue 'next_loop;
                    };
                    let Some(Inst::Bin {
                        op: BinOp::Add,
                        a: Operand::Reg(ra),
                        b: Operand::Imm(k),
                        ..
                    }) = blk.insts[..ii]
                        .iter()
                        .rev()
                        .find(|i| crate::ir::def_of(i) == Some(*v))
                    else {
                        continue 'next_loop;
                    };
                    let Some(Inst::ReadLocal { local: rl, .. }) = blk.insts[..ii]
                        .iter()
                        .rev()
                        .find(|i| crate::ir::def_of(i) == Some(*ra))
                    else {
                        continue 'next_loop;
                    };
                    if *rl != induction {
                        continue 'next_loop;
                    }
                    step = Some(*k);
                }
            }
        }
        let Some(step) = step else {
            continue;
        };
        // The preheader's last write to the induction local is the start.
        let pre = &f.blocks[preheader.0 as usize];
        let Some(start) = pre.insts.iter().rev().find_map(|i| match i {
            Inst::WriteLocal { local, val } if *local == induction => Some(*val),
            _ => None,
        }) else {
            continue;
        };
        let _ = &preds; // Predecessors retained for future multi-latch support.
        out.push(CountedLoop {
            lp,
            induction,
            start,
            end: *end,
            step,
        });
    }
    out
}

/// Finds affine accesses `base + i*scale + disp` inside a counted loop.
pub fn affine_accesses(f: &Function, cl: &CountedLoop) -> Vec<AffineAccess> {
    let defs = def_sites(f);
    let mut out = Vec::new();
    // Registers holding the induction value: defined by ReadLocal(induction)
    // inside the loop.
    let mut iv_regs: Vec<Reg> = Vec::new();
    for &bi in &cl.lp.body {
        for inst in &f.blocks[bi.0 as usize].insts {
            if let Inst::ReadLocal { dst, local } = inst {
                if *local == cl.induction {
                    iv_regs.push(*dst);
                }
            }
        }
    }
    for &bi in &cl.lp.body {
        let blk = &f.blocks[bi.0 as usize];
        for (ii, inst) in blk.insts.iter().enumerate() {
            let (addr, is_store, width) = match inst {
                Inst::Load { addr, ty, .. } => (*addr, false, ty.width()),
                Inst::Store { addr, ty, .. } => (*addr, true, ty.width()),
                _ => continue,
            };
            let Operand::Reg(a) = addr else { continue };
            // The address must come from a single gep in the loop.
            let Some(sites) = defs.get(&a) else { continue };
            if sites.len() != 1 || !cl.lp.contains(sites[0].0) {
                continue;
            }
            let (db, di) = sites[0];
            let Inst::Gep {
                base,
                index: Operand::Reg(ir),
                scale,
                disp,
                ..
            } = &f.blocks[db.0 as usize].insts[di]
            else {
                continue;
            };
            if !iv_regs.contains(ir) {
                continue;
            }
            if !invariant(*base, f, &cl.lp, &defs) {
                continue;
            }
            out.push(AffineAccess {
                block: bi,
                idx: ii,
                base: *base,
                scale: *scale,
                disp: *disp,
                is_store,
                width,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ty::Ty;

    #[test]
    fn recognizes_builder_count_loop() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::Ptr, Ty::I64], None, |fb| {
            let p = fb.param(0);
            let n = fb.param(1);
            fb.count_loop(0u64, n, |fb, i| {
                let a = fb.gep(p, i, 8, 0);
                fb.store(Ty::I64, a, i);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let cls = counted_loops(&m.funcs[0]);
        assert_eq!(cls.len(), 1);
        let cl = &cls[0];
        assert_eq!(cl.step, 1);
        assert_eq!(cl.start, Operand::Imm(0));
        assert_eq!(cl.end, Operand::Reg(Reg(1)));
        let accs = affine_accesses(&m.funcs[0], cl);
        assert_eq!(accs.len(), 1);
        assert_eq!(accs[0].scale, 8);
        assert!(accs[0].is_store);
        assert_eq!(accs[0].base, Operand::Reg(Reg(0)));
    }

    #[test]
    fn loop_with_pointer_base_redefined_inside_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::Ptr], None, |fb| {
            let p = fb.param(0);
            fb.count_loop(0u64, 8u64, |fb, i| {
                // Base depends on the iteration: p2 = p + i, access p2[i].
                let p2 = fb.gep(p, i, 1, 0);
                let a = fb.gep(p2, i, 8, 0);
                fb.store(Ty::I64, a, 0u64);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let cls = counted_loops(&m.funcs[0]);
        assert_eq!(cls.len(), 1);
        let accs = affine_accesses(&m.funcs[0], &cls[0]);
        assert!(accs.is_empty(), "variant base must not be affine");
    }

    #[test]
    fn while_true_loop_is_not_counted() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            let head = fb.block();
            let exit = fb.block();
            fb.jmp(head);
            fb.switch_to(head);
            let c = fb.intr("coin", &[]);
            fb.br(c, head, exit);
            fb.switch_to(exit);
            fb.ret(None);
        });
        let m = mb.finish();
        assert!(counted_loops(&m.funcs[0]).is_empty());
    }

    #[test]
    fn nested_inner_loop_recognized() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::Ptr], None, |fb| {
            let p = fb.param(0);
            fb.count_loop(0u64, 3u64, |fb, _| {
                fb.count_loop(0u64, 4u64, |fb, j| {
                    let a = fb.gep(p, j, 4, 0);
                    fb.store(Ty::I32, a, 1u64);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let cls = counted_loops(&m.funcs[0]);
        // The inner loop matches; the outer one does too (its body writes
        // only its own induction variable once).
        assert!(!cls.is_empty());
        let with_access: Vec<_> = cls
            .iter()
            .filter(|c| !affine_accesses(&m.funcs[0], c).is_empty())
            .collect();
        assert_eq!(with_access.len(), 1);
    }
}
