//! Compiler analyses used by the instrumentation passes and their
//! optimizations.

pub mod cfg;
pub mod loops;
pub mod safe;
pub mod scev;

pub use loops::{find_loops, NaturalLoop};
pub use safe::mark_safe_accesses;
pub use scev::{affine_accesses, counted_loops, AffineAccess, CountedLoop};
