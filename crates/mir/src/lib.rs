#![warn(missing_docs)]

//! A mini typed IR with a builder, verifier, analyses, and a multithreaded
//! cost-accounting interpreter over the SGX machine model.
//!
//! This crate plays the role LLVM 3.8 plays in the paper: the substrate on
//! which SGXBounds, AddressSanitizer-style, and Intel MPX-style
//! instrumentation passes operate (paper §5). Programs are constructed with
//! [`builder::ModuleBuilder`], hardened by rewriting their [`ir::Module`],
//! and executed by [`interp::Vm`], which charges cycles through
//! [`sgxs_sim::Machine`] so that performance and memory overheads *emerge*
//! from each scheme's memory behaviour.

pub mod analysis;
pub mod builder;
pub mod display;
pub mod interp;
pub mod ir;
pub mod ty;
pub mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use interp::{
    AccessKind, Env, Frame, HotRefs, IntrinsicCtx, PolicySet, QuantumEngine, RecoveryPolicy,
    RecoveryStats, RunOutcome, Trap, TrapClass, Vm, VmConfig,
};
pub use ir::{
    AccessAttrs, BinOp, Block, BlockId, CastKind, CheckSite, CmpOp, FBinOp, FCmpOp, FuncId,
    Function, Global, GlobalId, Inst, IntrinsicId, LocalId, Module, Operand, Reg, SiteMarker,
    SlotId, StackSlot, Term,
};
pub use ty::Ty;
pub use verify::{verify, VerifyError};

#[cfg(test)]
mod vm_tests {
    use super::*;
    use sgxs_sim::{MachineConfig, Mode, Preset};

    fn cfg() -> VmConfig {
        VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Native))
    }

    fn run(m: &Module, args: &[u64]) -> RunOutcome {
        verify(m).expect("module verifies");
        let mut vm = Vm::new(m, cfg());
        vm.run("main", args)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let a = fb.add(40u64, 1u64);
            let b = fb.mul(a, 2u64);
            let c = fb.sub(b, 40u64);
            fb.ret(Some(c.into())); // (40+1)*2-40 = 42.
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 42);
    }

    #[test]
    fn loops_accumulate() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            let n = fb.param(0);
            fb.count_loop(0u64, n, |fb, i| {
                let a = fb.get(acc);
                let s = fb.add(a, i);
                fb.set(acc, s);
            });
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[100]).expect_ok(), 4950);
    }

    #[test]
    fn memory_via_slots() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let s = fb.slot("arr", 80);
            let p = fb.slot_addr(s);
            fb.count_loop(0u64, 10u64, |fb, i| {
                let a = fb.gep(p, i, 8, 0);
                let sq = fb.mul(i, i);
                fb.store(Ty::I64, a, sq);
            });
            let a9 = fb.gep(p, 9u64, 8, 0);
            let v = fb.load(Ty::I64, a9);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 81);
    }

    #[test]
    fn globals_initialized_and_addressable() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 16, &7u64.to_le_bytes());
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let p = fb.global_addr(g);
            let v = fb.load(Ty::I64, p);
            let q = fb.gep(p, 1u64, 8, 0);
            fb.store(Ty::I64, q, v);
            let w = fb.load(Ty::I64, q);
            let r = fb.add(v, w);
            fb.ret(Some(r.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 14);
    }

    #[test]
    fn direct_and_indirect_calls() {
        let mut mb = ModuleBuilder::new("t");
        let dbl = mb.func("dbl", &[Ty::I64], Some(Ty::I64), |fb| {
            let p = fb.param(0);
            let r = fb.mul(p, 2u64);
            fb.ret(Some(r.into()));
        });
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let a = fb.call(dbl, &[Operand::Imm(10)]).unwrap();
            let fp = fb.func_addr(dbl);
            let b = fb
                .call_indirect(fp, &[Operand::Reg(a)], Some(Ty::I64))
                .unwrap();
            fb.ret(Some(b.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 40);
    }

    #[test]
    fn indirect_call_to_garbage_traps() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let r = fb
                .call_indirect(0xDEAD_BEEFu64, &[], Some(Ty::I64))
                .unwrap();
            fb.ret(Some(r.into()));
        });
        let m = mb.finish();
        let out = run(&m, &[]);
        assert!(matches!(out.result, Err(Trap::BadIndirectCall { .. })));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let p = fb.param(0);
            let r = fb.udiv(1u64, p);
            fb.ret(Some(r.into()));
        });
        let m = mb.finish();
        assert!(matches!(run(&m, &[0]).result, Err(Trap::DivByZero)));
        assert_eq!(run(&m, &[1]).expect_ok(), 1);
    }

    #[test]
    fn floating_point_math() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let half = fb.fconst(0.5);
            let three = fb.fconst(3.0);
            let x = fb.fmul(half, three); // 1.5
            let y = fb.fadd(x, fb.fconst(2.5)); // 4.0
            let r = fb.cast(CastKind::FSqrt, y); // 2.0
            let i = fb.cast(CastKind::FToSi, r);
            fb.ret(Some(i.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 2);
    }

    #[test]
    fn intrinsic_handlers_receive_args_and_return() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let v = fb.intr("host_add", &[Operand::Imm(20), Operand::Imm(22)]);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, cfg());
        vm.register_intrinsic("host_add", |_ctx, args| Ok(Some(args[0] + args[1])));
        assert_eq!(vm.run("main", &[]).expect_ok(), 42);
    }

    #[test]
    fn unknown_intrinsic_traps_with_name() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], None, |fb| {
            fb.intr_void("no_such_thing", &[]);
            fb.ret(None);
        });
        let m = mb.finish();
        let mut vm = Vm::new(&m, cfg());
        match vm.run("main", &[]).result {
            Err(Trap::UnknownIntrinsic(n)) => assert_eq!(n, "no_such_thing"),
            other => panic!("expected unknown-intrinsic trap, got {other:?}"),
        }
    }

    #[test]
    fn threads_spawn_join_and_share_memory() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.func("worker", &[Ty::Ptr], Some(Ty::I64), |fb| {
            let p = fb.param(0);
            // Add thread_id+1 into the shared counter, atomically, 100x.
            fb.count_loop(0u64, 100u64, |fb, _| {
                let me = fb.intr("thread_id", &[]);
                let inc = fb.add(me, 1u64);
                fb.atomic_rmw(BinOp::Add, Ty::I64, p, inc);
            });
            fb.ret(Some(0u64.into()));
        });
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let s = fb.slot("counter", 8);
            let p = fb.slot_addr(s);
            fb.store(Ty::I64, p, 0u64);
            let wf = fb.func_addr(worker);
            let t1 = fb.intr("spawn", &[wf.into(), p.into()]);
            let t2 = fb.intr("spawn", &[wf.into(), p.into()]);
            fb.intr("join", &[t1.into()]);
            fb.intr("join", &[t2.into()]);
            let v = fb.load(Ty::I64, p);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        // Threads 1 and 2 each add (tid+1) 100 times: 200 + 300 = 500.
        assert_eq!(run(&m, &[]).expect_ok(), 500);
    }

    #[test]
    fn mutex_provides_exclusion() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.func("worker", &[Ty::Ptr], Some(Ty::I64), |fb| {
            let p = fb.param(0);
            fb.count_loop(0u64, 50u64, |fb, _| {
                fb.intr_void("mutex_lock", &[p.into()]);
                // Non-atomic read-modify-write protected by the lock.
                let q = fb.gep(p, 1u64, 8, 0);
                let v = fb.load(Ty::I64, q);
                let v2 = fb.add(v, 1u64);
                fb.store(Ty::I64, q, v2);
                fb.intr_void("mutex_unlock", &[p.into()]);
            });
            fb.ret(Some(0u64.into()));
        });
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let s = fb.slot("shared", 16);
            let p = fb.slot_addr(s);
            fb.store(Ty::I64, p, 0u64);
            let q = fb.gep(p, 1u64, 8, 0);
            fb.store(Ty::I64, q, 0u64);
            let wf = fb.func_addr(worker);
            let t1 = fb.intr("spawn", &[wf.into(), p.into()]);
            let t2 = fb.intr("spawn", &[wf.into(), p.into()]);
            fb.intr("join", &[t1.into()]);
            fb.intr("join", &[t2.into()]);
            let v = fb.load(Ty::I64, q);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 100);
    }

    #[test]
    fn parallel_threads_overlap_in_time() {
        // Two threads doing equal work should take roughly the time of one,
        // under the discrete-event scheduler.
        fn build(threads: u64) -> Module {
            let mut mb = ModuleBuilder::new("t");
            let worker = mb.func("worker", &[Ty::I64], Some(Ty::I64), |fb| {
                let acc = fb.local(Ty::I64);
                fb.set(acc, 0u64);
                fb.count_loop(0u64, 20_000u64, |fb, i| {
                    let a = fb.get(acc);
                    let s = fb.add(a, i);
                    fb.set(acc, s);
                });
                let v = fb.get(acc);
                fb.ret(Some(v.into()));
            });
            mb.func("main", &[], Some(Ty::I64), |fb| {
                let wf = fb.func_addr(worker);
                let tids = fb.slot("tids", 64);
                let tp = fb.slot_addr(tids);
                fb.count_loop(0u64, threads, |fb, i| {
                    let t = fb.intr("spawn", &[wf.into(), i.into()]);
                    let a = fb.gep(tp, i, 8, 0);
                    fb.store(Ty::I64, a, t);
                });
                fb.count_loop(0u64, threads, |fb, i| {
                    let a = fb.gep(tp, i, 8, 0);
                    let t = fb.load(Ty::I64, a);
                    fb.intr("join", &[t.into()]);
                });
                fb.ret(Some(0u64.into()));
            });
            mb.finish()
        }
        let one = run(&build(1), &[]);
        let four = run(&build(4), &[]);
        one.expect_ok();
        four.expect_ok();
        let ratio = four.wall_cycles as f64 / one.wall_cycles as f64;
        assert!(
            ratio < 1.6,
            "4 threads should not cost 4x one thread's wall time (ratio {ratio})"
        );
    }

    #[test]
    fn exit_intrinsic_stops_everything() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            fb.intr_void("exit", &[Operand::Imm(7)]);
            fb.ret(Some(0u64.into()));
        });
        let m = mb.finish();
        assert_eq!(run(&m, &[]).expect_ok(), 7);
    }

    #[test]
    fn instruction_limit_contains_infinite_loops() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], None, |fb| {
            let head = fb.block();
            fb.jmp(head);
            fb.switch_to(head);
            fb.jmp(head);
        });
        let m = mb.finish();
        let mut c = cfg();
        c.max_instructions = 10_000;
        let mut vm = Vm::new(&m, c);
        assert!(matches!(
            vm.run("main", &[]).result,
            Err(Trap::InstructionLimit)
        ));
    }

    #[test]
    fn output_captured_in_order() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], None, |fb| {
            fb.intr_void("print_i64", &[Operand::Imm(1)]);
            fb.intr_void("print_i64", &[Operand::Imm(2)]);
            fb.ret(None);
        });
        let m = mb.finish();
        let out = run(&m, &[]);
        assert_eq!(out.output, vec!["1", "2"]);
    }

    #[test]
    fn stack_overflow_detected_on_deep_recursion() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare("rec", &[Ty::I64], Some(Ty::I64));
        mb.define(f, |fb| {
            let s = fb.slot("pad", 4096);
            let _ = fb.slot_addr(s);
            let p = fb.param(0);
            let r = fb.call(f, &[p.into()]).unwrap();
            fb.ret(Some(r.into()));
        });
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let r = fb.call(f, &[Operand::Imm(0)]).unwrap();
            fb.ret(Some(r.into()));
        });
        let m = mb.finish();
        assert!(matches!(run(&m, &[]).result, Err(Trap::StackOverflow)));
    }

    #[test]
    fn wild_store_to_tagged_address_mem_faults() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], None, |fb| {
            // Store through a value with garbage in the high 32 bits — the
            // situation SGXBounds' masking prevents.
            let bad = fb.or(0x10u64 << 32, 0x1000u64);
            fb.store(Ty::I64, bad, 1u64);
            fb.ret(None);
        });
        let m = mb.finish();
        assert!(matches!(run(&m, &[]).result, Err(Trap::Mem(_))));
    }

    #[test]
    fn enclave_run_counts_epc_activity() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let buf = fb.intr_ptr("ws_base", &[]);
            let n = fb.param(0);
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            // Two passes over n KB of memory at 64-byte stride.
            fb.count_loop(0u64, 2u64, |fb, _| {
                let lines = fb.shl(n, 4u64); // n * 16 lines per KB.
                fb.count_loop(0u64, lines, |fb, i| {
                    let a = fb.gep(buf, i, 64, 0);
                    let v = fb.load(Ty::I64, a);
                    let acc_v = fb.get(acc);
                    let s = fb.add(acc_v, v);
                    fb.set(acc, s);
                });
            });
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        let mut c = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
        c.max_instructions = 50_000_000;
        let mut vm = Vm::new(&m, c);
        let base = vm.heap_base() as u64;
        vm.register_intrinsic("ws_base", move |_, _| Ok(Some(base)));
        // Working set of 2 MB >> 736 KB Tiny EPC: must thrash.
        let out = vm.run("main", &[2048]);
        out.expect_ok();
        assert!(
            out.stats.epc_faults > 400,
            "expected EPC thrashing, got {} faults",
            out.stats.epc_faults
        );
    }
}
