//! Ergonomic construction API for modules and functions.
//!
//! Workload kernels (the simulated Phoenix/PARSEC/SPEC programs and the
//! application case studies) are written directly against this builder, so
//! it favours brevity: typed emitter methods, operand auto-conversion from
//! `Reg` and `u64`, and structured-loop helpers that produce exactly the
//! counted-loop shape the scalar-evolution analysis recognizes.

use crate::ir::{
    AccessAttrs, BinOp, Block, BlockId, CastKind, CmpOp, FBinOp, FCmpOp, FuncId, Function, Global,
    GlobalId, Inst, IntrinsicId, LocalId, Module, Operand, Reg, SlotId, StackSlot, Term,
};
use crate::ty::Ty;

/// Builds a [`Module`].
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a global of `size` bytes initialized from `init` (zero-filled
    /// past its end).
    ///
    /// # Panics
    ///
    /// Panics if the initializer is longer than the global.
    pub fn global(&mut self, name: impl Into<String>, size: u32, init: &[u8]) -> GlobalId {
        assert!(init.len() as u32 <= size, "initializer longer than global");
        let id = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(Global {
            name: name.into(),
            size,
            align: 8,
            init: init.to_vec(),
            padded_size: size,
        });
        id
    }

    /// Adds a zero-initialized global.
    pub fn global_zeroed(&mut self, name: impl Into<String>, size: u32) -> GlobalId {
        self.global(name, size, &[])
    }

    /// Declares a function with an empty body (entry block terminated by
    /// `unreachable`), so mutually recursive functions can reference each
    /// other before being defined.
    pub fn declare(&mut self, name: impl Into<String>, params: &[Ty], ret: Option<Ty>) -> FuncId {
        let id = FuncId(self.module.funcs.len() as u32);
        self.module.funcs.push(Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            reg_tys: params.to_vec(),
            locals: Vec::new(),
            slots: Vec::new(),
            blocks: vec![Block {
                insts: Vec::new(),
                term: Term::Unreachable,
            }],
        });
        id
    }

    /// Defines the body of a previously declared function.
    pub fn define(&mut self, id: FuncId, body: impl FnOnce(&mut FuncBuilder<'_>)) {
        let mut fb = FuncBuilder {
            module: &mut self.module,
            fidx: id.0 as usize,
            cur: BlockId(0),
        };
        body(&mut fb);
    }

    /// Declares and defines a function in one step.
    pub fn func(
        &mut self,
        name: impl Into<String>,
        params: &[Ty],
        ret: Option<Ty>,
        body: impl FnOnce(&mut FuncBuilder<'_>),
    ) -> FuncId {
        let id = self.declare(name, params, ret);
        self.define(id, body);
        id
    }

    /// Interns an intrinsic name.
    pub fn intrinsic(&mut self, name: &str) -> IntrinsicId {
        self.module.intrinsic(name)
    }

    /// Read-only view of the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds one function's body.
pub struct FuncBuilder<'a> {
    module: &'a mut Module,
    fidx: usize,
    cur: BlockId,
}

impl<'a> FuncBuilder<'a> {
    fn func(&mut self) -> &mut Function {
        &mut self.module.funcs[self.fidx]
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(
            i < self.module.funcs[self.fidx].params.len(),
            "no such param"
        );
        Reg(i as u32)
    }

    /// Creates a new (empty, unreachable-terminated) block.
    pub fn block(&mut self) -> BlockId {
        let f = self.func();
        let id = BlockId(f.blocks.len() as u32);
        f.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Unreachable,
        });
        id
    }

    /// Makes `b` the current insertion block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn emit(&mut self, inst: Inst) {
        let cur = self.cur.0 as usize;
        let f = self.func();
        debug_assert!(
            matches!(f.blocks[cur].term, Term::Unreachable),
            "emitting into a terminated block in {}",
            f.name
        );
        f.blocks[cur].insts.push(inst);
    }

    fn def(&mut self, ty: Ty) -> Reg {
        self.func().new_reg(ty)
    }

    // ---- scalar ops ------------------------------------------------------

    /// Emits an integer binary op producing an `I64` result.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.def(Ty::I64);
        self.emit(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// `a / b` (unsigned).
    pub fn udiv(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::UDiv, a, b)
    }

    /// `a % b` (unsigned).
    pub fn urem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::URem, a, b)
    }

    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::And, a, b)
    }

    /// `a | b`.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Or, a, b)
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Xor, a, b)
    }

    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Shl, a, b)
    }

    /// `a >> b` (logical).
    pub fn lshr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::LShr, a, b)
    }

    /// Emits an integer comparison (result 0/1).
    pub fn cmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.def(Ty::I64);
        self.emit(Inst::Cmp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emits a floating binary op.
    pub fn fbin(&mut self, op: FBinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.def(Ty::F64);
        self.emit(Inst::FBin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `a + b` on f64.
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fbin(FBinOp::Add, a, b)
    }

    /// `a - b` on f64.
    pub fn fsub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fbin(FBinOp::Sub, a, b)
    }

    /// `a * b` on f64.
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fbin(FBinOp::Mul, a, b)
    }

    /// `a / b` on f64.
    pub fn fdiv(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fbin(FBinOp::Div, a, b)
    }

    /// Emits a floating comparison (result 0/1).
    pub fn fcmp(&mut self, op: FCmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.def(Ty::I64);
        self.emit(Inst::FCmp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// An f64 immediate operand.
    pub fn fconst(&self, v: f64) -> Operand {
        Operand::Imm(v.to_bits())
    }

    /// Emits a cast.
    pub fn cast(&mut self, kind: CastKind, src: impl Into<Operand>) -> Reg {
        let ty = match kind {
            CastKind::SiToF | CastKind::UiToF | CastKind::FAbs | CastKind::FSqrt => Ty::F64,
            _ => Ty::I64,
        };
        let dst = self.def(ty);
        self.emit(Inst::Cast {
            kind,
            dst,
            src: src.into(),
        });
        dst
    }

    /// `cond != 0 ? t : f`.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        t: impl Into<Operand>,
        f: impl Into<Operand>,
    ) -> Reg {
        let dst = self.def(Ty::I64);
        self.emit(Inst::Select {
            dst,
            cond: cond.into(),
            t: t.into(),
            f: f.into(),
        });
        dst
    }

    // ---- pointers and memory --------------------------------------------

    /// Pointer arithmetic: `base + index * scale + disp`.
    pub fn gep(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        scale: u32,
        disp: i64,
    ) -> Reg {
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::Gep {
            dst,
            base: base.into(),
            index: index.into(),
            scale,
            disp,
            inbounds: false,
        });
        dst
    }

    /// Pointer arithmetic the builder asserts stays inside the referent
    /// object (struct fields, constant indices into fixed arrays) — the
    /// safe-access optimization elides checks on accesses through these
    /// (paper §4.4 "Safe memory accesses").
    pub fn gep_inbounds(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        scale: u32,
        disp: i64,
    ) -> Reg {
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::Gep {
            dst,
            base: base.into(),
            index: index.into(),
            scale,
            disp,
            inbounds: true,
        });
        dst
    }

    /// Field projection with an explicit field size: `base + disp`, where
    /// the field spans `[disp, disp + field_size)` of the referent object.
    ///
    /// Emits the projection followed by an `sb_narrow(p, field_size)`
    /// intrinsic. Under plain runtimes `sb_narrow` is the identity; under
    /// SGXBounds with bounds narrowing enabled it shrinks the pointer's
    /// upper bound to the field, making intra-object overflows detectable
    /// (paper §8).
    pub fn gep_field(&mut self, base: impl Into<Operand>, disp: i64, field_size: u32) -> Reg {
        let raw = self.gep_inbounds(base, 0u64, 1, disp);
        self.intr_ptr("sb_narrow", &[raw.into(), Operand::Imm(field_size as u64)])
    }

    /// Loads a `ty` value from `addr`.
    pub fn load(&mut self, ty: Ty, addr: impl Into<Operand>) -> Reg {
        let dst = self.def(ty);
        self.emit(Inst::Load {
            dst,
            addr: addr.into(),
            ty,
            attrs: AccessAttrs::default(),
        });
        dst
    }

    /// Stores a `ty` value to `addr`.
    pub fn store(&mut self, ty: Ty, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.emit(Inst::Store {
            addr: addr.into(),
            val: val.into(),
            ty,
            attrs: AccessAttrs::default(),
        });
    }

    /// Atomic fetch-op; returns the old value.
    pub fn atomic_rmw(
        &mut self,
        op: BinOp,
        ty: Ty,
        addr: impl Into<Operand>,
        val: impl Into<Operand>,
    ) -> Reg {
        let dst = self.def(ty);
        self.emit(Inst::AtomicRmw {
            op,
            dst,
            addr: addr.into(),
            val: val.into(),
            ty,
            attrs: AccessAttrs::default(),
        });
        dst
    }

    /// Atomic compare-and-swap; returns the old value.
    pub fn atomic_cas(
        &mut self,
        ty: Ty,
        addr: impl Into<Operand>,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
    ) -> Reg {
        let dst = self.def(ty);
        self.emit(Inst::AtomicCas {
            dst,
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
            ty,
            attrs: AccessAttrs::default(),
        });
        dst
    }

    // ---- locals, slots, globals, functions --------------------------------

    /// Declares a cross-block local of type `ty`.
    pub fn local(&mut self, ty: Ty) -> LocalId {
        self.func().new_local(ty)
    }

    /// Reads a local into a register.
    pub fn get(&mut self, l: LocalId) -> Reg {
        let ty = self.module.funcs[self.fidx].locals[l.0 as usize];
        let dst = self.def(ty);
        self.emit(Inst::ReadLocal { dst, local: l });
        dst
    }

    /// Writes a local.
    pub fn set(&mut self, l: LocalId, v: impl Into<Operand>) {
        self.emit(Inst::WriteLocal {
            local: l,
            val: v.into(),
        });
    }

    /// Declares a stack slot of `size` bytes.
    pub fn slot(&mut self, name: impl Into<String>, size: u32) -> SlotId {
        let f = self.func();
        let id = SlotId(f.slots.len() as u32);
        f.slots.push(StackSlot {
            name: name.into(),
            size,
            align: 8,
            padded_size: size,
        });
        id
    }

    /// Takes the address of a stack slot.
    pub fn slot_addr(&mut self, s: SlotId) -> Reg {
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::SlotAddr { dst, slot: s });
        dst
    }

    /// Takes the address of a global.
    pub fn global_addr(&mut self, g: GlobalId) -> Reg {
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::GlobalAddr { dst, global: g });
        dst
    }

    /// Takes the (synthetic) code address of a function.
    pub fn func_addr(&mut self, f: FuncId) -> Reg {
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::FuncAddr { dst, func: f });
        dst
    }

    // ---- calls ------------------------------------------------------------

    /// Calls `callee`; returns its result register if it has one.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the declaration.
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> Option<Reg> {
        let sig = &self.module.funcs[callee.0 as usize];
        assert_eq!(
            sig.params.len(),
            args.len(),
            "arity mismatch calling {}",
            sig.name
        );
        let ret = sig.ret;
        let dst = ret.map(|ty| self.def(ty));
        self.emit(Inst::Call {
            dst,
            func: callee,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls through a code address; `ret` gives the expected result type.
    pub fn call_indirect(
        &mut self,
        target: impl Into<Operand>,
        args: &[Operand],
        ret: Option<Ty>,
    ) -> Option<Reg> {
        let dst = ret.map(|ty| self.def(ty));
        self.emit(Inst::CallIndirect {
            dst,
            target: target.into(),
            args: args.to_vec(),
        });
        dst
    }

    /// Calls an intrinsic that returns an `I64`/pointer-like value.
    pub fn intr(&mut self, name: &str, args: &[Operand]) -> Reg {
        let id = self.module.intrinsic(name);
        let dst = self.def(Ty::I64);
        self.emit(Inst::CallIntrinsic {
            dst: Some(dst),
            intrinsic: id,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls an intrinsic returning a pointer.
    pub fn intr_ptr(&mut self, name: &str, args: &[Operand]) -> Reg {
        let id = self.module.intrinsic(name);
        let dst = self.def(Ty::Ptr);
        self.emit(Inst::CallIntrinsic {
            dst: Some(dst),
            intrinsic: id,
            args: args.to_vec(),
        });
        dst
    }

    /// Calls an intrinsic for effect only.
    pub fn intr_void(&mut self, name: &str, args: &[Operand]) {
        let id = self.module.intrinsic(name);
        self.emit(Inst::CallIntrinsic {
            dst: None,
            intrinsic: id,
            args: args.to_vec(),
        });
    }

    // ---- control flow ------------------------------------------------------

    fn terminate(&mut self, term: Term) {
        let cur = self.cur.0 as usize;
        let f = self.func();
        debug_assert!(
            matches!(f.blocks[cur].term, Term::Unreachable),
            "block already terminated in {}",
            f.name
        );
        f.blocks[cur].term = term;
    }

    /// Unconditional jump; leaves the current block terminated.
    pub fn jmp(&mut self, b: BlockId) {
        self.terminate(Term::Jmp(b));
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: impl Into<Operand>, t: BlockId, f: BlockId) {
        self.terminate(Term::Br {
            cond: cond.into(),
            t,
            f,
        });
    }

    /// Return.
    pub fn ret(&mut self, v: Option<Operand>) {
        self.terminate(Term::Ret(v));
    }

    /// Builds a counted loop `for i in start..end` (unsigned, step 1).
    ///
    /// The body closure receives the builder and the register holding `i`.
    /// On return, the builder is positioned in the exit block. The emitted
    /// shape (preheader → head with `i < end` guard → body with `i += 1`) is
    /// exactly what [`crate::analysis::scev`] recognizes for check hoisting.
    pub fn count_loop(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let start = start.into();
        let end = end.into();
        let i_local = self.local(Ty::I64);
        let head = self.block();
        let body_bb = self.block();
        let exit = self.block();

        self.set(i_local, start);
        self.jmp(head);

        self.switch_to(head);
        let i0 = self.get(i_local);
        let c = self.cmp(CmpOp::ULt, i0, end);
        self.br(c, body_bb, exit);

        self.switch_to(body_bb);
        let i = self.get(i_local);
        body(self, i);
        // The body may have moved to another block; continue from there.
        let i2 = self.get(i_local);
        let inc = self.add(i2, 1u64);
        self.set(i_local, inc);
        self.jmp(head);

        self.switch_to(exit);
    }

    /// Builds an if/else; both closures end with the builder positioned in a
    /// shared continuation block.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let t = self.block();
        let e = self.block();
        let cont = self.block();
        self.br(cond, t, e);
        self.switch_to(t);
        then_body(self);
        self.jmp(cont);
        self.switch_to(e);
        else_body(self);
        self.jmp(cont);
        self.switch_to(cont);
    }

    /// Builds an if without an else branch.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then_body: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_body, |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Term;

    #[test]
    fn builds_minimal_function() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.func("main", &[], Some(Ty::I64), |fb| {
            let x = fb.add(2u64, 3u64);
            fb.ret(Some(x.into()));
        });
        let m = mb.finish();
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert!(matches!(m.funcs[0].blocks[0].term, Term::Ret(Some(_))));
    }

    #[test]
    fn count_loop_emits_guard_and_increment() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[], None, |fb| {
            fb.count_loop(0u64, 10u64, |_, _| {});
            fb.ret(None);
        });
        let m = mb.finish();
        // entry + head + body + exit.
        assert_eq!(m.funcs[0].blocks.len(), 4);
        assert_eq!(m.funcs[0].locals.len(), 1);
    }

    #[test]
    fn params_occupy_leading_registers() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::Ptr, Ty::I64], None, |fb| {
            assert_eq!(fb.param(0), Reg(0));
            assert_eq!(fb.param(1), Reg(1));
            fb.ret(None);
        });
        let m = mb.finish();
        assert_eq!(m.funcs[0].reg_tys[0], Ty::Ptr);
        assert_eq!(m.funcs[0].reg_tys[1], Ty::I64);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn call_arity_checked() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("g", &[Ty::I64], None);
        mb.func("f", &[], None, |fb| {
            fb.call(callee, &[]);
        });
    }

    #[test]
    fn if_else_creates_diamond() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("f", &[Ty::I64], Some(Ty::I64), |fb| {
            let l = fb.local(Ty::I64);
            let p = fb.param(0);
            fb.if_else(p, |fb| fb.set(l, 1u64), |fb| fb.set(l, 2u64));
            let v = fb.get(l);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        assert_eq!(m.funcs[0].blocks.len(), 4);
    }
}
