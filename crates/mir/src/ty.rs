//! Value types of the mini-IR.

/// Scalar value types.
///
/// `Ptr` is distinguished from `I64` so instrumentation passes can identify
/// pointer creation and pointer loads/stores — Intel MPX in particular must
/// spill/fill bounds (`bndstx`/`bndldx`) exactly when *pointers* cross
/// memory, which is what makes pointer-intensive programs pathological for
/// it (paper §2.2, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 8-bit integer (zero-extended in registers).
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 double, stored bit-cast in a 64-bit register.
    F64,
    /// Pointer. 64 bits in memory; under SGXBounds the high 32 bits carry
    /// the upper-bound tag (paper Fig. 5).
    Ptr,
}

impl Ty {
    /// Width of the type in bytes as stored in memory.
    pub fn width(self) -> u8 {
        match self {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
        }
    }

    /// Returns `true` for the pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Ty::I8.width(), 1);
        assert_eq!(Ty::I16.width(), 2);
        assert_eq!(Ty::I32.width(), 4);
        assert_eq!(Ty::I64.width(), 8);
        assert_eq!(Ty::F64.width(), 8);
        assert_eq!(Ty::Ptr.width(), 8);
        assert!(Ty::Ptr.is_ptr() && !Ty::I64.is_ptr());
    }
}
