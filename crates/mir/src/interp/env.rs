//! Type-keyed state bag shared between the VM and intrinsic handlers.
//!
//! Runtime crates (allocator, SGXBounds runtime, ASan/MPX runtimes) each
//! stash their state here under their own type, so the VM stays agnostic of
//! every scheme.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Heterogeneous, type-keyed container.
#[derive(Default)]
pub struct Env {
    map: HashMap<TypeId, Box<dyn Any>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Stores `value`, replacing any previous value of the same type.
    pub fn insert<T: Any>(&mut self, value: T) {
        self.map.insert(TypeId::of::<T>(), Box::new(value));
    }

    /// Shared access to the stored `T`.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.map
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref())
    }

    /// Mutable access to the stored `T`.
    pub fn get_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut())
    }

    /// Mutable access, inserting `T::default()` first if absent.
    pub fn get_or_default<T: Any + Default>(&mut self) -> &mut T {
        self.map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut()
            .expect("entry just keyed by TypeId of T")
    }

    /// Removes and returns the stored `T`.
    pub fn remove<T: Any>(&mut self) -> Option<T> {
        self.map
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast().ok())
            .map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, PartialEq, Debug)]
    struct Counter(u32);

    #[test]
    fn insert_get_roundtrip() {
        let mut e = Env::new();
        e.insert(Counter(7));
        assert_eq!(e.get::<Counter>(), Some(&Counter(7)));
        e.get_mut::<Counter>().unwrap().0 += 1;
        assert_eq!(e.get::<Counter>().unwrap().0, 8);
    }

    #[test]
    fn get_or_default_inserts() {
        let mut e = Env::new();
        assert!(e.get::<Counter>().is_none());
        e.get_or_default::<Counter>().0 = 3;
        assert_eq!(e.remove::<Counter>(), Some(Counter(3)));
        assert!(e.get::<Counter>().is_none());
    }

    #[test]
    fn distinct_types_do_not_collide() {
        #[derive(Default)]
        struct Other(#[allow(dead_code)] u8);
        let mut e = Env::new();
        e.insert(Counter(1));
        e.insert(Other(2));
        assert!(e.get::<Counter>().is_some());
        assert!(e.get::<Other>().is_some());
    }
}
