//! Trap-recovery policies consulted by the interpreter's scheduler loop.
//!
//! The paper's §4.2 argues that availability — surviving a bug instead of
//! dying on the first trap — is SGXBounds' key operational advantage over
//! fail-stop schemes. This module makes the *response* to a trap a
//! first-class, configurable policy (as CGuard does for violation
//! handling): the default [`RecoveryPolicy::Abort`] propagates traps
//! exactly as before (the hook sits on the already-terminal trap path, so
//! it costs nothing when disabled), while drivers such as `sgxs-resil` can
//! select graceful per-request exits, boundless toleration, or bounded
//! retry of transient environmental faults.
//!
//! Policies form a small lattice ordered by how much execution they
//! preserve: `Abort` ⊑ `GracefulExit` ⊑ `RetryWithBackoff` ⊑ `Boundless`
//! (boundless never even reaches the trap path for redirected accesses).
//! A [`PolicySet`] assigns one policy per [`TrapClass`] with a default,
//! so e.g. safety violations can abort while allocator OOM retries.

use super::trap::Trap;

/// What the interpreter should do when a trap reaches the scheduler loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Fail-stop: propagate the trap to the caller (the default).
    Abort,
    /// Crash-only semantics: convert the trap into a clean `Ok(0)` exit of
    /// the current `run()` and count the run as degraded. Per-request
    /// drivers use this so one poisoned request cannot take down the
    /// server loop.
    GracefulExit,
    /// Tolerate scheme detections: a `SafetyViolation` that still escapes a
    /// failure-oblivious runtime ends the run cleanly (degraded); every
    /// other trap propagates. This is the interpreter-level backstop for
    /// boundless-memory configurations, whose runtime absorbs violations
    /// before they ever become traps.
    Boundless,
    /// Re-execute the faulting operation, charging `backoff` cycles per
    /// attempt (linearly growing), up to `max_attempts` per run. Only
    /// environmental faults raised *inside* intrinsic handlers are
    /// retried — for those the faulting call's instruction pointer has not
    /// advanced, so the retry simply re-executes the call. Deterministic
    /// program traps (division by zero, wild stores) propagate regardless.
    RetryWithBackoff {
        /// Retry budget per `run()` invocation.
        max_attempts: u32,
        /// Cycles charged to the faulting thread per attempt.
        backoff: u64,
    },
}

/// Coarse trap classification used for per-kind policy overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapClass {
    /// Hardware-level memory faults.
    Mem,
    /// Scheme-detected memory-safety violations.
    Safety,
    /// Allocator / enclave-capacity exhaustion (the retryable
    /// environmental fault class).
    Oom,
    /// Explicit `abort` or runtime failure paths.
    Abort,
    /// Arithmetic traps (division by zero).
    Arith,
    /// Stack exhaustion.
    Stack,
    /// Harness limits (instruction budget) — note these are enforced
    /// outside the recovery hook and always propagate.
    Limit,
    /// Everything else (thread misuse, unknown intrinsics, bad calls).
    Other,
}

impl TrapClass {
    /// Classifies a trap.
    pub fn of(trap: &Trap) -> TrapClass {
        match trap {
            Trap::Mem(_) => TrapClass::Mem,
            Trap::SafetyViolation { .. } => TrapClass::Safety,
            Trap::OutOfMemory { .. } => TrapClass::Oom,
            Trap::Abort(_) => TrapClass::Abort,
            Trap::DivByZero => TrapClass::Arith,
            Trap::StackOverflow => TrapClass::Stack,
            Trap::InstructionLimit | Trap::Deadlock => TrapClass::Limit,
            _ => TrapClass::Other,
        }
    }

    /// Short label used in observability events.
    pub fn label(&self) -> &'static str {
        match self {
            TrapClass::Mem => "mem",
            TrapClass::Safety => "safety",
            TrapClass::Oom => "oom",
            TrapClass::Abort => "abort",
            TrapClass::Arith => "arith",
            TrapClass::Stack => "stack",
            TrapClass::Limit => "limit",
            TrapClass::Other => "other",
        }
    }

    /// Whether re-executing the faulting operation is well-defined.
    ///
    /// Only intrinsic-raised environmental faults qualify: the interpreter
    /// advances an intrinsic call's `ip` after the handler succeeds, so a
    /// trap leaves the call ready to re-execute. Allocator OOM is the
    /// canonical (and currently only) member.
    pub fn retryable(&self) -> bool {
        matches!(self, TrapClass::Oom)
    }
}

/// A default policy plus per-trap-class overrides.
#[derive(Debug, Clone)]
pub struct PolicySet {
    default: RecoveryPolicy,
    overrides: Vec<(TrapClass, RecoveryPolicy)>,
}

impl PolicySet {
    /// One policy for every trap class.
    pub fn uniform(policy: RecoveryPolicy) -> Self {
        PolicySet {
            default: policy,
            overrides: Vec::new(),
        }
    }

    /// Adds (or replaces) a per-class override.
    pub fn with_override(mut self, class: TrapClass, policy: RecoveryPolicy) -> Self {
        if let Some(slot) = self.overrides.iter_mut().find(|(c, _)| *c == class) {
            slot.1 = policy;
        } else {
            self.overrides.push((class, policy));
        }
        self
    }

    /// The policy governing `class`.
    pub fn policy_for(&self, class: TrapClass) -> RecoveryPolicy {
        self.overrides
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, p)| *p)
            .unwrap_or(self.default)
    }
}

impl Default for PolicySet {
    fn default() -> Self {
        PolicySet::uniform(RecoveryPolicy::Abort)
    }
}

/// Recovery-activity counters, cumulative over a `Vm`'s lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Retries performed (`recovery.attempt` events).
    pub attempts: u64,
    /// Traps converted into degraded-but-clean exits
    /// (`recovery.degraded` events).
    pub degraded: u64,
    /// Retry budgets exhausted (`recovery.gave_up` events).
    pub gave_up: u64,
}

/// Internal decision returned by the interpreter's policy consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecoveryAction {
    /// Propagate the trap unchanged.
    Propagate,
    /// End the run cleanly with `Ok(0)`; the stats record the degradation.
    ExitDegraded,
    /// Resume the scheduler loop; the faulting operation re-executes.
    Retry,
}

/// Live policy state attached to a `Vm` by `set_recovery`.
pub(crate) struct RecoveryCtl {
    pub(crate) policies: PolicySet,
    pub(crate) stats: RecoveryStats,
    /// Retry attempts consumed by the current `run()` (reset per run).
    pub(crate) attempts_this_run: u32,
}

impl RecoveryCtl {
    pub(crate) fn new(policies: PolicySet) -> Self {
        RecoveryCtl {
            policies,
            stats: RecoveryStats::default(),
            attempts_this_run: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_shadow_the_default() {
        let set = PolicySet::uniform(RecoveryPolicy::Abort)
            .with_override(TrapClass::Oom, RecoveryPolicy::GracefulExit)
            .with_override(TrapClass::Oom, RecoveryPolicy::Boundless);
        assert_eq!(set.policy_for(TrapClass::Oom), RecoveryPolicy::Boundless);
        assert_eq!(set.policy_for(TrapClass::Safety), RecoveryPolicy::Abort);
    }

    #[test]
    fn classification_covers_the_trap_surface() {
        assert_eq!(
            TrapClass::of(&Trap::OutOfMemory {
                requested: 1,
                reserved: 0
            }),
            TrapClass::Oom
        );
        assert_eq!(TrapClass::of(&Trap::DivByZero), TrapClass::Arith);
        assert_eq!(TrapClass::of(&Trap::StackOverflow), TrapClass::Stack);
        assert_eq!(TrapClass::of(&Trap::InstructionLimit), TrapClass::Limit);
        assert!(TrapClass::Oom.retryable());
        assert!(!TrapClass::Safety.retryable());
    }
}
