//! Abnormal termination reasons for simulated programs.

use sgxs_sim::MemFault;

/// Why a memory access was performed (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access.
    Write,
    /// Atomic read-modify-write.
    ReadWrite,
}

/// A fatal condition that stops the whole simulated program.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Hardware-level memory fault (wild pointer, forbidden page, tag bits
    /// reaching the memory system).
    Mem(MemFault),
    /// A protection scheme detected a memory-safety violation and the
    /// program runs in fail-stop mode. `scheme` is the detecting scheme's
    /// name ("sgxbounds", "asan", "mpx").
    SafetyViolation {
        /// Detecting scheme.
        scheme: &'static str,
        /// Offending (possibly tagged) address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
        /// Access kind.
        access: AccessKind,
        /// Human-readable detail.
        msg: String,
    },
    /// The allocator could not satisfy a request within the enclave address
    /// space (how MPX dies on SQLite/dedup/astar/mcf/xalanc, paper §6).
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes already reserved.
        reserved: u64,
    },
    /// The program called `abort` or an equivalent runtime failure path.
    Abort(String),
    /// Integer division by zero.
    DivByZero,
    /// Indirect call whose target is not a function address.
    BadIndirectCall {
        /// The bogus target value.
        target: u64,
    },
    /// Thread stack exhausted.
    StackOverflow,
    /// The configured instruction budget ran out (also how we contain the
    /// memcached CVE-2011-4971 infinite loop the paper observed under
    /// boundless memory, §7).
    InstructionLimit,
    /// `unreachable` executed.
    Unreachable,
    /// All live threads are blocked.
    Deadlock,
    /// Intrinsic with no registered handler.
    UnknownIntrinsic(String),
    /// Entry function not found.
    NoEntry(String),
    /// Thread-related misuse (bad join target, too many threads).
    ThreadError(String),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Mem(m) => write!(f, "{m}"),
            Trap::SafetyViolation {
                scheme,
                addr,
                size,
                access,
                msg,
            } => write!(
                f,
                "[{scheme}] bounds violation: {access:?} of {size} bytes at {addr:#x} ({msg})"
            ),
            Trap::OutOfMemory {
                requested,
                reserved,
            } => write!(
                f,
                "out of enclave memory: requested {requested} bytes with {reserved} reserved"
            ),
            Trap::Abort(m) => write!(f, "abort: {m}"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::BadIndirectCall { target } => {
                write!(f, "indirect call to non-function {target:#x}")
            }
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::InstructionLimit => write!(f, "instruction budget exhausted"),
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::Deadlock => write!(f, "deadlock: all threads blocked"),
            Trap::UnknownIntrinsic(n) => write!(f, "unknown intrinsic '{n}'"),
            Trap::NoEntry(n) => write!(f, "entry function '{n}' not found"),
            Trap::ThreadError(m) => write!(f, "thread error: {m}"),
        }
    }
}

impl std::error::Error for Trap {}

impl Trap {
    /// True if this trap is a *detection* by a protection scheme (as opposed
    /// to a crash, resource failure, or harness limit).
    pub fn is_detection(&self) -> bool {
        matches!(self, Trap::SafetyViolation { .. })
    }
}
