//! A multithreaded, cost-accounting interpreter for the mini-IR.
//!
//! Threads are simulated with a deterministic discrete-event scheduler: at
//! every step the runnable thread with the smallest cycle count executes one
//! quantum. This approximates parallel execution on the modelled 8-core
//! machine (wall-clock time is the maximum per-thread cycle count), makes
//! every run exactly reproducible, and still exhibits the interleavings that
//! matter for the paper — e.g. the §4.1 demonstration that MPX-style
//! disjoint metadata desynchronizes from its pointer under concurrent
//! updates, while an SGXBounds tagged pointer cannot (tag and pointer share
//! one 64-bit word).
//!
//! Intrinsics are the boundary to the host runtime (allocator, libc
//! wrappers, protection-scheme runtimes). Scheduling-sensitive intrinsics
//! (`spawn`, `join`, mutexes, `exit`) are built into the VM; everything else
//! is a registered handler operating on [`Machine`] + [`Env`].

pub mod env;
pub mod recovery;
pub mod trap;

pub use env::Env;
pub use recovery::{PolicySet, RecoveryPolicy, RecoveryStats, TrapClass};
pub use trap::{AccessKind, Trap};

use recovery::{RecoveryAction, RecoveryCtl};

use crate::ir::{
    BinOp, CastKind, CmpOp, FBinOp, FCmpOp, FuncId, Inst, Module, Operand, Reg, SiteMarker, Term,
};
use sgxs_sim::obs::Event;
use sgxs_sim::{Machine, MachineConfig, Stats};
use std::collections::HashMap;

/// Base address where globals are laid out.
pub const GLOBALS_BASE: u32 = 0x0001_0000;
/// Base of the synthetic code-address region used by [`Inst::FuncAddr`].
pub const CODE_BASE: u64 = 0xF100_0000;
/// Spacing between synthetic function addresses.
pub const CODE_STRIDE: u64 = 16;
/// Default top of the thread-stack region (stacks grow down from here).
pub const STACK_TOP: u32 = 0xE000_0000;

/// Returns the synthetic code address of a function.
pub fn code_addr(f: FuncId) -> u64 {
    CODE_BASE + f.0 as u64 * CODE_STRIDE
}

/// Maps a code address back to a function index, if it is one.
pub fn func_of_code_addr(addr: u64, nfuncs: usize) -> Option<FuncId> {
    if addr < CODE_BASE || !(addr - CODE_BASE).is_multiple_of(CODE_STRIDE) {
        return None;
    }
    let idx = (addr - CODE_BASE) / CODE_STRIDE;
    (idx < nfuncs as u64).then_some(FuncId(idx as u32))
}

/// VM configuration.
#[derive(Clone, Copy)]
pub struct VmConfig {
    /// Machine (caches, EPC, cost model).
    pub machine: MachineConfig,
    /// Hard cap on total executed instructions.
    pub max_instructions: u64,
    /// Instructions per scheduling quantum.
    pub quantum: u32,
    /// Per-thread stack size in bytes.
    pub stack_size: u32,
    /// Maximum number of threads (including main).
    pub max_threads: usize,
}

impl VmConfig {
    /// Reasonable defaults on top of a machine configuration.
    pub fn new(machine: MachineConfig) -> Self {
        VmConfig {
            machine,
            max_instructions: 2_000_000_000,
            quantum: 64,
            stack_size: 256 << 10,
            max_threads: 64,
        }
    }
}

/// Context passed to intrinsic handlers.
pub struct IntrinsicCtx<'a> {
    /// The machine (memory + caches + counters).
    pub machine: &'a mut Machine,
    /// Shared runtime state bag.
    pub env: &'a mut Env,
    /// Core of the calling thread.
    pub core: usize,
    /// Cycles the handler has charged so far (added to the calling thread).
    pub cycles: u64,
    /// Captured program output lines.
    pub output: &'a mut Vec<String>,
}

impl IntrinsicCtx<'_> {
    /// Charged load on behalf of the program.
    pub fn load(&mut self, addr: u64, len: u8) -> Result<u64, Trap> {
        let (v, c) = self.machine.load(self.core, addr, len).map_err(Trap::Mem)?;
        self.cycles += c;
        Ok(v)
    }

    /// Charged store on behalf of the program.
    pub fn store(&mut self, addr: u64, len: u8, val: u64) -> Result<(), Trap> {
        let c = self
            .machine
            .store(self.core, addr, len, val)
            .map_err(Trap::Mem)?;
        self.cycles += c;
        Ok(())
    }

    /// Charges a bulk transfer (one cache access per line).
    pub fn charge_bulk(&mut self, addr: u64, len: u32, is_store: bool) -> Result<(), Trap> {
        let c = self
            .machine
            .charge_bulk(self.core, addr, len, is_store)
            .map_err(Trap::Mem)?;
        self.cycles += c;
        Ok(())
    }

    /// Charges flat cycles (ALU work inside the runtime).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
}

/// Handler signature for registered intrinsics.
pub type IntrinsicFn = Box<dyn FnMut(&mut IntrinsicCtx<'_>, &[u64]) -> Result<Option<u64>, Trap>>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Builtin {
    Spawn,
    Join,
    ThreadId,
    NCores,
    MutexLock,
    MutexUnlock,
    Exit,
    Abort,
    PrintI64,
}

#[derive(Clone, Copy)]
enum Resolved {
    Builtin(Builtin),
    Handler(usize),
    Unknown,
}

/// One activation record of the interpreted call stack.
///
/// Public so an alternative execution tier (see [`QuantumEngine`]) can read
/// and write the architectural thread state directly; the reference
/// interpreter remains the authority on what each field means.
pub struct Frame {
    /// Index of the executing function in `module.funcs`.
    pub func: usize,
    /// Current basic block.
    pub block: u32,
    /// Instruction index within the block; `insts.len()` addresses the
    /// terminator.
    pub ip: u32,
    /// Virtual registers.
    pub regs: Box<[u64]>,
    /// Function-local variables (zero-cycle access, never addressable).
    pub locals: Box<[u64]>,
    /// Runtime addresses of the function's stack slots.
    pub slots: Box<[u32]>,
    /// Caller register receiving the return value, if any.
    pub ret_dst: Option<Reg>,
    /// Caller stack pointer to restore on return.
    pub saved_sp: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedOnMutex(u64),
    Joining(usize),
    Done,
}

struct Thread {
    frames: Vec<Frame>,
    cycles: u64,
    state: ThreadState,
    core: usize,
    sp: u32,
    stack_limit: u32,
    retval: u64,
    // Check site this thread is inside (site ID, thread cycles at Begin).
    // Only maintained when an enabled recorder is installed.
    obs_site: Option<(u32, u64)>,
}

struct MutexState {
    owner: Option<usize>,
    pending_grant: bool,
    waiters: std::collections::VecDeque<usize>,
}

/// Result of running a module to completion (or failure).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Entry function's return value, or the trap that stopped the program.
    pub result: Result<u64, Trap>,
    /// Simulated wall-clock cycles (max over threads).
    pub wall_cycles: u64,
    /// Summed per-thread cycles (total CPU time; the denominator for
    /// app-vs-instrumentation cycle attribution).
    pub cpu_cycles: u64,
    /// Hardware counters.
    pub stats: Stats,
    /// Peak reserved virtual memory in bytes (the paper's memory metric).
    pub peak_reserved: u64,
    /// Peak committed (touched) memory in bytes.
    pub peak_committed: u64,
    /// Captured output lines.
    pub output: Vec<String>,
}

impl RunOutcome {
    /// Unwraps a successful exit code.
    ///
    /// # Panics
    ///
    /// Panics with the trap message if the program trapped.
    pub fn expect_ok(&self) -> u64 {
        match &self.result {
            Ok(v) => *v,
            Err(t) => panic!("program trapped: {t}"),
        }
    }
}

/// An alternative per-quantum execution strategy for the VM.
///
/// The scheduler, recovery loop, intrinsic handlers, and machine model stay
/// in the VM; an engine only replaces the instruction-dispatch inner loop
/// ([`Vm::run_quantum`]'s job): run up to `quantum` counted instructions of
/// thread `tid`, with semantics, cycle charges, counters, and event ordering
/// bit-identical to the reference interpreter. `sgxs-exec` provides the
/// pre-lowered fast tier; installing nothing keeps the reference oracle.
pub trait QuantumEngine {
    /// Executes one scheduling quantum of thread `tid`.
    fn run_quantum(&mut self, vm: &mut Vm<'_>, tid: usize) -> Result<(), Trap>;
}

/// Mutable views of the state an engine touches on every instruction,
/// borrowed disjointly so the hot loop pays no re-indexing per op.
pub struct HotRefs<'a> {
    /// The machine (memory, caches, counters, event recorder).
    pub machine: &'a mut Machine,
    /// The executing thread's top frame.
    pub frame: &'a mut Frame,
    /// The executing thread's cycle counter.
    pub cycles: &'a mut u64,
    /// The thread's open check site, `(site, cycles at Begin)`; engines must
    /// replicate [`SiteMarker`] handling against this exactly.
    pub obs_site: &'a mut Option<(u32, u64)>,
    /// The core the thread is pinned to (selects the private caches).
    pub core: usize,
}

/// The virtual machine.
pub struct Vm<'m> {
    /// The module being executed.
    pub module: &'m Module,
    /// The machine model.
    pub machine: Machine,
    /// Shared runtime state.
    pub env: Env,
    /// Captured program output.
    pub output: Vec<String>,
    cfg: VmConfig,
    handler_names: Vec<String>,
    handler_fns: Vec<Option<IntrinsicFn>>,
    resolved: Vec<Resolved>,
    globals_addr: Vec<u32>,
    heap_base: u32,
    threads: Vec<Thread>,
    mutexes: HashMap<u64, MutexState>,
    exited: Option<u64>,
    recovery: Option<RecoveryCtl>,
    engine: Option<Box<dyn QuantumEngine>>,
    /// Per-function constant pools appended to `Frame::regs` at frame
    /// construction (installed together with a compiled engine). The
    /// reference tier never reads the appended slots, so frame semantics
    /// are unchanged whether or not pools are installed.
    frame_consts: Option<Box<[Box<[u64]>]>>,
}

impl<'m> Vm<'m> {
    /// Creates a VM for `module`, laying out its globals in memory.
    pub fn new(module: &'m Module, cfg: VmConfig) -> Self {
        let mut machine = Machine::new(cfg.machine);
        let mut addr = GLOBALS_BASE;
        let mut globals_addr = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let align = g.align.max(1);
            addr = (addr + align - 1) & !(align - 1);
            globals_addr.push(addr);
            if !g.init.is_empty() {
                machine.mem.write_bytes(addr, &g.init);
            }
            addr = addr
                .checked_add(g.padded_size.max(1))
                .expect("globals exceed address space");
        }
        let heap_base = (addr + 4095) & !4095;
        // Account globals as reserved program memory.
        machine.mem.reserve((heap_base - GLOBALS_BASE) as u64);
        Vm {
            module,
            machine,
            env: Env::new(),
            output: Vec::new(),
            cfg,
            handler_names: Vec::new(),
            handler_fns: Vec::new(),
            resolved: Vec::new(),
            globals_addr,
            heap_base,
            threads: Vec::new(),
            mutexes: HashMap::new(),
            exited: None,
            recovery: None,
            engine: None,
            frame_consts: None,
        }
    }

    /// Installs an alternative execution engine (e.g. the `sgxs-exec`
    /// compiled tier) that replaces the reference dispatch loop. Everything
    /// else — scheduling, recovery, intrinsics, the machine — is shared.
    pub fn set_engine(&mut self, engine: Box<dyn QuantumEngine>) {
        self.engine = Some(engine);
    }

    /// Removes any installed engine (and its frame constant pools); the
    /// reference interpreter runs again.
    pub fn clear_engine(&mut self) {
        self.engine = None;
        self.frame_consts = None;
    }

    /// Installs per-function constant pools that [`Vm`] appends to
    /// `Frame::regs` after the architectural registers when building
    /// frames. A compiled engine uses the extra slots as pre-interned
    /// immediates; the reference dispatch never indexes past the
    /// architectural registers, so behaviour is identical either way.
    /// `consts` must have one entry per module function.
    pub fn set_frame_consts(&mut self, consts: Vec<Box<[u64]>>) {
        assert_eq!(
            consts.len(),
            self.module.funcs.len(),
            "one constant pool per function"
        );
        self.frame_consts = Some(consts.into_boxed_slice());
    }

    /// Whether an alternative engine is installed.
    pub fn engine_installed(&self) -> bool {
        self.engine.is_some()
    }

    /// The VM configuration (quantum length, machine, limits).
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// Installs a trap-recovery policy set consulted whenever a trap
    /// reaches the scheduler loop. With no policy installed (or with
    /// [`RecoveryPolicy::Abort`] everywhere, the default) traps propagate
    /// exactly as before; the consultation happens only on the
    /// already-terminal trap path, so the hot path is untouched.
    pub fn set_recovery(&mut self, policies: PolicySet) {
        self.recovery = Some(RecoveryCtl::new(policies));
    }

    /// Removes any installed recovery policy (traps propagate again).
    pub fn clear_recovery(&mut self) {
        self.recovery = None;
    }

    /// Recovery-activity counters, cumulative across `run()` calls.
    /// Zero if no policy is installed.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// First heap address (just past the globals), page-aligned.
    pub fn heap_base(&self) -> u32 {
        self.heap_base
    }

    /// Runtime address of a global.
    pub fn global_addr(&self, g: crate::ir::GlobalId) -> u32 {
        self.globals_addr[g.0 as usize]
    }

    /// Registers (or replaces) an intrinsic handler by name.
    pub fn register_intrinsic(
        &mut self,
        name: &str,
        f: impl FnMut(&mut IntrinsicCtx<'_>, &[u64]) -> Result<Option<u64>, Trap> + 'static,
    ) {
        if let Some(i) = self.handler_names.iter().position(|n| n == name) {
            self.handler_fns[i] = Some(Box::new(f));
        } else {
            self.handler_names.push(name.to_owned());
            self.handler_fns.push(Some(Box::new(f)));
        }
    }

    fn resolve_intrinsics(&mut self) {
        self.resolved = self
            .module
            .intrinsics
            .iter()
            .map(|name| match name.as_str() {
                "spawn" => Resolved::Builtin(Builtin::Spawn),
                "join" => Resolved::Builtin(Builtin::Join),
                "thread_id" => Resolved::Builtin(Builtin::ThreadId),
                "ncores" => Resolved::Builtin(Builtin::NCores),
                "mutex_lock" => Resolved::Builtin(Builtin::MutexLock),
                "mutex_unlock" => Resolved::Builtin(Builtin::MutexUnlock),
                "exit" => Resolved::Builtin(Builtin::Exit),
                "abort" => Resolved::Builtin(Builtin::Abort),
                "print_i64" => Resolved::Builtin(Builtin::PrintI64),
                other => match self.handler_names.iter().position(|n| n == other) {
                    Some(i) => Resolved::Handler(i),
                    None => Resolved::Unknown,
                },
            })
            .collect();
    }

    fn make_frame(
        &mut self,
        tid: usize,
        func: usize,
        args: &[u64],
        ret_dst: Option<Reg>,
    ) -> Result<Frame, Trap> {
        let f = &self.module.funcs[func];
        debug_assert_eq!(f.params.len(), args.len(), "arity checked by verifier");
        let consts = self.frame_consts.as_ref().map(|c| &*c[func]).unwrap_or(&[]);
        let mut regs = vec![0u64; f.reg_tys.len() + consts.len()].into_boxed_slice();
        regs[..args.len()].copy_from_slice(args);
        regs[f.reg_tys.len()..].copy_from_slice(consts);
        let locals = vec![0u64; f.locals.len()].into_boxed_slice();
        let t = &mut self.threads[tid];
        let saved_sp = t.sp;
        let mut sp = t.sp;
        let mut slots = Vec::with_capacity(f.slots.len());
        for s in &f.slots {
            let size = s.padded_size.max(1);
            sp = sp.checked_sub(size).ok_or(Trap::StackOverflow)?;
            sp &= !(s.align.max(1) - 1);
            if sp < t.stack_limit {
                return Err(Trap::StackOverflow);
            }
            slots.push(sp);
        }
        t.sp = sp;
        if t.frames.len() >= 4096 {
            return Err(Trap::StackOverflow);
        }
        Ok(Frame {
            func,
            block: 0,
            ip: 0,
            regs,
            locals,
            slots: slots.into_boxed_slice(),
            ret_dst,
            saved_sp,
        })
    }

    fn spawn_thread(&mut self, func: usize, args: &[u64], cycles: u64) -> Result<usize, Trap> {
        if self.threads.len() >= self.cfg.max_threads {
            return Err(Trap::ThreadError("too many threads".into()));
        }
        let tid = self.threads.len();
        let top = STACK_TOP - (tid as u32) * self.cfg.stack_size;
        let limit = top - self.cfg.stack_size + 4096;
        self.machine.mem.reserve(self.cfg.stack_size as u64);
        self.threads.push(Thread {
            frames: Vec::new(),
            cycles,
            state: ThreadState::Runnable,
            core: tid % self.cfg.machine.cores,
            sp: top,
            stack_limit: limit,
            retval: 0,
            obs_site: None,
        });
        let frame = self.make_frame(tid, func, args, None)?;
        self.threads[tid].frames.push(frame);
        Ok(tid)
    }

    /// Runs `entry(args...)` to completion.
    pub fn run(&mut self, entry: &str, args: &[u64]) -> RunOutcome {
        let result = self.run_inner(entry, args);
        let wall = self.threads.iter().map(|t| t.cycles).max().unwrap_or(0);
        let cpu = self.threads.iter().map(|t| t.cycles).sum();
        RunOutcome {
            result,
            wall_cycles: wall,
            cpu_cycles: cpu,
            stats: self.machine.stats,
            peak_reserved: self.machine.mem.peak_reserved(),
            peak_committed: self.machine.mem.peak_committed(),
            output: std::mem::take(&mut self.output),
        }
    }

    fn run_inner(&mut self, entry: &str, args: &[u64]) -> Result<u64, Trap> {
        let Some(fid) = self.module.func_by_name(entry) else {
            return Err(Trap::NoEntry(entry.to_owned()));
        };
        self.resolve_intrinsics();
        self.threads.clear();
        self.mutexes.clear();
        self.exited = None;
        if let Some(ctl) = self.recovery.as_mut() {
            ctl.attempts_this_run = 0;
        }
        self.spawn_thread(fid.0 as usize, args, 0)?;
        loop {
            // Pick the runnable thread with the smallest cycle count.
            let mut best: Option<usize> = None;
            for (i, t) in self.threads.iter().enumerate() {
                if t.state == ThreadState::Runnable
                    && best.is_none_or(|b| t.cycles < self.threads[b].cycles)
                {
                    best = Some(i);
                }
            }
            let Some(tid) = best else {
                if self.threads.iter().all(|t| t.state == ThreadState::Done) {
                    return Ok(self.threads[0].retval);
                }
                return Err(Trap::Deadlock);
            };
            // Dispatch the quantum through the installed engine, if any.
            // The engine is taken out for the call so it can borrow the VM
            // mutably, then put back (engines never call `run`).
            let step = match self.engine.take() {
                Some(mut e) => {
                    let r = e.run_quantum(self, tid);
                    self.engine = Some(e);
                    r
                }
                None => self.run_quantum(tid),
            };
            if let Err(trap) = step {
                match self.consult_recovery(&trap, tid) {
                    RecoveryAction::Propagate => return Err(trap),
                    RecoveryAction::ExitDegraded => return Ok(0),
                    RecoveryAction::Retry => {}
                }
            }
            if let Some(code) = self.exited {
                return Ok(code);
            }
            if self.threads[0].state == ThreadState::Done {
                return Ok(self.threads[0].retval);
            }
            if self.machine.stats.instructions > self.cfg.max_instructions {
                return Err(Trap::InstructionLimit);
            }
        }
    }

    /// Consults the installed recovery policy about a trap that reached
    /// the scheduler loop. Cold path: runs at most once per trap, which is
    /// otherwise terminal for the whole run.
    fn consult_recovery(&mut self, trap: &Trap, tid: usize) -> RecoveryAction {
        let Some(ctl) = self.recovery.as_mut() else {
            return RecoveryAction::Propagate;
        };
        let class = TrapClass::of(trap);
        let kind = class.label();
        match ctl.policies.policy_for(class) {
            RecoveryPolicy::Abort => RecoveryAction::Propagate,
            RecoveryPolicy::GracefulExit => {
                ctl.stats.degraded += 1;
                if self.machine.obs_enabled() {
                    self.machine.emit(Event::RecoveryDegraded { kind });
                }
                RecoveryAction::ExitDegraded
            }
            RecoveryPolicy::Boundless => {
                // The boundless runtime absorbs violations before they trap;
                // one that still escapes (e.g. a fail-stop libc wrapper) ends
                // the run degraded-but-clean. Other traps stay fatal.
                if class == TrapClass::Safety {
                    ctl.stats.degraded += 1;
                    if self.machine.obs_enabled() {
                        self.machine.emit(Event::RecoveryDegraded { kind });
                    }
                    RecoveryAction::ExitDegraded
                } else {
                    RecoveryAction::Propagate
                }
            }
            RecoveryPolicy::RetryWithBackoff {
                max_attempts,
                backoff,
            } => {
                if !class.retryable() {
                    return RecoveryAction::Propagate;
                }
                if ctl.attempts_this_run >= max_attempts {
                    ctl.stats.gave_up += 1;
                    let attempts = ctl.attempts_this_run;
                    if self.machine.obs_enabled() {
                        self.machine.emit(Event::RecoveryGaveUp { kind, attempts });
                    }
                    return RecoveryAction::Propagate;
                }
                ctl.attempts_this_run += 1;
                ctl.stats.attempts += 1;
                let attempt = ctl.attempts_this_run;
                // Linear backoff: waiting longer each time models the
                // enclave riding out an environmental pressure spike.
                self.threads[tid].cycles += backoff * attempt as u64;
                if self.machine.obs_enabled() {
                    self.machine.emit(Event::RecoveryAttempt { kind, attempt });
                }
                RecoveryAction::Retry
            }
        }
    }

    fn run_quantum(&mut self, tid: usize) -> Result<(), Trap> {
        let module = self.module;
        for _ in 0..self.cfg.quantum {
            if self.threads[tid].state != ThreadState::Runnable {
                return Ok(());
            }
            let frame = self.threads[tid]
                .frames
                .last()
                .expect("runnable thread has a frame");
            let func = &module.funcs[frame.func];
            let block = &func.blocks[frame.block as usize];
            let mut ip = frame.ip as usize;
            // Site markers are transparent: consume them *outside* the
            // counted instruction stream so they never retire an
            // instruction, charge a cycle, or occupy a quantum slot —
            // instrumented runs keep bit-identical counters and scheduling.
            while let Some(&Inst::Site { site, marker }) = block.insts.get(ip) {
                self.note_site(tid, site, marker);
                ip += 1;
                self.threads[tid].frames.last_mut().expect("has frame").ip = ip as u32;
            }
            self.machine.stats.instructions += 1;
            if ip < block.insts.len() {
                // SAFETY-free borrow dance: instructions are read from the
                // immutable module reference, never from self.
                let inst = &block.insts[ip];
                self.exec_inst(tid, inst)?;
            } else {
                let term = &block.term;
                self.exec_term(tid, term)?;
            }
            if self.exited.is_some() {
                return Ok(());
            }
        }
        Ok(())
    }

    // ---- Engine support -------------------------------------------------
    //
    // The accessors below are the complete surface an alternative
    // execution tier needs: the per-instruction hot state, and entry
    // points into the cold paths (calls, returns, intrinsics) that stay
    // shared with the reference interpreter so their semantics cannot
    // drift between tiers.

    /// Borrows the per-instruction hot state of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no frame (engines only run runnable
    /// threads, which always have one).
    pub fn engine_hot(&mut self, tid: usize) -> HotRefs<'_> {
        let t = &mut self.threads[tid];
        HotRefs {
            machine: &mut self.machine,
            frame: t.frames.last_mut().expect("runnable thread has a frame"),
            cycles: &mut t.cycles,
            obs_site: &mut t.obs_site,
            core: t.core,
        }
    }

    /// Whether thread `tid` is runnable (not blocked, joining, or done).
    pub fn engine_runnable(&self, tid: usize) -> bool {
        self.threads[tid].state == ThreadState::Runnable
    }

    /// Whether the program has called the `exit` intrinsic.
    pub fn engine_exited(&self) -> bool {
        self.exited.is_some()
    }

    /// Scheduler-replication bounds for an engine running thread `tid`:
    /// `(lo, hi)` where `lo` is the minimum cycle count among runnable
    /// threads with index `< tid` and `hi` the same for index `> tid`
    /// (`u64::MAX` when the group is empty).
    ///
    /// `run_inner` picks the first runnable thread with the smallest cycle
    /// count between quanta, so it would re-dispatch `tid` exactly when
    /// `tid`'s cycles are `< lo` and `<= hi` (strict against earlier
    /// indices, which win ties). Other threads' cycles and states only
    /// change through `tid`'s own intrinsics/returns while `tid` runs, so
    /// an engine may snapshot these bounds once per dispatch and re-check
    /// them in O(1) at each quantum boundary — skipping the scheduler
    /// round-trip when nothing observable would happen. The same reasoning
    /// pins `exited` and thread 0's done-ness for the duration, leaving
    /// only the instruction limit to re-check against live stats.
    pub fn engine_rival_cycles(&self, tid: usize) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = u64::MAX;
        for (i, t) in self.threads.iter().enumerate() {
            if i != tid && t.state == ThreadState::Runnable {
                if i < tid {
                    lo = lo.min(t.cycles);
                } else {
                    hi = hi.min(t.cycles);
                }
            }
        }
        (lo, hi)
    }

    /// Pushes a frame for a call to `func` (index into `module.funcs`).
    ///
    /// The caller's `ip` must already be advanced past the call and the
    /// call cost charged, exactly as the reference interpreter does before
    /// `make_frame` — a stack overflow then traps with that state intact.
    pub fn engine_call(
        &mut self,
        tid: usize,
        func: usize,
        args: &[u64],
        ret_dst: Option<Reg>,
    ) -> Result<(), Trap> {
        let new = self.make_frame(tid, func, args, ret_dst)?;
        self.threads[tid].frames.push(new);
        Ok(())
    }

    /// Pops the top frame returning `val`: restores the caller's stack
    /// pointer, charges the call cost, writes the caller's return register
    /// or — for the last frame — parks the thread and wakes its joiners.
    pub fn engine_ret(&mut self, tid: usize, val: u64) {
        self.do_ret(tid, val);
    }

    /// Executes intrinsic `intrinsic` (index into `module.intrinsics`) for
    /// thread `tid` — the same builtins and registered handlers the
    /// reference interpreter dispatches to, including scheduling effects
    /// (spawn/join/mutex/exit) and cycle charges. The engine must replicate
    /// the caller protocol: flush `ip` to the `CallIntrinsic` *before* the
    /// call, and advance it only if the thread is still runnable after.
    pub fn engine_intrinsic(
        &mut self,
        tid: usize,
        intrinsic: usize,
        args: &[u64],
    ) -> Result<Option<u64>, Trap> {
        self.exec_intrinsic(tid, intrinsic, args)
    }

    /// Handles a transparent site marker: `Begin` snapshots the thread's
    /// cycle count, `End` emits a `CheckExec` event with the cycle delta.
    /// Does nothing unless an enabled recorder is installed.
    fn note_site(&mut self, tid: usize, site: u32, marker: SiteMarker) {
        if !self.machine.obs_enabled() {
            return;
        }
        match marker {
            SiteMarker::Begin => {
                self.threads[tid].obs_site = Some((site, self.threads[tid].cycles));
                if self.machine.spans_enabled() {
                    self.machine.emit(Event::SpanBegin {
                        name: "check",
                        arg: site as u64,
                    });
                }
            }
            SiteMarker::End => {
                // Attribute to the Begin marker's site (tolerating an
                // unmatched End, which simply drops on the floor).
                if let Some((begin_site, at)) = self.threads[tid].obs_site.take() {
                    let cycles = self.threads[tid].cycles.saturating_sub(at);
                    self.machine.emit(Event::CheckExec {
                        site: begin_site,
                        cycles,
                    });
                    // The check span closes *after* its CheckExec so the
                    // cycles attribute to the still-open span. The
                    // compiled tier replicates this order exactly.
                    if self.machine.spans_enabled() {
                        self.machine.emit(Event::SpanEnd { name: "check" });
                    }
                }
                let _ = site;
            }
        }
    }

    #[inline]
    fn val(frame: &Frame, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => frame.regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn exec_inst(&mut self, tid: usize, inst: &Inst) -> Result<(), Trap> {
        let cost = self.cfg.machine.cost;
        // Most instructions only need the top frame; split the borrow.
        macro_rules! frame {
            () => {
                self.threads[tid].frames.last_mut().expect("has frame")
            };
        }
        match inst {
            Inst::Bin { op, dst, a, b } => {
                let f = frame!();
                let x = Self::val(f, *a);
                let y = Self::val(f, *b);
                let v = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::UDiv => {
                        if y == 0 {
                            return Err(Trap::DivByZero);
                        }
                        x / y
                    }
                    BinOp::SDiv => {
                        if y == 0 {
                            return Err(Trap::DivByZero);
                        }
                        (x as i64).wrapping_div(y as i64) as u64
                    }
                    BinOp::URem => {
                        if y == 0 {
                            return Err(Trap::DivByZero);
                        }
                        x % y
                    }
                    BinOp::SRem => {
                        if y == 0 {
                            return Err(Trap::DivByZero);
                        }
                        (x as i64).wrapping_rem(y as i64) as u64
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl(y as u32),
                    BinOp::LShr => x.wrapping_shr(y as u32),
                    BinOp::AShr => ((x as i64).wrapping_shr(y as u32)) as u64,
                };
                f.regs[dst.0 as usize] = v;
                self.threads[tid].cycles += match op {
                    BinOp::Mul => cost.mul,
                    BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => cost.div,
                    _ => cost.alu,
                };
            }
            Inst::Cmp { op, dst, a, b } => {
                let f = frame!();
                let x = Self::val(f, *a);
                let y = Self::val(f, *b);
                let v = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::ULt => x < y,
                    CmpOp::ULe => x <= y,
                    CmpOp::UGt => x > y,
                    CmpOp::UGe => x >= y,
                    CmpOp::SLt => (x as i64) < y as i64,
                    CmpOp::SLe => (x as i64) <= y as i64,
                    CmpOp::SGt => (x as i64) > y as i64,
                    CmpOp::SGe => (x as i64) >= y as i64,
                };
                f.regs[dst.0 as usize] = v as u64;
                self.threads[tid].cycles += cost.alu;
            }
            Inst::FBin { op, dst, a, b } => {
                let f = frame!();
                let x = f64::from_bits(Self::val(f, *a));
                let y = f64::from_bits(Self::val(f, *b));
                let v = match op {
                    FBinOp::Add => x + y,
                    FBinOp::Sub => x - y,
                    FBinOp::Mul => x * y,
                    FBinOp::Div => x / y,
                    FBinOp::Min => x.min(y),
                    FBinOp::Max => x.max(y),
                };
                f.regs[dst.0 as usize] = v.to_bits();
                self.threads[tid].cycles += match op {
                    FBinOp::Mul => cost.fmul,
                    FBinOp::Div => cost.fdiv,
                    _ => cost.fsimple,
                };
            }
            Inst::FCmp { op, dst, a, b } => {
                let f = frame!();
                let x = f64::from_bits(Self::val(f, *a));
                let y = f64::from_bits(Self::val(f, *b));
                let v = match op {
                    FCmpOp::Eq => x == y,
                    FCmpOp::Ne => x != y,
                    FCmpOp::Lt => x < y,
                    FCmpOp::Le => x <= y,
                    FCmpOp::Gt => x > y,
                    FCmpOp::Ge => x >= y,
                };
                f.regs[dst.0 as usize] = v as u64;
                self.threads[tid].cycles += cost.fsimple;
            }
            Inst::Cast { kind, dst, src } => {
                let f = frame!();
                let x = Self::val(f, *src);
                let v = match kind {
                    CastKind::Sext(8) => (x as i8) as i64 as u64,
                    CastKind::Sext(16) => (x as i16) as i64 as u64,
                    CastKind::Sext(32) => (x as i32) as i64 as u64,
                    CastKind::Sext(_) => x,
                    CastKind::Trunc(n) => {
                        if *n >= 64 {
                            x
                        } else {
                            x & ((1u64 << n) - 1)
                        }
                    }
                    CastKind::SiToF => ((x as i64) as f64).to_bits(),
                    CastKind::UiToF => (x as f64).to_bits(),
                    CastKind::FToSi => (f64::from_bits(x) as i64) as u64,
                    CastKind::Bitcast => x,
                    CastKind::FAbs => f64::from_bits(x).abs().to_bits(),
                    CastKind::FSqrt => f64::from_bits(x).sqrt().to_bits(),
                };
                f.regs[dst.0 as usize] = v;
                self.threads[tid].cycles += match kind {
                    CastKind::FSqrt => cost.fdiv,
                    CastKind::SiToF | CastKind::UiToF | CastKind::FToSi | CastKind::FAbs => {
                        cost.fsimple
                    }
                    _ => cost.alu,
                };
            }
            Inst::Select {
                dst,
                cond,
                t,
                f: fo,
            } => {
                let f = frame!();
                let c = Self::val(f, *cond);
                let v = if c != 0 {
                    Self::val(f, *t)
                } else {
                    Self::val(f, *fo)
                };
                f.regs[dst.0 as usize] = v;
                self.threads[tid].cycles += cost.alu;
            }
            Inst::Gep {
                dst,
                base,
                index,
                scale,
                disp,
                ..
            } => {
                let f = frame!();
                let b = Self::val(f, *base);
                let i = Self::val(f, *index);
                let v = b
                    .wrapping_add(i.wrapping_mul(*scale as u64))
                    .wrapping_add(*disp as u64);
                f.regs[dst.0 as usize] = v;
                self.threads[tid].cycles += cost.gep;
            }
            Inst::Load { dst, addr, ty, .. } => {
                let f = frame!();
                let a = Self::val(f, *addr);
                let core = self.threads[tid].core;
                let (v, c) = self.machine.load(core, a, ty.width()).map_err(Trap::Mem)?;
                let f = frame!();
                f.regs[dst.0 as usize] = v;
                self.threads[tid].cycles += c;
            }
            Inst::Store { addr, val, ty, .. } => {
                let f = frame!();
                let a = Self::val(f, *addr);
                let v = Self::val(f, *val);
                let core = self.threads[tid].core;
                let c = self
                    .machine
                    .store(core, a, ty.width(), v)
                    .map_err(Trap::Mem)?;
                self.threads[tid].cycles += c;
            }
            Inst::AtomicRmw {
                op,
                dst,
                addr,
                val,
                ty,
                ..
            } => {
                let f = frame!();
                let a = Self::val(f, *addr);
                let v = Self::val(f, *val);
                let core = self.threads[tid].core;
                let (old, c1) = self.machine.load(core, a, ty.width()).map_err(Trap::Mem)?;
                let new = match op {
                    BinOp::Add => old.wrapping_add(v),
                    BinOp::Sub => old.wrapping_sub(v),
                    BinOp::And => old & v,
                    BinOp::Or => old | v,
                    BinOp::Xor => old ^ v,
                    _ => v, // Exchange semantics for other ops.
                };
                let c2 = self
                    .machine
                    .store(core, a, ty.width(), new)
                    .map_err(Trap::Mem)?;
                let f = frame!();
                f.regs[dst.0 as usize] = old;
                self.threads[tid].cycles += c1 + c2 + cost.atomic_extra;
            }
            Inst::AtomicCas {
                dst,
                addr,
                expected,
                new,
                ty,
                ..
            } => {
                let f = frame!();
                let a = Self::val(f, *addr);
                let exp = Self::val(f, *expected);
                let newv = Self::val(f, *new);
                let core = self.threads[tid].core;
                let (old, c1) = self.machine.load(core, a, ty.width()).map_err(Trap::Mem)?;
                let mut c2 = 0;
                if old == exp {
                    c2 = self
                        .machine
                        .store(core, a, ty.width(), newv)
                        .map_err(Trap::Mem)?;
                }
                let f = frame!();
                f.regs[dst.0 as usize] = old;
                self.threads[tid].cycles += c1 + c2 + cost.atomic_extra;
            }
            Inst::ReadLocal { dst, local } => {
                let f = frame!();
                f.regs[dst.0 as usize] = f.locals[local.0 as usize];
            }
            Inst::WriteLocal { local, val } => {
                let f = frame!();
                let v = Self::val(f, *val);
                f.locals[local.0 as usize] = v;
            }
            Inst::SlotAddr { dst, slot } => {
                let f = frame!();
                f.regs[dst.0 as usize] = f.slots[slot.0 as usize] as u64;
                self.threads[tid].cycles += cost.alu;
            }
            Inst::GlobalAddr { dst, global } => {
                let a = self.globals_addr[global.0 as usize] as u64;
                let f = frame!();
                f.regs[dst.0 as usize] = a;
                self.threads[tid].cycles += cost.alu;
            }
            Inst::FuncAddr { dst, func } => {
                let f = frame!();
                f.regs[dst.0 as usize] = code_addr(*func);
                self.threads[tid].cycles += cost.alu;
            }
            Inst::Call { dst, func, args } => {
                let f = frame!();
                let argv: Vec<u64> = args.iter().map(|a| Self::val(f, *a)).collect();
                f.ip += 1; // Return past the call.
                self.threads[tid].cycles += cost.call;
                let new = self.make_frame(tid, func.0 as usize, &argv, *dst)?;
                self.threads[tid].frames.push(new);
                return Ok(()); // ip already advanced.
            }
            Inst::CallIndirect { dst, target, args } => {
                let f = frame!();
                let t = Self::val(f, *target);
                let Some(fid) = func_of_code_addr(t, self.module.funcs.len()) else {
                    return Err(Trap::BadIndirectCall { target: t });
                };
                let callee = &self.module.funcs[fid.0 as usize];
                if callee.params.len() != args.len() {
                    return Err(Trap::BadIndirectCall { target: t });
                }
                let f = frame!();
                let argv: Vec<u64> = args.iter().map(|a| Self::val(f, *a)).collect();
                f.ip += 1;
                self.threads[tid].cycles += cost.call + cost.branch;
                let new = self.make_frame(tid, fid.0 as usize, &argv, *dst)?;
                self.threads[tid].frames.push(new);
                return Ok(());
            }
            Inst::CallIntrinsic {
                dst,
                intrinsic,
                args,
            } => {
                let f = frame!();
                let argv: Vec<u64> = args.iter().map(|a| Self::val(f, *a)).collect();
                let res = self.exec_intrinsic(tid, intrinsic.0 as usize, &argv)?;
                // The intrinsic may have blocked the thread (mutex/join); in
                // that case do not advance ip — retry on wake.
                if self.threads[tid].state != ThreadState::Runnable {
                    return Ok(());
                }
                let f = frame!();
                if let (Some(d), Some(v)) = (dst, res) {
                    f.regs[d.0 as usize] = v;
                }
                f.ip += 1;
                return Ok(());
            }
            // Site markers are consumed by `run_quantum` before the counted
            // step; reaching one here is an interpreter bug.
            Inst::Site { .. } => unreachable!("site markers never retire"),
        }
        frame!().ip += 1;
        Ok(())
    }

    fn exec_intrinsic(
        &mut self,
        tid: usize,
        intrinsic: usize,
        args: &[u64],
    ) -> Result<Option<u64>, Trap> {
        let cost = self.cfg.machine.cost;
        match self.resolved[intrinsic] {
            Resolved::Builtin(b) => match b {
                Builtin::Spawn => {
                    let target = *args.first().ok_or_else(|| {
                        Trap::ThreadError("spawn needs a function address".into())
                    })?;
                    let Some(fid) = func_of_code_addr(target, self.module.funcs.len()) else {
                        return Err(Trap::BadIndirectCall { target });
                    };
                    let fargs = &args[1..];
                    if self.module.funcs[fid.0 as usize].params.len() != fargs.len() {
                        return Err(Trap::ThreadError(format!(
                            "spawn of {} with wrong arity",
                            self.module.funcs[fid.0 as usize].name
                        )));
                    }
                    let cycles = self.threads[tid].cycles + 600; // Thread creation cost.
                    let new = self.spawn_thread(fid.0 as usize, fargs, cycles)?;
                    self.threads[tid].cycles += 600;
                    Ok(Some(new as u64))
                }
                Builtin::Join => {
                    let target = *args
                        .first()
                        .ok_or_else(|| Trap::ThreadError("join needs a thread id".into()))?
                        as usize;
                    if target >= self.threads.len() || target == tid {
                        return Err(Trap::ThreadError(format!("bad join target {target}")));
                    }
                    if self.threads[target].state == ThreadState::Done {
                        let c = self.threads[target].cycles;
                        let me = &mut self.threads[tid];
                        me.cycles = me.cycles.max(c);
                        Ok(Some(self.threads[target].retval))
                    } else {
                        self.threads[tid].state = ThreadState::Joining(target);
                        Ok(None)
                    }
                }
                Builtin::ThreadId => Ok(Some(tid as u64)),
                Builtin::NCores => Ok(Some(self.cfg.machine.cores as u64)),
                Builtin::MutexLock => {
                    let addr = *args
                        .first()
                        .ok_or_else(|| Trap::ThreadError("lock needs an address".into()))?;
                    let m = self.mutexes.entry(addr).or_insert(MutexState {
                        owner: None,
                        pending_grant: false,
                        waiters: Default::default(),
                    });
                    match m.owner {
                        None => {
                            m.owner = Some(tid);
                            self.threads[tid].cycles += cost.atomic_extra;
                            Ok(None)
                        }
                        Some(o) if o == tid => {
                            if m.pending_grant {
                                m.pending_grant = false;
                                self.threads[tid].cycles += cost.atomic_extra;
                                Ok(None)
                            } else {
                                Err(Trap::ThreadError("recursive mutex_lock".into()))
                            }
                        }
                        Some(_) => {
                            m.waiters.push_back(tid);
                            self.threads[tid].state = ThreadState::BlockedOnMutex(addr);
                            Ok(None)
                        }
                    }
                }
                Builtin::MutexUnlock => {
                    let addr = *args
                        .first()
                        .ok_or_else(|| Trap::ThreadError("unlock needs an address".into()))?;
                    let release_cycles = self.threads[tid].cycles + cost.atomic_extra;
                    let m = self
                        .mutexes
                        .get_mut(&addr)
                        .filter(|m| m.owner == Some(tid))
                        .ok_or_else(|| Trap::ThreadError("unlock of unowned mutex".into()))?;
                    self.threads[tid].cycles = release_cycles;
                    if let Some(w) = m.waiters.pop_front() {
                        m.owner = Some(w);
                        m.pending_grant = true;
                        let wt = &mut self.threads[w];
                        wt.state = ThreadState::Runnable;
                        wt.cycles = wt.cycles.max(release_cycles);
                    } else {
                        m.owner = None;
                    }
                    Ok(None)
                }
                Builtin::Exit => {
                    self.exited = Some(args.first().copied().unwrap_or(0));
                    Ok(None)
                }
                Builtin::Abort => Err(Trap::Abort("program called abort".into())),
                Builtin::PrintI64 => {
                    let v = args.first().copied().unwrap_or(0);
                    self.output.push((v as i64).to_string());
                    Ok(None)
                }
            },
            Resolved::Handler(h) => {
                let mut f = self.handler_fns[h]
                    .take()
                    .ok_or_else(|| Trap::ThreadError("re-entrant intrinsic handler".into()))?;
                let core = self.threads[tid].core;
                // Let violation handlers attribute failures to the check
                // site the calling thread is inside (if any).
                if self.machine.obs_enabled() {
                    self.machine.cur_site = self.threads[tid].obs_site.map(|(s, _)| s);
                }
                let mut ctx = IntrinsicCtx {
                    machine: &mut self.machine,
                    env: &mut self.env,
                    core,
                    cycles: cost.call,
                    output: &mut self.output,
                };
                let res = f(&mut ctx, args);
                let add = ctx.cycles;
                self.handler_fns[h] = Some(f);
                self.threads[tid].cycles += add;
                res
            }
            Resolved::Unknown => Err(Trap::UnknownIntrinsic(
                self.module.intrinsics[intrinsic].clone(),
            )),
        }
    }

    fn exec_term(&mut self, tid: usize, term: &Term) -> Result<(), Trap> {
        let cost = self.cfg.machine.cost;
        match term {
            Term::Jmp(b) => {
                let f = self.threads[tid].frames.last_mut().expect("has frame");
                f.block = b.0;
                f.ip = 0;
                self.threads[tid].cycles += cost.branch;
            }
            Term::Br { cond, t, f: fb } => {
                let f = self.threads[tid].frames.last_mut().expect("has frame");
                let c = Self::val(f, *cond);
                f.block = if c != 0 { t.0 } else { fb.0 };
                f.ip = 0;
                self.machine.stats.branches += 1;
                self.threads[tid].cycles += cost.branch;
            }
            Term::Ret(v) => {
                let f = self.threads[tid].frames.last().expect("has frame");
                let val = v.map(|o| Self::val(f, o)).unwrap_or(0);
                self.do_ret(tid, val);
            }
            Term::Unreachable => return Err(Trap::Unreachable),
        }
        Ok(())
    }

    fn do_ret(&mut self, tid: usize, val: u64) {
        let cost = self.cfg.machine.cost;
        let frame = self.threads[tid].frames.pop().expect("has frame");
        self.threads[tid].sp = frame.saved_sp;
        self.threads[tid].cycles += cost.call;
        match self.threads[tid].frames.last_mut() {
            Some(caller) => {
                if let Some(d) = frame.ret_dst {
                    caller.regs[d.0 as usize] = val;
                }
            }
            None => {
                self.threads[tid].retval = val;
                self.threads[tid].state = ThreadState::Done;
                let done_cycles = self.threads[tid].cycles;
                // Wake joiners.
                for i in 0..self.threads.len() {
                    if self.threads[i].state == ThreadState::Joining(tid) {
                        self.threads[i].state = ThreadState::Runnable;
                        self.threads[i].cycles = self.threads[i].cycles.max(done_cycles);
                    }
                }
            }
        }
    }
}
