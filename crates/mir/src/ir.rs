//! Core IR data structures: modules, functions, blocks, instructions.
//!
//! The IR is a deliberately small subset of what LLVM offers, chosen so the
//! paper's three instrumentation schemes can be expressed as the same kind
//! of rewrite they perform on LLVM IR:
//!
//! - memory is accessed only through [`Inst::Load`]/[`Inst::Store`] (plus
//!   atomics), the points where bounds checks are inserted;
//! - pointer arithmetic is the dedicated [`Inst::Gep`] instruction, the
//!   point where SGXBounds masks the low 32 bits (paper §3.2 "Pointer
//!   arithmetic");
//! - object creation sites are explicit: stack slots, globals, and calls to
//!   allocation intrinsics;
//! - cross-block values live in *locals*, register-allocated scalars with no
//!   memory cost, which keeps the IR phi-free and easy to instrument.

use crate::ty::Ty;

/// Index of a function in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a basic block in a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Virtual register within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// Cross-block mutable scalar slot (register-allocated; no memory traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Stack slot within a function (has a runtime address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// Index of a global in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index into a module's intrinsic name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntrinsicId(pub u32);

/// An instruction operand: a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// Immediate (f64 immediates are bit-cast).
    Imm(u64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (traps on zero).
    UDiv,
    /// Signed division (traps on zero).
    SDiv,
    /// Unsigned remainder (traps on zero).
    URem,
    /// Signed remainder (traps on zero).
    SRem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    LShr,
    /// Arithmetic right shift.
    AShr,
}

/// Integer comparison predicates (result is 0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
}

/// Floating-point binary operations (operands are bit-cast f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// IEEE minimum.
    Min,
    /// IEEE maximum.
    Max,
}

/// Floating-point comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Value conversions. Variant payloads are bit widths.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastKind {
    /// Sign-extend from the given source width in bits (8, 16, or 32).
    Sext(u8),
    /// Zero out all but the low `n` bits.
    Trunc(u8),
    /// Signed integer to f64.
    SiToF,
    /// Unsigned integer to f64.
    UiToF,
    /// f64 to signed integer (round toward zero, saturating).
    FToSi,
    /// Raw bit copy (used for ptr <-> int casts; SGXBounds survives these by
    /// design because the tag travels with the bits, paper §3.2).
    Bitcast,
    /// f64 absolute value.
    FAbs,
    /// f64 square root.
    FSqrt,
}

/// Flags attached to memory accesses, consumed by instrumentation passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessAttrs {
    /// Proven in-bounds by the safe-access analysis (paper §4.4): the
    /// instrumentation pass elides the entire check, keeping only the tag
    /// strip.
    pub safe: bool,
    /// The lower-bound check (and thus the LB memory load) is unnecessary:
    /// the pointer provably moves monotonically upward from the object base
    /// (paper §4.4 "Hoisting checks out of loops").
    pub no_lower: bool,
    /// Set by instrumentation passes on accesses they have already rewritten
    /// (including check-sequence accesses they emit), so a rewriting
    /// worklist never instruments its own output.
    pub lowered: bool,
}

/// One IR instruction.
///
/// Field conventions throughout: `dst` is the destination register, `a`/`b`
/// are operands, `addr` is the accessed address, `ty` the accessed type, and
/// `attrs` the instrumentation flags.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = a <op> b` on 64-bit integers.
    Bin {
        op: BinOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <pred> b) ? 1 : 0`.
    Cmp {
        op: CmpOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = a <op> b` on bit-cast f64.
    FBin {
        op: FBinOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <pred> b) ? 1 : 0` on bit-cast f64.
    FCmp {
        op: FCmpOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// Value conversion.
    Cast {
        kind: CastKind,
        dst: Reg,
        src: Operand,
    },
    /// `dst = cond != 0 ? t : f`.
    Select {
        dst: Reg,
        cond: Operand,
        t: Operand,
        f: Operand,
    },
    /// Pointer arithmetic: `dst = base + index * scale + disp`.
    ///
    /// `inbounds` asserts the builder knows the result stays within the
    /// referent object (e.g. struct-field offsets), enabling safe-access
    /// elision.
    Gep {
        dst: Reg,
        base: Operand,
        index: Operand,
        scale: u32,
        disp: i64,
        inbounds: bool,
    },
    /// `dst = *(ty*)addr` (zero-extended).
    Load {
        dst: Reg,
        addr: Operand,
        ty: Ty,
        attrs: AccessAttrs,
    },
    /// `*(ty*)addr = val`.
    Store {
        addr: Operand,
        val: Operand,
        ty: Ty,
        attrs: AccessAttrs,
    },
    /// Atomic read-modify-write; `dst` receives the old value.
    AtomicRmw {
        op: BinOp,
        dst: Reg,
        addr: Operand,
        val: Operand,
        ty: Ty,
        attrs: AccessAttrs,
    },
    /// Atomic compare-and-swap; `dst` receives the old value.
    AtomicCas {
        dst: Reg,
        addr: Operand,
        expected: Operand,
        new: Operand,
        ty: Ty,
        attrs: AccessAttrs,
    },
    /// `dst = local`.
    ReadLocal { dst: Reg, local: LocalId },
    /// `local = val`.
    WriteLocal { local: LocalId, val: Operand },
    /// `dst = &stack_slot`.
    SlotAddr { dst: Reg, slot: SlotId },
    /// `dst = &global`.
    GlobalAddr { dst: Reg, global: GlobalId },
    /// `dst = &function` (a synthetic code address usable by
    /// [`Inst::CallIndirect`]).
    FuncAddr { dst: Reg, func: FuncId },
    /// Direct call.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Operand>,
    },
    /// Indirect call through a code address (how RIPE-style control-flow
    /// hijacks are expressed).
    CallIndirect {
        dst: Option<Reg>,
        target: Operand,
        args: Vec<Operand>,
    },
    /// Call into the host runtime (allocator, libc wrappers, scheme
    /// runtimes).
    CallIntrinsic {
        dst: Option<Reg>,
        intrinsic: IntrinsicId,
        args: Vec<Operand>,
    },
    /// Observability marker delimiting an inserted check sequence.
    ///
    /// Markers are *transparent*: the interpreter consumes them outside the
    /// counted instruction stream, so they never retire an instruction,
    /// charge a cycle, or occupy a scheduling-quantum slot. Instrumentation
    /// passes only emit them when site markers are requested, and `site`
    /// indexes [`Module::check_sites`].
    Site { site: u32, marker: SiteMarker },
}

/// Which end of a check sequence a [`Inst::Site`] marker delimits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteMarker {
    /// First marker: the check sequence starts at the next instruction.
    Begin,
    /// Second marker: the check sequence (including the guarded access, for
    /// inline lowerings) ended at the previous instruction.
    End,
}

/// Metadata for one check site inserted by an instrumentation pass.
///
/// Site IDs are indices into [`Module::check_sites`] and are stable for a
/// given module + pass configuration because passes run deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckSite {
    /// Function the check was inserted into.
    pub func: String,
    /// Check kind label (e.g. `sb_full`, `sb_safe`, `sb_hoist`, `asan`,
    /// `mpx`).
    pub kind: &'static str,
}

/// Block terminator.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch on `cond != 0`.
    Br {
        cond: Operand,
        t: BlockId,
        f: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// Must never execute (traps if reached).
    Unreachable,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// A function-local stack allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSlot {
    /// Debug name.
    pub name: String,
    /// Size the program asked for.
    pub size: u32,
    /// Alignment (power of two).
    pub align: u32,
    /// Size actually carved from the stack frame; instrumentation passes
    /// grow this to append metadata (SGXBounds LB, ASan redzones).
    pub padded_size: u32,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types; parameters occupy registers `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Type of every virtual register (indexed by [`Reg`]).
    pub reg_tys: Vec<Ty>,
    /// Types of cross-block locals.
    pub locals: Vec<Ty>,
    /// Stack slots.
    pub slots: Vec<StackSlot>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Allocates a fresh register of type `ty`.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg(self.reg_tys.len() as u32);
        self.reg_tys.push(ty);
        r
    }

    /// Allocates a fresh local of type `ty`.
    pub fn new_local(&mut self, ty: Ty) -> LocalId {
        let l = LocalId(self.locals.len() as u32);
        self.locals.push(ty);
        l
    }

    /// Total IR instructions (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size the program declared.
    pub size: u32,
    /// Alignment (power of two).
    pub align: u32,
    /// Initializer; shorter than `size` means zero-fill the tail.
    pub init: Vec<u8>,
    /// Size actually laid out; instrumentation passes grow this to append
    /// metadata.
    pub padded_size: u32,
}

/// A compilation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (used in diagnostics and reports).
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions; `main` must exist to run the module.
    pub funcs: Vec<Function>,
    /// Intrinsic name table referenced by [`IntrinsicId`].
    pub intrinsics: Vec<String>,
    /// Name of the hardening scheme applied, if any. Passes set this and
    /// refuse to instrument a module twice.
    pub hardening: Option<&'static str>,
    /// Check-site table filled by instrumentation passes when site markers
    /// are enabled; [`Inst::Site`] markers index into it.
    pub check_sites: Vec<CheckSite>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            funcs: Vec::new(),
            intrinsics: Vec::new(),
            hardening: None,
            check_sites: Vec::new(),
        }
    }

    /// Registers a check site and returns its stable ID.
    pub fn add_check_site(&mut self, func: impl Into<String>, kind: &'static str) -> u32 {
        let id = self.check_sites.len() as u32;
        self.check_sites.push(CheckSite {
            func: func.into(),
            kind,
        });
        id
    }

    /// The ids of every registered check site of `kind`, in registration
    /// order. Lets diagnostics passes (e.g. the static lint) re-run
    /// idempotently by reusing their prior registrations.
    pub fn sites_of_kind(&self, kind: &str) -> Vec<u32> {
        self.check_sites
            .iter()
            .enumerate()
            .filter(|(_, cs)| cs.kind == kind)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Interns an intrinsic name, returning its id.
    pub fn intrinsic(&mut self, name: &str) -> IntrinsicId {
        if let Some(i) = self.intrinsics.iter().position(|n| n == name) {
            return IntrinsicId(i as u32);
        }
        self.intrinsics.push(name.to_owned());
        IntrinsicId((self.intrinsics.len() - 1) as u32)
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total IR instructions across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }
}

/// Iterates over the operands of an instruction (used by analyses).
pub fn operands(inst: &Inst) -> Vec<Operand> {
    match inst {
        Inst::Bin { a, b, .. }
        | Inst::Cmp { a, b, .. }
        | Inst::FBin { a, b, .. }
        | Inst::FCmp { a, b, .. } => vec![*a, *b],
        Inst::Cast { src, .. } => vec![*src],
        Inst::Select { cond, t, f, .. } => vec![*cond, *t, *f],
        Inst::Gep { base, index, .. } => vec![*base, *index],
        Inst::Load { addr, .. } => vec![*addr],
        Inst::Store { addr, val, .. } => vec![*addr, *val],
        Inst::AtomicRmw { addr, val, .. } => vec![*addr, *val],
        Inst::AtomicCas {
            addr,
            expected,
            new,
            ..
        } => vec![*addr, *expected, *new],
        Inst::ReadLocal { .. }
        | Inst::SlotAddr { .. }
        | Inst::GlobalAddr { .. }
        | Inst::FuncAddr { .. }
        | Inst::Site { .. } => vec![],
        Inst::WriteLocal { val, .. } => vec![*val],
        Inst::Call { args, .. } | Inst::CallIntrinsic { args, .. } => args.clone(),
        Inst::CallIndirect { target, args, .. } => {
            let mut v = vec![*target];
            v.extend_from_slice(args);
            v
        }
    }
}

/// Returns the destination register of an instruction, if any.
pub fn def_of(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::FBin { dst, .. }
        | Inst::FCmp { dst, .. }
        | Inst::Cast { dst, .. }
        | Inst::Select { dst, .. }
        | Inst::Gep { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::AtomicRmw { dst, .. }
        | Inst::AtomicCas { dst, .. }
        | Inst::ReadLocal { dst, .. }
        | Inst::SlotAddr { dst, .. }
        | Inst::GlobalAddr { dst, .. }
        | Inst::FuncAddr { dst, .. } => Some(*dst),
        Inst::Call { dst, .. }
        | Inst::CallIndirect { dst, .. }
        | Inst::CallIntrinsic { dst, .. } => *dst,
        Inst::Store { .. } | Inst::WriteLocal { .. } | Inst::Site { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_interning_dedupes() {
        let mut m = Module::new("t");
        let a = m.intrinsic("malloc");
        let b = m.intrinsic("free");
        let c = m.intrinsic("malloc");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(m.intrinsics.len(), 2);
    }

    #[test]
    fn operand_conversions() {
        let r: Operand = Reg(3).into();
        let i: Operand = 42u64.into();
        assert_eq!(r, Operand::Reg(Reg(3)));
        assert_eq!(i, Operand::Imm(42));
    }

    #[test]
    fn def_and_operands_cover_store() {
        let s = Inst::Store {
            addr: Reg(0).into(),
            val: Operand::Imm(1),
            ty: Ty::I64,
            attrs: AccessAttrs::default(),
        };
        assert_eq!(def_of(&s), None);
        assert_eq!(operands(&s).len(), 2);
    }
}
