//! Input-generation determinism: every workload's module and staged input
//! bytes must be a pure function of `Params.seed`, so fuzz/benchmark runs
//! replay bit-for-bit and cross-scheme comparisons are apples-to-apples.

use sgxs_mir::{verify, Vm, VmConfig};
use sgxs_rt::{install_base, AllocOpts, Stager, INPUT_BASE};
use sgxs_sim::{MachineConfig, Mode, Preset};
use sgxs_workloads::{apps, Params, SizeClass, Workload};

fn params(seed: u64) -> Params {
    Params {
        size: SizeClass::XS,
        threads: 2,
        scale: 128,
        seed,
    }
}

fn everything() -> Vec<Box<dyn Workload>> {
    let mut v = sgxs_workloads::all_benchmarks();
    v.extend(apps::all());
    v
}

/// Digest of the module text plus the staged input region and `main` args.
fn staged_fingerprint(w: &dyn Workload, seed: u64) -> (String, Vec<u64>, u64) {
    let p = params(seed);
    let module = w.build(&p);
    verify(&module).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
    let text = sgxs_mir::display::print_module(&module);
    let cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
    let mut vm = Vm::new(&module, cfg);
    install_base(&mut vm, AllocOpts::default());
    let mut st = Stager::new();
    let args = w.stage(&mut vm, &mut st, &p);
    // FNV-1a over the first 1 MiB of the input region (unwritten pages read
    // back as zeros, so the window size only has to cover XS inputs).
    let mut buf = vec![0u8; 1 << 20];
    vm.machine.mem.read_bytes(INPUT_BASE, &mut buf);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in buf {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    (text, args, h)
}

#[test]
fn builds_and_staging_are_deterministic_per_seed() {
    for w in everything() {
        let a = staged_fingerprint(w.as_ref(), 7);
        let b = staged_fingerprint(w.as_ref(), 7);
        assert_eq!(a.0, b.0, "{}: module text varies across builds", w.name());
        assert_eq!(a.1, b.1, "{}: main args vary across staging", w.name());
        assert_eq!(a.2, b.2, "{}: staged input bytes vary", w.name());
    }
}

#[test]
fn traced_runs_are_deterministic_per_seed_and_scheme() {
    // Beyond build/staging determinism: a full traced execution (workload +
    // seed + scheme) must replay to the exact same event stream. The obs
    // digest folds every event the machine emitted — check execs and their
    // cycle deltas, allocs/frees, EPC faults/evictions — so an equal digest
    // means the whole observable run was identical.
    use sgxs_harness::scheme::{RunConfig, Scheme};
    let mut rc = RunConfig::new(Preset::Tiny);
    rc.params = params(7);
    for (wname, scheme) in [
        ("simple", Scheme::SgxBounds),
        ("string_match", Scheme::Asan),
        ("histogram", Scheme::Mpx),
    ] {
        let w = sgxs_workloads::by_name(wname).expect(wname);
        let a = sgxs_harness::profile_one(w.as_ref(), scheme, &rc, 256, 5);
        let b = sgxs_harness::profile_one(w.as_ref(), scheme, &rc, 256, 5);
        assert_eq!(
            a.profile.digest, b.profile.digest,
            "{wname}: traced event stream varies across identical runs"
        );
        assert_eq!(a.profile.events, b.profile.events, "{wname}");
        assert_eq!(
            a.recorder.last_events(16),
            b.recorder.last_events(16),
            "{wname}: trailing events differ"
        );
        assert!(a.measured.ok(), "{wname}: traced run failed");
    }
}

#[test]
fn some_workload_inputs_actually_depend_on_the_seed() {
    // Guards against the opposite failure: a "deterministic" generator that
    // ignores the seed entirely. At least one workload's staged inputs must
    // change when the seed does.
    let differs = everything()
        .iter()
        .any(|w| staged_fingerprint(w.as_ref(), 7).2 != staged_fingerprint(w.as_ref(), 8).2);
    assert!(differs, "no workload's staged inputs depend on Params.seed");
}
