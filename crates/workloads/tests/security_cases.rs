//! Security case studies (paper §7 and Table 4): Heartbleed, the Nginx
//! stack overflow, and the 16-configuration RIPE matrix.

use sgxs_baselines::asan::runtime::asan_alloc_opts;
use sgxs_baselines::{
    install_asan, install_mpx, instrument_asan, instrument_mpx, AsanConfig, MpxConfig,
};
use sgxs_mir::{verify, Module, Trap, Vm, VmConfig};
use sgxs_rt::{install_base, AllocOpts, Stager};
use sgxs_sim::{MachineConfig, Mode, Preset};
use sgxs_workloads::apps::apache::Heartbleed;
use sgxs_workloads::apps::nginx::NginxCve2013_2028;
use sgxs_workloads::apps::ripe;
use sgxs_workloads::{Params, SizeClass, Workload};

const SCALE: u64 = 128;

fn params() -> Params {
    Params {
        size: SizeClass::XS,
        threads: 1,
        scale: SCALE,
        seed: 3,
    }
}

/// Runs an already-built module under a scheme; boundless toggles the
/// SGXBounds §4.2 mode.
fn run_module(
    mut module: Module,
    scheme: &str,
    boundless: bool,
    args: &[u64],
) -> Result<u64, Trap> {
    let sb_cfg = sgxbounds::SbConfig {
        boundless,
        ..sgxbounds::SbConfig::default()
    };
    match scheme {
        "native" => {}
        "sgxbounds" => {
            sgxbounds::instrument(&mut module, &sb_cfg).unwrap();
        }
        "asan" => {
            instrument_asan(&mut module).unwrap();
        }
        "mpx" => {
            instrument_mpx(&mut module).unwrap();
        }
        _ => unreachable!(),
    }
    verify(&module).unwrap();
    let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
    cfg.max_instructions = 100_000_000;
    let mut vm = Vm::new(&module, cfg);
    let asan_cfg = AsanConfig::for_scale(SCALE);
    let heap = match scheme {
        "asan" => install_base(&mut vm, asan_alloc_opts(&asan_cfg, u32::MAX as u64)),
        _ => install_base(&mut vm, AllocOpts::default()),
    };
    match scheme {
        "sgxbounds" => {
            sgxbounds::install_sgxbounds(&mut vm, heap, &sb_cfg, None);
        }
        "asan" => {
            install_asan(&mut vm, heap, &asan_cfg);
        }
        "mpx" => {
            install_mpx(&mut vm, heap, MpxConfig::for_scale(SCALE));
        }
        _ => {}
    }
    vm.run("main", args).result
}

fn run_workload(w: &dyn Workload, scheme: &str, boundless: bool) -> Result<u64, Trap> {
    let p = params();
    let module = w.build(&p);
    // Stage against a scratch VM first to learn the args, then rebuild —
    // staging only touches memory, so stage into the real VM: we need the
    // VM before staging, so replicate run_module inline.
    let sb_cfg = sgxbounds::SbConfig {
        boundless,
        ..sgxbounds::SbConfig::default()
    };
    let mut module = module;
    match scheme {
        "native" => {}
        "sgxbounds" => {
            sgxbounds::instrument(&mut module, &sb_cfg).unwrap();
        }
        "asan" => {
            instrument_asan(&mut module).unwrap();
        }
        "mpx" => {
            instrument_mpx(&mut module).unwrap();
        }
        _ => unreachable!(),
    }
    verify(&module).unwrap();
    let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
    cfg.max_instructions = 100_000_000;
    let mut vm = Vm::new(&module, cfg);
    let asan_cfg = AsanConfig::for_scale(SCALE);
    let heap = match scheme {
        "asan" => install_base(&mut vm, asan_alloc_opts(&asan_cfg, u32::MAX as u64)),
        _ => install_base(&mut vm, AllocOpts::default()),
    };
    match scheme {
        "sgxbounds" => {
            sgxbounds::install_sgxbounds(&mut vm, heap, &sb_cfg, None);
        }
        "asan" => {
            install_asan(&mut vm, heap, &asan_cfg);
        }
        "mpx" => {
            install_mpx(&mut vm, heap, MpxConfig::for_scale(SCALE));
        }
        _ => {}
    }
    let mut st = Stager::new();
    let args = w.stage(&mut vm, &mut st, &params());
    vm.run("main", &args).result
}

// ---- Heartbleed (§7 Apache) ------------------------------------------

#[test]
fn heartbleed_leaks_natively() {
    let r = run_workload(&Heartbleed, "native", false).unwrap();
    assert_eq!(r, 1, "unprotected server must leak the secret");
}

#[test]
fn heartbleed_detected_by_all_schemes() {
    for scheme in ["sgxbounds", "asan", "mpx"] {
        let r = run_workload(&Heartbleed, scheme, false);
        assert!(
            matches!(r, Err(Trap::SafetyViolation { .. })),
            "{scheme} must detect Heartbleed, got {r:?}"
        );
    }
}

#[test]
fn heartbleed_boundless_prevents_leak_and_continues() {
    // Paper §7: SGXBounds with boundless memory copies zeroes into the
    // reply and Apache keeps running.
    let r = run_workload(&Heartbleed, "sgxbounds", true).unwrap();
    assert_eq!(r, 0, "no secret bytes may leak under boundless memory");
}

// ---- CVE-2013-2028 (§7 Nginx) ----------------------------------------

#[test]
fn nginx_cve_detected_by_all_schemes() {
    for scheme in ["sgxbounds", "asan", "mpx"] {
        let r = run_workload(&NginxCve2013_2028, scheme, false);
        assert!(
            matches!(r, Err(Trap::SafetyViolation { .. })),
            "{scheme} must detect the stack overflow, got {r:?}"
        );
    }
}

#[test]
fn nginx_cve_boundless_drops_request_and_serves_rest() {
    let r = run_workload(&NginxCve2013_2028, "sgxbounds", true).unwrap();
    assert_eq!(r, 8, "all requests served after dropping the attack");
}

// ---- RIPE (Table 4) ----------------------------------------------------

fn ripe_prevented(scheme: &str) -> usize {
    let mut prevented = 0;
    for cfg in ripe::all_attacks() {
        let m = ripe::build_attack(&cfg);
        match run_module(m, scheme, false, &[]) {
            Err(Trap::SafetyViolation { .. }) => prevented += 1,
            Ok(v) => assert_eq!(
                v,
                ripe::SHELL_MAGIC,
                "undetected attack must succeed ({}, {scheme})",
                cfg.label()
            ),
            Err(t) => panic!("unexpected trap for {} under {scheme}: {t}", cfg.label()),
        }
    }
    prevented
}

#[test]
fn ripe_all_attacks_succeed_natively() {
    for cfg in ripe::all_attacks() {
        let m = ripe::build_attack(&cfg);
        let r = run_module(m, "native", false, &[]).unwrap();
        assert_eq!(
            r,
            ripe::SHELL_MAGIC,
            "native {} must be hijacked",
            cfg.label()
        );
    }
}

#[test]
fn ripe_sgxbounds_prevents_8_of_16() {
    assert_eq!(ripe_prevented("sgxbounds"), 8);
}

#[test]
fn ripe_asan_prevents_8_of_16() {
    assert_eq!(ripe_prevented("asan"), 8);
}

#[test]
fn ripe_mpx_prevents_2_of_16() {
    assert_eq!(ripe_prevented("mpx"), 2);
}

#[test]
fn ripe_in_struct_overflows_evade_everyone() {
    // Table 4's discussion: whole-object granularity cannot see in-struct
    // overflows.
    for cfg in ripe::all_attacks() {
        if cfg.target != ripe::Target::InStructFuncPtr {
            continue;
        }
        for scheme in ["sgxbounds", "asan", "mpx"] {
            let m = ripe::build_attack(&cfg);
            let r = run_module(m, scheme, false, &[]);
            assert_eq!(
                r.unwrap(),
                ripe::SHELL_MAGIC,
                "{} must evade {scheme}",
                cfg.label()
            );
        }
    }
}

// ---- CVE-2011-4971 (§7 Memcached) --------------------------------------

#[test]
fn memcached_cve_detected_by_all_schemes() {
    use sgxs_workloads::apps::memcached::MemcachedCve2011_4971;
    for scheme in ["sgxbounds", "asan", "mpx"] {
        let r = run_workload(&MemcachedCve2011_4971, scheme, false);
        assert!(
            matches!(r, Err(Trap::SafetyViolation { .. })),
            "{scheme} must detect the CVE overflow, got {r:?}"
        );
    }
}

#[test]
fn memcached_cve_boundless_hangs_like_the_paper() {
    // §7: "SGXBOUNDS with its boundless memory feature discarded the
    // overflowed packet's content but went into an infinite loop due to a
    // subsequent bug in the program's logic" — reproduced as an
    // instruction-budget exhaustion instead of a detection or crash.
    use sgxs_workloads::apps::memcached::MemcachedCve2011_4971;
    let r = run_workload(&MemcachedCve2011_4971, "sgxbounds", true);
    assert!(
        matches!(r, Err(Trap::InstructionLimit)),
        "boundless mode must spin in the retry loop, got {r:?}"
    );
}
