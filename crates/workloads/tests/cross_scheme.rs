//! Cross-scheme correctness: every benchmark must produce the *same
//! checksum* under native, SGXBounds, ASan, and MPX — hardening must never
//! change program semantics — and the expected pathologies (MPX OOM on
//! pointer-spread programs) must appear where the paper reports them.

use sgxs_baselines::asan::runtime::asan_alloc_opts;
use sgxs_baselines::{
    install_asan, install_mpx, instrument_asan, instrument_mpx, AsanConfig, MpxConfig,
};
use sgxs_mir::{verify, Trap, Vm, VmConfig};
use sgxs_rt::{install_base, AllocOpts, Stager};
use sgxs_sim::{MachineConfig, Mode, Preset};
use sgxs_workloads::{Params, SizeClass, Workload};

const SCALE: u64 = 128;

fn params() -> Params {
    Params {
        size: SizeClass::XS,
        threads: 2,
        scale: SCALE,
        seed: 7,
    }
}

fn run_scheme(w: &dyn Workload, scheme: &str) -> Result<u64, Trap> {
    let p = params();
    let mut module = w.build(&p);
    match scheme {
        "native" => {}
        "sgxbounds" => {
            sgxbounds::instrument(&mut module, &sgxbounds::SbConfig::default()).unwrap();
        }
        "asan" => {
            instrument_asan(&mut module).unwrap();
        }
        "mpx" => {
            instrument_mpx(&mut module).unwrap();
        }
        _ => unreachable!(),
    }
    verify(&module).unwrap_or_else(|e| panic!("{} under {scheme}: {e}", w.name()));
    let mut cfg = VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Enclave));
    cfg.max_instructions = 400_000_000;
    let mut vm = Vm::new(&module, cfg);
    let asan_cfg = AsanConfig::for_scale(SCALE);
    let heap = match scheme {
        "asan" => install_base(&mut vm, asan_alloc_opts(&asan_cfg, u32::MAX as u64)),
        _ => install_base(&mut vm, AllocOpts::default()),
    };
    match scheme {
        "sgxbounds" => {
            sgxbounds::install_sgxbounds(&mut vm, heap, &sgxbounds::SbConfig::default(), None);
        }
        "asan" => {
            install_asan(&mut vm, heap, &asan_cfg);
        }
        "mpx" => {
            install_mpx(&mut vm, heap, MpxConfig::for_scale(SCALE));
        }
        _ => {}
    }
    let mut st = Stager::new();
    let args = w.stage(&mut vm, &mut st, &p);
    vm.run("main", &args).result
}

fn check_workload(w: &dyn Workload) {
    let native = run_scheme(w, "native").unwrap_or_else(|t| panic!("{} native: {t}", w.name()));
    for scheme in ["sgxbounds", "asan", "mpx"] {
        match run_scheme(w, scheme) {
            Ok(v) => assert_eq!(v, native, "{} checksum diverged under {scheme}", w.name()),
            // MPX may legitimately die of bounds-table OOM on
            // pointer-spread programs — the paper's result.
            Err(Trap::OutOfMemory { .. }) if scheme == "mpx" => {}
            Err(t) => panic!("{} under {scheme}: {t}", w.name()),
        }
    }
}

macro_rules! cross_scheme_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            let w = sgxs_workloads::by_name(stringify!($name)).expect("workload registered");
            check_workload(w.as_ref());
        }
    };
}

// Phoenix.
cross_scheme_test!(histogram);
cross_scheme_test!(kmeans);
cross_scheme_test!(linear_regression);
cross_scheme_test!(matrix_multiply);
cross_scheme_test!(pca);
cross_scheme_test!(string_match);
cross_scheme_test!(word_count);
// PARSEC.
cross_scheme_test!(blackscholes);
cross_scheme_test!(bodytrack);
cross_scheme_test!(dedup);
cross_scheme_test!(ferret);
cross_scheme_test!(fluidanimate);
cross_scheme_test!(streamcluster);
cross_scheme_test!(swaptions);
cross_scheme_test!(vips);
cross_scheme_test!(x264);
// SPEC.
cross_scheme_test!(astar);
cross_scheme_test!(bzip2);
cross_scheme_test!(gobmk);
cross_scheme_test!(h264ref);
cross_scheme_test!(hmmer);
cross_scheme_test!(lbm);
cross_scheme_test!(libquantum);
cross_scheme_test!(mcf);
cross_scheme_test!(milc);
cross_scheme_test!(namd);
cross_scheme_test!(sjeng);
cross_scheme_test!(sphinx3);
cross_scheme_test!(xalancbmk);
// Apps.
cross_scheme_test!(sqlite);
cross_scheme_test!(memcached);
cross_scheme_test!(apache);
cross_scheme_test!(nginx);
