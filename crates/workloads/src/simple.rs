//! `simple`: a minimal smoke workload for `repro profile` and CI. One
//! thread, one heap buffer, a fill pass and a checksum pass, then a free.
//! Deliberately tiny and not part of any paper suite — it is reachable only
//! through [`by_name`](crate::by_name) so the figure experiments never pick
//! it up.

use crate::util::{Params, Suite, Workload};
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Elements in the buffer (fixed: the workload exists to exercise the
/// observability path quickly, not to scale).
const ELEMS: u64 = 4096;

/// The simple smoke workload.
pub struct Simple;

impl Workload for Simple {
    fn name(&self) -> &'static str {
        "simple"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("simple");
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let n = fb.param(0);
            let bytes = fb.mul(n, 8u64);
            let buf = fb.intr_ptr("malloc", &[bytes.into()]);
            fb.count_loop(0u64, n, |fb, i| {
                let slot = fb.gep(buf, i, 8, 0);
                let v = fb.mul(i, 3u64);
                fb.store(Ty::I64, slot, v);
            });
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            fb.count_loop(0u64, n, |fb, i| {
                let slot = fb.gep(buf, i, 8, 0);
                let v = fb.load(Ty::I64, slot);
                let a = fb.get(acc);
                let s = fb.add(a, v);
                fb.set(acc, s);
            });
            fb.intr_void("free", &[buf.into()]);
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, _vm: &mut Vm<'_>, _st: &mut Stager, _p: &Params) -> Vec<u64> {
        vec![ELEMS]
    }
}
