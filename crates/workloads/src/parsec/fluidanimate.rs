//! `fluidanimate`: grid of cells, each holding a heap-allocated particle
//! block reached through a cell-pointer array — per-cell pointers are what
//! give MPX its ~4x memory overhead here (Fig. 7).

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 128 << 20;
/// Particles per cell.
const PER_CELL: u64 = 8;
/// Timesteps.
const STEPS: u64 = 2;

/// The fluidanimate workload.
pub struct Fluidanimate;

fn grid_for(p: &Params) -> u64 {
    // cells * (8 ptr + PER_CELL * 16 bytes) ~ ws.
    let cells = p.ws_bytes(PAPER_XL) / (8 + PER_CELL * 16);
    ((cells as f64).sqrt() as u64).max(16)
}

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("fluidanimate");

        // worker(tid, nt, desc): desc = [cells, g] — one timestep over a
        // row partition; each cell interacts with its east/south neighbours.
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let cells = fb.load(Ty::Ptr, desc);
                let g_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let g = fb.load(Ty::I64, g_a);
                let gm1 = fb.sub(g, 1u64);
                let (lo, hi) = emit_partition(fb, gm1, tid, nt);
                fb.count_loop(lo, hi, |fb, y| {
                    let row = fb.mul(y, g);
                    fb.count_loop(0u64, gm1, |fb, x| {
                        let idx = fb.add(row, x);
                        let ca = fb.gep(cells, idx, 8, 0);
                        let cell = fb.load(Ty::Ptr, ca);
                        // East neighbour.
                        let eidx = fb.add(idx, 1u64);
                        let ea = fb.gep(cells, eidx, 8, 0);
                        let east = fb.load(Ty::Ptr, ea);
                        // South neighbour.
                        let sidx = fb.add(idx, g);
                        let sa = fb.gep(cells, sidx, 8, 0);
                        let south = fb.load(Ty::Ptr, sa);
                        // Interact: sum neighbour velocities into my
                        // particles (integer SPH-ish kernel).
                        fb.count_loop(0u64, PER_CELL, |fb, i| {
                            let pa = fb.gep(cell, i, 16, 0);
                            let v = fb.load(Ty::I64, pa);
                            let eb = fb.gep(east, i, 16, 8);
                            let ev = fb.load(Ty::I64, eb);
                            let sb = fb.gep(south, i, 16, 8);
                            let sv = fb.load(Ty::I64, sb);
                            let sum = fb.add(ev, sv);
                            let half = fb.lshr(sum, 1u64);
                            let v2 = fb.add(v, half);
                            let damp = fb.lshr(v2, 4u64);
                            let v3 = fb.sub(v2, damp);
                            fb.store(Ty::I64, pa, v3);
                        });
                    });
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let g = fb.param(1);
            let nt = fb.param(2);
            let ncells = fb.mul(g, g);
            let seed_bytes = fb.mul(ncells, 8u64);
            let seeds = emit_tag_input(fb, raw, seed_bytes);
            // Allocate the cell-pointer array and one block per cell.
            let cb = fb.mul(ncells, 8u64);
            let cells = fb.intr_ptr("malloc", &[cb.into()]);
            fb.count_loop(0u64, ncells, |fb, i| {
                let block = fb.intr_ptr("malloc", &[(PER_CELL * 16).into()]);
                let sa = fb.gep(seeds, i, 8, 0);
                let seed = fb.load(Ty::I64, sa);
                fb.count_loop(0u64, PER_CELL, |fb, k| {
                    let pa = fb.gep(block, k, 16, 0);
                    let val = fb.add(seed, k);
                    fb.store(Ty::I64, pa, val);
                    let va = fb.gep(block, k, 16, 8);
                    let vel = fb.xor(seed, k);
                    let vel2 = fb.and(vel, 0xFFFFu64);
                    fb.store(Ty::I64, va, vel2);
                });
                let slot = fb.gep(cells, i, 8, 0);
                fb.store(Ty::Ptr, slot, block);
            });
            let desc = fb.intr_ptr("malloc", &[16u64.into()]);
            fb.store(Ty::Ptr, desc, cells);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, g);
            fb.count_loop(0u64, STEPS, |fb, _| {
                fork_join(fb, worker, nt, desc);
            });
            // Checksum: positions of a sample diagonal.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, g, |fb, d| {
                let idx = fb.mul(d, g);
                let idx2 = fb.add(idx, d);
                let ca = fb.gep(cells, idx2, 8, 0);
                let cell = fb.load(Ty::Ptr, ca);
                let v = fb.load(Ty::I64, cell);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let g = grid_for(p);
        let mut rng = p.rng();
        let mut seeds = Vec::with_capacity((g * g * 8) as usize);
        for _ in 0..g * g {
            seeds.extend_from_slice(&rng.gen_range(0u64..1 << 16).to_le_bytes());
        }
        let addr = st.stage(vm, &seeds);
        vec![addr as u64, g, p.threads as u64]
    }
}
