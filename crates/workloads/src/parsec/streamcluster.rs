//! `streamcluster`: online clustering over flat point arrays — distance
//! kernels dominated by streaming reads.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 128 << 20;
/// Dimensions per point.
const DIMS: u64 = 8;
/// Candidate centers.
const CENTERS: u64 = 16;

/// The streamcluster workload.
pub struct Streamcluster;

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("streamcluster");

        // worker(tid, nt, desc): desc = [points, n, centers, costs].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let points = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let c_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let centers = fb.load(Ty::Ptr, c_a);
                let o_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let costs = fb.load(Ty::Ptr, o_a);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                let total = fb.local(Ty::I64);
                fb.set(total, 0u64);
                fb.count_loop(lo, hi, |fb, i| {
                    let pv = fb.gep(points, i, (DIMS * 8) as u32, 0);
                    let best = fb.local(Ty::I64);
                    fb.set(best, u64::MAX >> 1);
                    fb.count_loop(0u64, CENTERS, |fb, c| {
                        let cv = fb.gep(centers, c, (DIMS * 8) as u32, 0);
                        let dist = fb.local(Ty::I64);
                        fb.set(dist, 0u64);
                        fb.count_loop(0u64, DIMS, |fb, d| {
                            let aa = fb.gep(pv, d, 8, 0);
                            let av = fb.load(Ty::I64, aa);
                            let ba = fb.gep(cv, d, 8, 0);
                            let bv = fb.load(Ty::I64, ba);
                            let diff = fb.sub(av, bv);
                            let sq = fb.mul(diff, diff);
                            let dv = fb.get(dist);
                            let s = fb.add(dv, sq);
                            fb.set(dist, s);
                        });
                        let dv = fb.get(dist);
                        let bv = fb.get(best);
                        let better = fb.cmp(CmpOp::ULt, dv, bv);
                        fb.if_then(better, |fb| fb.set(best, dv));
                    });
                    let b = fb.get(best);
                    let t = fb.get(total);
                    let s = fb.add(t, b);
                    fb.set(total, s);
                });
                let oa = fb.gep(costs, tid, 8, 0);
                let t = fb.get(total);
                fb.store(Ty::I64, oa, t);
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            let bytes = fb.mul(n, DIMS * 8);
            let points = emit_tag_input(fb, raw, bytes);
            // Centers: the first CENTERS points, copied to the heap.
            let centers = fb.intr_ptr("malloc", &[(CENTERS * DIMS * 8).into()]);
            fb.intr_void(
                "memcpy",
                &[centers.into(), points.into(), (CENTERS * DIMS * 8).into()],
            );
            let costs = fb.intr_ptr("calloc", &[(64 * 8u64).into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[32u64.into()]);
            fb.store(Ty::Ptr, desc, points);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, centers);
            let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
            fb.store(Ty::Ptr, d24, costs);
            fork_join(fb, worker, nt, desc);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, nt, |fb, i| {
                let a = fb.gep(costs, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / (DIMS * 8)).max(CENTERS * 2);
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * DIMS * 8) as usize);
        for _ in 0..n * DIMS {
            data.extend_from_slice(&rng.gen_range(0u64..512).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
