//! `bodytrack`: particle-filter resampling. Each frame allocates a new
//! particle generation and stores *pointers* to kept particles — the
//! pointer-vector churn behind MPX's ~4x memory overhead (Fig. 7).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 48 << 20;
/// Particle record bytes (state + weight).
const PART: u64 = 40;
/// Frames processed.
const FRAMES: u64 = 3;

/// The bodytrack workload.
pub struct Bodytrack;

impl Workload for Bodytrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("bodytrack");

        mb.func(
            "main",
            &[Ty::Ptr, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let raw = fb.param(0);
                let img_len = fb.param(1);
                let nparticles = fb.param(2);
                let _nt = fb.param(3);
                let image = emit_tag_input(fb, raw, img_len);

                // Particle pointer vector for the current generation.
                let vec_bytes = fb.mul(nparticles, 8u64);
                let cur = fb.local(Ty::Ptr);
                let first = fb.intr_ptr("malloc", &[vec_bytes.into()]);
                fb.set(cur, first);
                // Populate generation 0.
                fb.count_loop(0u64, nparticles, |fb, i| {
                    let part = fb.intr_ptr("malloc", &[Operand::Imm(PART)]);
                    let seed = fb.mul(i, 2654435761u64);
                    fb.store(Ty::I64, part, seed);
                    let c = fb.get(cur);
                    let slot = fb.gep(c, i, 8, 0);
                    fb.store(Ty::Ptr, slot, part);
                });

                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                fb.count_loop(0u64, FRAMES, |fb, _f| {
                    // Weight particles against the "image": a few dependent
                    // lookups per particle.
                    fb.count_loop(0u64, nparticles, |fb, i| {
                        let c = fb.get(cur);
                        let slot = fb.gep(c, i, 8, 0);
                        let part = fb.load(Ty::Ptr, slot);
                        let state = fb.load(Ty::I64, part);
                        let w = fb.local(Ty::I64);
                        fb.set(w, 0u64);
                        let pos = fb.local(Ty::I64);
                        fb.set(pos, state);
                        fb.count_loop(0u64, 4u64, |fb, _| {
                            let pv = fb.get(pos);
                            let idx = fb.urem(pv, img_len);
                            let a = fb.gep(image, idx, 1, 0);
                            let pix = fb.load(Ty::I8, a);
                            let wv = fb.get(w);
                            let w2 = fb.add(wv, pix);
                            fb.set(w, w2);
                            let nx = fb.mul(pv, 6364136223846793005u64);
                            let nx2 = fb.add(nx, 1442695040888963407u64);
                            fb.set(pos, nx2);
                        });
                        let wa = fb.gep_inbounds(part, 0u64, 1, 8);
                        let wv = fb.get(w);
                        fb.store(Ty::I64, wa, wv);
                    });
                    // Resample: new generation keeps heavy particles,
                    // respawns light ones; the pointer vector is rebuilt.
                    let next = fb.intr_ptr("malloc", &[vec_bytes.into()]);
                    fb.count_loop(0u64, nparticles, |fb, i| {
                        let c = fb.get(cur);
                        let slot = fb.gep(c, i, 8, 0);
                        let part = fb.load(Ty::Ptr, slot);
                        let wa = fb.gep_inbounds(part, 0u64, 1, 8);
                        let w = fb.load(Ty::I64, wa);
                        let keep = fb.cmp(CmpOp::UGt, w, 420u64);
                        let dst = fb.gep(next, i, 8, 0);
                        fb.if_else(
                            keep,
                            |fb| {
                                fb.store(Ty::Ptr, dst, part);
                                let x = fb.get(chk);
                                let s = fb.add(x, 1u64);
                                fb.set(chk, s);
                            },
                            |fb| {
                                // Respawn: free and reallocate.
                                fb.intr_void("free", &[part.into()]);
                                let fresh = fb.intr_ptr("malloc", &[Operand::Imm(PART)]);
                                let ns = fb.mul(i, 0x9E37u64);
                                let w2 = fb.get(chk);
                                let seed = fb.add(ns, w2);
                                fb.store(Ty::I64, fresh, seed);
                                fb.store(Ty::Ptr, dst, fresh);
                            },
                        );
                    });
                    let old = fb.get(cur);
                    fb.intr_void("free", &[old.into()]);
                    fb.set(cur, next);
                });

                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let img_len = p.ws_bytes(PAPER_XL) / 2;
        let nparticles = (p.ws_bytes(PAPER_XL) / 2 / (PART + 8)).max(64);
        let mut img = vec![0u8; img_len as usize];
        p.rng().fill_bytes(&mut img);
        let addr = st.stage(vm, &img);
        vec![addr as u64, img_len, nparticles, p.threads as u64]
    }
}
