//! `swaptions`: Monte-Carlo pricing with a tiny working set but constant
//! allocation/free of small row-pointer matrices in the hot loop — the
//! paper's extreme case for ASan's quarantine (413 MB footprint from a
//! 3.3 MB working set) and for MPX's bounds tables (13x, §6.2).

use crate::util::{emit_partition, fork_join, Params, Suite, Workload};
use sgxs_mir::{Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

/// Swaptions priced (scaled by size class).
const PAPER_XL_SWAPTIONS: u64 = 8192;
/// Simulation matrix geometry.
const ROWS: u64 = 8;
const COLS: u64 = 16;
/// Paths per swaption.
const PATHS: u64 = 4;

/// The swaptions workload.
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("swaptions");

        // price(seed) -> price: allocates an HJM path matrix as an array of
        // row pointers, fills it, reduces it, frees everything.
        let price = mb.func("price_swaption", &[Ty::I64], Some(Ty::I64), |fb| {
            let seed = fb.param(0);
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            fb.count_loop(0u64, PATHS, |fb, path| {
                let rows = fb.intr_ptr("malloc", &[Operand::Imm(ROWS * 8)]);
                fb.count_loop(0u64, ROWS, |fb, r| {
                    let row = fb.intr_ptr("malloc", &[Operand::Imm(COLS * 8)]);
                    let slot = fb.gep(rows, r, 8, 0);
                    fb.store(Ty::Ptr, slot, row);
                    // Fill the row with a deterministic "shock" series.
                    let base = fb.add(seed, path);
                    let base2 = fb.mul(base, 2654435761u64);
                    let base3 = fb.add(base2, r);
                    fb.count_loop(0u64, COLS, |fb, c| {
                        let x = fb.mul(base3, 6364136223846793005u64);
                        let x2 = fb.add(x, c);
                        let x3 = fb.lshr(x2, 33u64);
                        let a = fb.gep(row, c, 8, 0);
                        fb.store(Ty::I64, a, x3);
                    });
                });
                // Reduce: discounted sum down the columns.
                fb.count_loop(0u64, ROWS, |fb, r| {
                    let slot = fb.gep(rows, r, 8, 0);
                    let row = fb.load(Ty::Ptr, slot);
                    fb.count_loop(0u64, COLS, |fb, c| {
                        let a = fb.gep(row, c, 8, 0);
                        let v = fb.load(Ty::I64, a);
                        let disc = fb.lshr(v, 8u64);
                        let cur = fb.get(acc);
                        let s = fb.add(cur, disc);
                        fb.set(acc, s);
                    });
                });
                // Free the matrix (the churn ASan's quarantine punishes).
                fb.count_loop(0u64, ROWS, |fb, r| {
                    let slot = fb.gep(rows, r, 8, 0);
                    let row = fb.load(Ty::Ptr, slot);
                    fb.intr_void("free", &[row.into()]);
                });
                fb.intr_void("free", &[rows.into()]);
            });
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        });

        // worker(tid, nt, desc): desc = [out, nswaptions].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let out = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                let acc = fb.local(Ty::I64);
                fb.set(acc, 0u64);
                fb.count_loop(lo, hi, |fb, s| {
                    let p = fb.call(price, &[s.into()]).expect("price returns");
                    let a = fb.get(acc);
                    let x = fb.add(a, p);
                    fb.set(acc, x);
                });
                let oa = fb.gep(out, tid, 8, 0);
                let a = fb.get(acc);
                fb.store(Ty::I64, oa, a);
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let n = fb.param(0);
            let nt = fb.param(1);
            let out = fb.intr_ptr("calloc", &[(64 * 8u64).into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[16u64.into()]);
            fb.store(Ty::Ptr, desc, out);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            fork_join(fb, worker, nt, desc);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, nt, |fb, i| {
                let a = fb.gep(out, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, _vm: &mut Vm<'_>, _st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (PAPER_XL_SWAPTIONS * p.size.factor() / 16 / p.scale.max(1)).max(8);
        vec![n, p.threads as u64]
    }
}
