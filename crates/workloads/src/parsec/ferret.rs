//! `ferret`: content-based similarity search — queries scan a database of
//! feature vectors through an index of vector pointers.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
/// Feature dimensions (i64 components for determinism).
const DIMS: u64 = 16;
/// Queries processed.
const QUERIES: u64 = 8;

/// The ferret workload.
pub struct Ferret;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("ferret");

        // worker(tid, nt, desc): desc = [index, n, queries, best_out].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let index = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let q_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let queries = fb.load(Ty::Ptr, q_a);
                let o_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let out = fb.load(Ty::Ptr, o_a);
                let (lo, hi) = emit_partition(fb, QUERIES, tid, nt);
                fb.count_loop(lo, hi, |fb, q| {
                    let qv = fb.gep(queries, q, (DIMS * 8) as u32, 0);
                    let best = fb.local(Ty::I64);
                    fb.set(best, u64::MAX >> 1);
                    fb.count_loop(0u64, n, |fb, i| {
                        // Indirect: index holds vector pointers.
                        let ia = fb.gep(index, i, 8, 0);
                        let vec = fb.load(Ty::Ptr, ia);
                        let dist = fb.local(Ty::I64);
                        fb.set(dist, 0u64);
                        fb.count_loop(0u64, DIMS, |fb, d| {
                            let aa = fb.gep(qv, d, 8, 0);
                            let av = fb.load(Ty::I64, aa);
                            let ba = fb.gep(vec, d, 8, 0);
                            let bv = fb.load(Ty::I64, ba);
                            let diff = fb.sub(av, bv);
                            let sq = fb.mul(diff, diff);
                            let dv = fb.get(dist);
                            let s = fb.add(dv, sq);
                            fb.set(dist, s);
                        });
                        let dv = fb.get(dist);
                        let bv = fb.get(best);
                        let better = fb.cmp(CmpOp::ULt, dv, bv);
                        fb.if_then(better, |fb| {
                            fb.set(best, dv);
                        });
                    });
                    let oa = fb.gep(out, q, 8, 0);
                    let b = fb.get(best);
                    fb.store(Ty::I64, oa, b);
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let db_raw = fb.param(0);
                let q_raw = fb.param(1);
                let n = fb.param(2);
                let nt = fb.param(3);
                let db_bytes = fb.mul(n, DIMS * 8);
                let db = emit_tag_input(fb, db_raw, db_bytes);
                let queries = emit_tag_input(fb, q_raw, QUERIES * DIMS * 8);
                // Build the pointer index over the flat database.
                let ib = fb.mul(n, 8u64);
                let index = fb.intr_ptr("malloc", &[ib.into()]);
                fb.count_loop(0u64, n, |fb, i| {
                    let vec = fb.gep(db, i, (DIMS * 8) as u32, 0);
                    let slot = fb.gep(index, i, 8, 0);
                    fb.store(Ty::Ptr, slot, vec);
                });
                let out = fb.intr_ptr("calloc", &[(QUERIES * 8).into(), 1u64.into()]);
                let desc = fb.intr_ptr("malloc", &[32u64.into()]);
                fb.store(Ty::Ptr, desc, index);
                let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
                fb.store(Ty::I64, d8, n);
                let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
                fb.store(Ty::Ptr, d16, queries);
                let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
                fb.store(Ty::Ptr, d24, out);
                fork_join(fb, worker, nt, desc);
                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                fb.count_loop(0u64, QUERIES, |fb, q| {
                    let oa = fb.gep(out, q, 8, 0);
                    let v = fb.load(Ty::I64, oa);
                    let c = fb.get(chk);
                    let s = fb.add(c, v);
                    fb.set(chk, s);
                });
                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / (DIMS * 8 + 8)).max(32);
        let mut rng = p.rng();
        let mut db = Vec::with_capacity((n * DIMS * 8) as usize);
        for _ in 0..n * DIMS {
            db.extend_from_slice(&rng.gen_range(0u64..1024).to_le_bytes());
        }
        let mut q = Vec::with_capacity((QUERIES * DIMS * 8) as usize);
        for _ in 0..QUERIES * DIMS {
            q.extend_from_slice(&rng.gen_range(0u64..1024).to_le_bytes());
        }
        let db_addr = st.stage(vm, &db);
        let q_addr = st.stage(vm, &q);
        vec![db_addr as u64, q_addr as u64, n, p.threads as u64]
    }
}
