//! `vips`: image pipeline — two streaming passes (3-tap convolution, then
//! level adjustment) over a large buffer. Sequential and pointer-free.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 192 << 20;

/// The vips workload.
pub struct Vips;

impl Workload for Vips {
    fn name(&self) -> &'static str {
        "vips"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("vips");

        // worker(tid, nt, desc): desc = [src, dst, len, phase].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let src = fb.load(Ty::Ptr, desc);
                let d_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let dst = fb.load(Ty::Ptr, d_a);
                let l_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let len = fb.load(Ty::I64, l_a);
                let p_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let phase = fb.load(Ty::I64, p_a);
                let interior = fb.sub(len, 2u64);
                let (lo, hi) = emit_partition(fb, interior, tid, nt);
                fb.if_else(
                    phase,
                    |fb| {
                        // Phase 1: level adjust dst[i] = src[i]*3/4 + 16.
                        fb.count_loop(lo, hi, |fb, i| {
                            let a = fb.gep(src, i, 1, 0);
                            let v = fb.load(Ty::I8, a);
                            let x = fb.mul(v, 3u64);
                            let y = fb.lshr(x, 2u64);
                            let z = fb.add(y, 16u64);
                            let zc = fb.and(z, 0xFFu64);
                            let o = fb.gep(dst, i, 1, 0);
                            fb.store(Ty::I8, o, zc);
                        });
                    },
                    |fb| {
                        // Phase 0: 3-tap box blur.
                        fb.count_loop(lo, hi, |fb, i| {
                            let a0 = fb.gep(src, i, 1, 0);
                            let v0 = fb.load(Ty::I8, a0);
                            let a1 = fb.gep(src, i, 1, 1);
                            let v1 = fb.load(Ty::I8, a1);
                            let a2 = fb.gep(src, i, 1, 2);
                            let v2 = fb.load(Ty::I8, a2);
                            let s = fb.add(v0, v1);
                            let s2 = fb.add(s, v2);
                            let avg = fb.udiv(s2, 3u64);
                            let o = fb.gep(dst, i, 1, 1);
                            fb.store(Ty::I8, o, avg);
                        });
                    },
                );
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let len = fb.param(1);
            let nt = fb.param(2);
            let src = emit_tag_input(fb, raw, len);
            let tmp = fb.intr_ptr("malloc", &[len.into()]);
            let desc = fb.intr_ptr("malloc", &[32u64.into()]);
            // Pass 1: blur src -> tmp.
            fb.store(Ty::Ptr, desc, src);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::Ptr, d8, tmp);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::I64, d16, len);
            let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
            fb.store(Ty::I64, d24, 0u64);
            fork_join(fb, worker, nt, desc);
            // Pass 2: levels tmp -> src (in place over the input copy).
            fb.store(Ty::Ptr, desc, tmp);
            fb.store(Ty::Ptr, d8, src);
            fb.store(Ty::I64, d24, 1u64);
            fork_join(fb, worker, nt, desc);
            // Checksum a sample stripe.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let step = fb.udiv(len, 1024u64);
            let step1 = fb.or(step, 1u64);
            let samples = fb.udiv(len, step1);
            fb.count_loop(0u64, samples, |fb, i| {
                let idx = fb.mul(i, step1);
                let a = fb.gep(src, idx, 1, 0);
                let v = fb.load(Ty::I8, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let len = p.ws_bytes(PAPER_XL) / 2;
        let mut img = vec![0u8; len as usize];
        p.rng().fill_bytes(&mut img);
        let addr = st.stage(vm, &img);
        vec![addr as u64, len, p.threads as u64]
    }
}
