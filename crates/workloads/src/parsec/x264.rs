//! `x264`: motion estimation — SAD over fixed-size blocks copied into a
//! stack buffer accessed at compile-time-constant offsets. The constant
//! offsets are exactly what the safe-access optimization elides, giving
//! x264 its ~20% gain in the paper's Fig. 10.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
/// Block edge (8x8 blocks; 8 bytes per row loaded as one word).
const BLK: u64 = 8;
/// Search radius in blocks.
const RADIUS: u64 = 2;

/// The x264 workload.
pub struct X264;

fn frame_dim(p: &Params) -> u64 {
    // Two frames of dim*dim bytes.
    let per_frame = p.ws_bytes(PAPER_XL) / 2;
    ((per_frame as f64).sqrt() as u64 / BLK * BLK).max(64)
}

impl Workload for X264 {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("x264");

        // worker(tid, nt, desc): desc = [cur, ref, dim, sads].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let cur = fb.load(Ty::Ptr, desc);
                let r_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let reff = fb.load(Ty::Ptr, r_a);
                let d_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let dim = fb.load(Ty::I64, d_a);
                let s_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let sads = fb.load(Ty::Ptr, s_a);
                let blocks = fb.udiv(dim, BLK);
                // Skip the border blocks so the search window stays inside.
                let inner = fb.sub(blocks, 2 * RADIUS);
                let (lo, hi) = emit_partition(fb, inner, tid, nt);
                let total = fb.local(Ty::I64);
                fb.set(total, 0u64);
                // The current block, copied to a fixed 64-byte stack buffer
                // accessed at constant offsets (safe-access target).
                let blkbuf = fb.slot("blkbuf", 64);
                fb.count_loop(lo, hi, |fb, byr| {
                    let by = fb.add(byr, RADIUS);
                    fb.count_loop(0u64, inner, |fb, bxr| {
                        let bx = fb.add(bxr, RADIUS);
                        // Copy the current block row-by-row (8B per row).
                        let bb = fb.slot_addr(blkbuf);
                        for row in 0..BLK {
                            let y = fb.mul(by, BLK);
                            let y2 = fb.add(y, row);
                            let off = fb.mul(y2, dim);
                            let x = fb.mul(bx, BLK);
                            let idx = fb.add(off, x);
                            let src = fb.gep(cur, idx, 1, 0);
                            let w = fb.load(Ty::I64, src);
                            let dstslot = fb.gep_inbounds(bb, 0u64, 1, (row * 8) as i64);
                            fb.store(Ty::I64, dstslot, w);
                        }
                        // Search the reference frame window.
                        let best = fb.local(Ty::I64);
                        fb.set(best, u64::MAX >> 1);
                        fb.count_loop(0u64, 2 * RADIUS + 1, |fb, dy| {
                            fb.count_loop(0u64, 2 * RADIUS + 1, |fb, dx| {
                                let sad = fb.local(Ty::I64);
                                fb.set(sad, 0u64);
                                let cy = fb.add(by, dy);
                                let ry = fb.sub(cy, RADIUS);
                                let cx = fb.add(bx, dx);
                                let rx = fb.sub(cx, RADIUS);
                                for row in 0..BLK {
                                    let y = fb.mul(ry, BLK);
                                    let y2 = fb.add(y, row);
                                    let off = fb.mul(y2, dim);
                                    let x = fb.mul(rx, BLK);
                                    let idx = fb.add(off, x);
                                    let ra = fb.gep(reff, idx, 1, 0);
                                    let rw = fb.load(Ty::I64, ra);
                                    let bb2 = fb.slot_addr(blkbuf);
                                    let ca = fb.gep_inbounds(bb2, 0u64, 1, (row * 8) as i64);
                                    let cw = fb.load(Ty::I64, ca);
                                    // Word-level absolute difference proxy.
                                    let x1 = fb.xor(rw, cw);
                                    let lo8 = fb.and(x1, 0x00FF_00FF_00FF_00FFu64);
                                    let hi8 = fb.lshr(x1, 8u64);
                                    let hi8m = fb.and(hi8, 0x00FF_00FF_00FF_00FFu64);
                                    let d = fb.add(lo8, hi8m);
                                    let s0 = fb.get(sad);
                                    let s1 = fb.add(s0, d);
                                    fb.set(sad, s1);
                                }
                                let sv = fb.get(sad);
                                let bv = fb.get(best);
                                let better = fb.cmp(CmpOp::ULt, sv, bv);
                                fb.if_then(better, |fb| fb.set(best, sv));
                            });
                        });
                        let bvv = fb.get(best);
                        let folded = fb.and(bvv, 0xFFFFu64);
                        let t = fb.get(total);
                        let t2 = fb.add(t, folded);
                        fb.set(total, t2);
                    });
                });
                let oa = fb.gep(sads, tid, 8, 0);
                let t = fb.get(total);
                fb.store(Ty::I64, oa, t);
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let cur_raw = fb.param(0);
                let ref_raw = fb.param(1);
                let dim = fb.param(2);
                let nt = fb.param(3);
                let bytes = fb.mul(dim, dim);
                let cur = emit_tag_input(fb, cur_raw, bytes);
                let reff = emit_tag_input(fb, ref_raw, bytes);
                let sads = fb.intr_ptr("calloc", &[(64 * 8u64).into(), 1u64.into()]);
                let desc = fb.intr_ptr("malloc", &[32u64.into()]);
                fb.store(Ty::Ptr, desc, cur);
                let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
                fb.store(Ty::Ptr, d8, reff);
                let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
                fb.store(Ty::I64, d16, dim);
                let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
                fb.store(Ty::Ptr, d24, sads);
                fork_join(fb, worker, nt, desc);
                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                fb.count_loop(0u64, nt, |fb, i| {
                    let a = fb.gep(sads, i, 8, 0);
                    let v = fb.load(Ty::I64, a);
                    let c = fb.get(chk);
                    let s = fb.add(c, v);
                    fb.set(chk, s);
                });
                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let dim = frame_dim(p);
        let mut rng = p.rng();
        let mut cur = vec![0u8; (dim * dim) as usize];
        rng.fill_bytes(&mut cur);
        // Reference frame: the current frame shifted, plus noise.
        let mut reff = cur.clone();
        reff.rotate_right((dim + 3) as usize);
        let addr_c = st.stage(vm, &cur);
        let addr_r = st.stage(vm, &reff);
        vec![addr_c as u64, addr_r as u64, dim, p.threads as u64]
    }
}
