//! PARSEC 3.0 benchmark analogues — the 9 programs the paper runs (§6.1;
//! raytrace, freqmine, facesim, and canneal are excluded there too).
//!
//! | program        | character                                         |
//! |----------------|---------------------------------------------------|
//! | blackscholes   | FP-dense, tiny memory traffic (zero overheads)    |
//! | bodytrack      | particle resampling, pointer vectors               |
//! | dedup          | alloc + pointer churn over a wide heap (MPX OOM)  |
//! | ferret         | feature-vector scans through an index              |
//! | fluidanimate   | grid of cell pointers (MPX memory blow-up)        |
//! | streamcluster  | flat-array distance kernels                        |
//! | swaptions      | tiny WS, constant malloc/free (ASan quarantine)   |
//! | vips           | streaming image pipeline                           |
//! | x264           | fixed-size block SAD (safe-access opt target)     |

pub mod blackscholes;
pub mod bodytrack;
pub mod dedup;
pub mod ferret;
pub mod fluidanimate;
pub mod streamcluster;
pub mod swaptions;
pub mod vips;
pub mod x264;

use crate::util::Workload;

/// The nine PARSEC workloads.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(blackscholes::Blackscholes),
        Box::new(bodytrack::Bodytrack),
        Box::new(dedup::Dedup),
        Box::new(ferret::Ferret),
        Box::new(fluidanimate::Fluidanimate),
        Box::new(streamcluster::Streamcluster),
        Box::new(swaptions::Swaptions),
        Box::new(vips::Vips),
        Box::new(x264::X264),
    ]
}
