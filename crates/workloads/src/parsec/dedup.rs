//! `dedup`: content-defined chunking + deduplication. Allocation- and
//! pointer-heavy over a wide heap — the benchmark whose bounds-table
//! explosion crashes MPX in the paper (Fig. 7: missing MPX bar).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

// Dedup's heap (chunk store + staging buffers) reaches gigabyte scale in
// PARSEC; the bounds tables over it are what crash MPX (Fig. 7).
const PAPER_XL: u64 = 1 << 30;
/// Hash buckets.
const BUCKETS: u64 = 8192;
/// Chunk-boundary mask (average chunk ~256 bytes).
const BOUNDARY_MASK: u64 = 0xFF;

/// The dedup workload.
pub struct Dedup;

impl Workload for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("dedup");

        // commit(table, inp, start, end, hash) -> 1 if the chunk was new.
        // New chunks are copied into fresh heap storage and linked into the
        // bucket chain: node = [hash 8][data ptr 8][len 8][next 8].
        let commit = mb.func(
            "commit",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let table = fb.param(0);
                let inp = fb.param(1);
                let start = fb.param(2);
                let end = fb.param(3);
                let hash = fb.param(4);
                let b = fb.and(hash, BUCKETS - 1);
                let head = fb.gep(table, b, 8, 0);
                let cur = fb.local(Ty::Ptr);
                let first = fb.load(Ty::Ptr, head);
                fb.set(cur, first);

                let walk = fb.block();
                let check = fb.block();
                let advance = fb.block();
                let dup = fb.block();
                let fresh = fb.block();
                fb.jmp(walk);

                fb.switch_to(walk);
                let c = fb.get(cur);
                let p = fb.and(c, 0xFFFF_FFFFu64);
                let nonnull = fb.cmp(CmpOp::Ne, p, 0u64);
                fb.br(nonnull, check, fresh);

                fb.switch_to(check);
                let c = fb.get(cur);
                let h = fb.load(Ty::I64, c);
                let eq = fb.cmp(CmpOp::Eq, h, hash);
                fb.br(eq, dup, advance);

                fb.switch_to(advance);
                let c = fb.get(cur);
                let na = fb.gep_inbounds(c, 0u64, 1, 24);
                let next = fb.load(Ty::Ptr, na);
                fb.set(cur, next);
                fb.jmp(walk);

                fb.switch_to(dup);
                fb.ret(Some(0u64.into()));

                fb.switch_to(fresh);
                let clen = fb.sub(end, start);
                // Unique chunks keep an 8x staging buffer (compression
                // workspace), matching dedup's real heap appetite.
                let stage_len = fb.mul(clen, 8u64);
                let copy = fb.intr_ptr("malloc", &[stage_len.into()]);
                let src = fb.gep(inp, start, 1, 0);
                fb.intr_void("memcpy", &[copy.into(), src.into(), clen.into()]);
                let node = fb.intr_ptr("malloc", &[Operand::Imm(32)]);
                fb.store(Ty::I64, node, hash);
                let da = fb.gep_inbounds(node, 0u64, 1, 8);
                fb.store(Ty::Ptr, da, copy);
                let la = fb.gep_inbounds(node, 0u64, 1, 16);
                fb.store(Ty::I64, la, clen);
                let na = fb.gep_inbounds(node, 0u64, 1, 24);
                let old = fb.load(Ty::Ptr, head);
                fb.store(Ty::Ptr, na, old);
                fb.store(Ty::Ptr, head, node);
                fb.ret(Some(1u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let len = fb.param(1);
            let _nt = fb.param(2);
            let inp = emit_tag_input(fb, raw, len);
            let table = fb.intr_ptr("calloc", &[Operand::Imm(BUCKETS * 8), 1u64.into()]);

            let chunk_start = fb.local(Ty::I64);
            let roll = fb.local(Ty::I64);
            let uniq = fb.local(Ty::I64);
            let dups = fb.local(Ty::I64);
            fb.set(chunk_start, 0u64);
            fb.set(roll, 0u64);
            fb.set(uniq, 0u64);
            fb.set(dups, 0u64);

            fb.count_loop(0u64, len, |fb, i| {
                let a = fb.gep(inp, i, 1, 0);
                let b = fb.load(Ty::I8, a);
                let r = fb.get(roll);
                let r2 = fb.mul(r, 31u64);
                let r3 = fb.add(r2, b);
                fb.set(roll, r3);
                let masked = fb.and(r3, BOUNDARY_MASK);
                let boundary = fb.cmp(CmpOp::Eq, masked, BOUNDARY_MASK);
                fb.if_then(boundary, |fb| {
                    let start = fb.get(chunk_start);
                    let end = fb.add(i, 1u64);
                    let h = fb.get(roll);
                    let was_new = fb
                        .call(
                            commit,
                            &[table.into(), inp.into(), start.into(), end.into(), h.into()],
                        )
                        .expect("commit returns");
                    fb.if_else(
                        was_new,
                        |fb| {
                            let u = fb.get(uniq);
                            let s = fb.add(u, 1u64);
                            fb.set(uniq, s);
                        },
                        |fb| {
                            let d = fb.get(dups);
                            let s = fb.add(d, 1u64);
                            fb.set(dups, s);
                        },
                    );
                    fb.set(chunk_start, end);
                    fb.set(roll, 0u64);
                });
            });

            let u = fb.get(uniq);
            let d = fb.get(dups);
            let hi = fb.shl(u, 20u64);
            let v = fb.add(hi, d);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let len = p.ws_bytes(PAPER_XL) / 2;
        let mut rng = p.rng();
        // Repetitive data: blocks drawn from a small pool so many chunks
        // dedup, interleaved with unique spans.
        let pool: Vec<Vec<u8>> = (0..32)
            .map(|_| {
                let mut b = vec![0u8; 512];
                rng.fill(&mut b[..]);
                b
            })
            .collect();
        let mut data = Vec::with_capacity(len as usize);
        while data.len() < len as usize {
            if rng.gen_bool(0.6) {
                data.extend_from_slice(&pool[rng.gen_range(0..pool.len())]);
            } else {
                let mut b = vec![0u8; 512];
                rng.fill(&mut b[..]);
                data.extend_from_slice(&b);
            }
        }
        data.truncate(len as usize);
        let addr = st.stage(vm, &data);
        vec![addr as u64, len, p.threads as u64]
    }
}
