//! `blackscholes`: per-option closed-form pricing. Compute-bound FP with a
//! single streaming pass — the paper's near-zero-overhead case (Fig. 7).

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CastKind, FBinOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 64 << 20;
/// Option record: S, K, T, v (f64 each).
const REC: u32 = 32;

/// The blackscholes workload.
pub struct Blackscholes;

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("blackscholes");

        // worker(tid, nt, desc): desc = [options, n, results].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let opts = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let r_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let results = fb.load(Ty::Ptr, r_a);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                fb.count_loop(lo, hi, |fb, i| {
                    let base = fb.gep(opts, i, REC, 0);
                    let s = fb.load(Ty::F64, base);
                    let ka = fb.gep_inbounds(base, 0u64, 1, 8);
                    let k = fb.load(Ty::F64, ka);
                    let ta = fb.gep_inbounds(base, 0u64, 1, 16);
                    let t = fb.load(Ty::F64, ta);
                    let va = fb.gep_inbounds(base, 0u64, 1, 24);
                    let v = fb.load(Ty::F64, va);
                    // d1 = (s/k - 1 + 0.5 v^2 t) / (v sqrt(t)) — a moneyness
                    // approximation keeping the FP op mix of the original.
                    let sk = fb.fdiv(s, k);
                    let m = fb.fsub(sk, fb.fconst(1.0));
                    let v2 = fb.fmul(v, v);
                    let v2t = fb.fmul(v2, t);
                    let half = fb.fmul(v2t, fb.fconst(0.5));
                    let num = fb.fadd(m, half);
                    let st = fb.cast(CastKind::FSqrt, t);
                    let den = fb.fmul(v, st);
                    let d1 = fb.fdiv(num, den);
                    // CNDF rational approximation (Abramowitz-Stegun-ish).
                    let ax = fb.cast(CastKind::FAbs, d1);
                    let kx = fb.fmul(ax, fb.fconst(0.2316419));
                    let one_kx = fb.fadd(kx, fb.fconst(1.0));
                    let z = fb.fdiv(fb.fconst(1.0), one_kx);
                    let poly = {
                        let t1 = fb.fmul(z, fb.fconst(0.319381530));
                        let z2 = fb.fmul(z, z);
                        let t2 = fb.fmul(z2, fb.fconst(-0.356563782));
                        let z3 = fb.fmul(z2, z);
                        let t3 = fb.fmul(z3, fb.fconst(1.781477937));
                        let s1 = fb.fadd(t1, t2);
                        fb.fadd(s1, t3)
                    };
                    let x2 = fb.fmul(d1, d1);
                    let x2p1 = fb.fadd(x2, fb.fconst(1.0));
                    let damp = fb.fdiv(fb.fconst(0.3989423), x2p1);
                    let tail = fb.fmul(damp, poly);
                    let cnd = fb.fsub(fb.fconst(1.0), tail);
                    let scnd = fb.fmul(s, cnd);
                    let price = fb.fbin(FBinOp::Max, scnd, fb.fconst(0.0));
                    let out = fb.gep(results, i, 8, 0);
                    fb.store(Ty::F64, out, price);
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            let bytes = fb.mul(n, REC as u64);
            let opts = emit_tag_input(fb, raw, bytes);
            let rb = fb.mul(n, 8u64);
            let results = fb.intr_ptr("malloc", &[rb.into()]);
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, opts);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, results);
            fork_join(fb, worker, nt, desc);
            // Checksum: integerized sum of prices.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, n, |fb, i| {
                let a = fb.gep(results, i, 8, 0);
                let v = fb.load(Ty::F64, a);
                let scaled = fb.fmul(v, fb.fconst(100.0));
                let iv = fb.cast(CastKind::FToSi, scaled);
                let c = fb.get(chk);
                let s = fb.add(c, iv);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = p.ws_bytes(PAPER_XL) / REC as u64;
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * REC as u64) as usize);
        for _ in 0..n {
            data.extend_from_slice(&rng.gen_range(20.0f64..180.0).to_le_bytes());
            data.extend_from_slice(&rng.gen_range(20.0f64..180.0).to_le_bytes());
            data.extend_from_slice(&rng.gen_range(0.1f64..2.0).to_le_bytes());
            data.extend_from_slice(&rng.gen_range(0.05f64..0.6).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
