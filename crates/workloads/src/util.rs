//! Shared workload infrastructure: parameters, the workload trait, and
//! IR-building helpers (fork/join, inline PRNG, input tagging).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sgxs_mir::{FuncBuilder, FuncId, Module, Operand, Reg, Ty, Vm};
use sgxs_rt::Stager;

/// Input size classes (paper §6.3 uses XS–XL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SizeClass {
    /// Tiny.
    XS,
    /// Small.
    S,
    /// Medium.
    M,
    /// Large (the default for Figs. 7/9/10/11/12).
    L,
    /// Extra large.
    XL,
}

impl SizeClass {
    /// All classes in increasing order.
    pub const ALL: [SizeClass; 5] = [
        SizeClass::XS,
        SizeClass::S,
        SizeClass::M,
        SizeClass::L,
        SizeClass::XL,
    ];

    /// Multiplier relative to XS (each step doubles twice, matching the
    /// paper's kmeans ladder 17/34/68/135/270 MB).
    pub fn factor(self) -> u64 {
        match self {
            SizeClass::XS => 1,
            SizeClass::S => 2,
            SizeClass::M => 4,
            SizeClass::L => 8,
            SizeClass::XL => 16,
        }
    }
}

/// Run parameters for one workload execution.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Input size class.
    pub size: SizeClass,
    /// Worker threads.
    pub threads: u32,
    /// Machine-scale divisor (working sets are paper sizes divided by it).
    pub scale: u64,
    /// Input-generation seed.
    pub seed: u64,
}

impl Params {
    /// Default parameters for a machine scale: L size, 8 threads.
    pub fn new(scale: u64) -> Self {
        Params {
            size: SizeClass::L,
            threads: 8,
            scale,
            seed: 42,
        }
    }

    /// Scales a paper-sized byte count to this run's machine scale and size
    /// class, where `paper_bytes_xl` is the paper-scale XL working set.
    pub fn ws_bytes(&self, paper_bytes_xl: u64) -> u64 {
        (paper_bytes_xl * self.size.factor() / 16 / self.scale).max(4096)
    }

    /// A seeded host RNG for input generation.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }
}

/// Which suite a workload belongs to (for report grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Phoenix 2.0 (7 programs).
    Phoenix,
    /// PARSEC 3.0 (9 of 13, as in the paper).
    Parsec,
    /// SPEC CPU2006 (13 of 19, as in the paper).
    Spec,
    /// Case-study applications (§7).
    App,
}

/// A benchmark program: builds its module and stages its input.
pub trait Workload {
    /// Short name as the paper uses it (e.g. "kmeans").
    fn name(&self) -> &'static str;

    /// Suite membership.
    fn suite(&self) -> Suite;

    /// Builds the (uninstrumented) module for the given parameters.
    fn build(&self, p: &Params) -> Module;

    /// Stages input data into VM memory and returns the `main` arguments.
    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64>;
}

/// Emits an inline xorshift64* step on a local holding the PRNG state;
/// returns the register with the new value (6 ALU ops + a multiply).
pub fn emit_xorshift(fb: &mut FuncBuilder<'_>, state: sgxs_mir::LocalId) -> Reg {
    let x0 = fb.get(state);
    let a = fb.shl(x0, 13u64);
    let x1 = fb.xor(x0, a);
    let b = fb.lshr(x1, 7u64);
    let x2 = fb.xor(x1, b);
    let c = fb.shl(x2, 17u64);
    let x3 = fb.xor(x2, c);
    fb.set(state, x3);
    fb.mul(x3, 0x2545F4914F6CDD1Du64)
}

/// Emits a fork/join over `worker(tid, nthreads, shared)`: spawns
/// `nthreads` workers and joins them all. `shared` is any pointer-sized
/// value (typically a tagged pointer to a shared descriptor).
///
/// The worker function must have signature `(I64, I64, Ptr) -> I64`.
pub fn fork_join(
    fb: &mut FuncBuilder<'_>,
    worker: FuncId,
    nthreads: impl Into<Operand>,
    shared: impl Into<Operand>,
) {
    let nthreads = nthreads.into();
    let shared = shared.into();
    let tids = fb.slot("tids", 64 * 8);
    let tp = fb.slot_addr(tids);
    let wf = fb.func_addr(worker);
    fb.count_loop(0u64, nthreads, |fb, i| {
        let t = fb.intr("spawn", &[wf.into(), i.into(), nthreads, shared]);
        let slot = fb.gep(tp, i, 8, 0);
        fb.store(Ty::I64, slot, t);
    });
    fb.count_loop(0u64, nthreads, |fb, i| {
        let slot = fb.gep(tp, i, 8, 0);
        let t = fb.load(Ty::I64, slot);
        fb.intr("join", &[t.into()]);
    });
}

/// Emits the per-thread `[lo, hi)` partition of `0..n`:
/// `lo = n * tid / nthreads`, `hi = n * (tid+1) / nthreads`.
pub fn emit_partition(
    fb: &mut FuncBuilder<'_>,
    n: impl Into<Operand>,
    tid: Reg,
    nthreads: Reg,
) -> (Reg, Reg) {
    let n = n.into();
    let a = fb.mul(n, tid);
    let lo = fb.udiv(a, nthreads);
    let t1 = fb.add(tid, 1u64);
    let b = fb.mul(n, t1);
    let hi = fb.udiv(b, nthreads);
    (lo, hi)
}

/// Emits `tag_input(ptr, bytes)` — blesses a staged input region, yielding
/// a pointer usable under every scheme.
pub fn emit_tag_input(
    fb: &mut FuncBuilder<'_>,
    ptr: impl Into<Operand>,
    bytes: impl Into<Operand>,
) -> Reg {
    fb.intr_ptr("tag_input", &[ptr.into(), bytes.into()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgxs_mir::{ModuleBuilder, Vm, VmConfig};
    use sgxs_rt::{install_base, AllocOpts};
    use sgxs_sim::{MachineConfig, Mode, Preset};

    #[test]
    fn size_ladder_doubles() {
        let p = |s| Params {
            size: s,
            threads: 1,
            scale: 32,
            seed: 1,
        };
        let xs = p(SizeClass::XS).ws_bytes(256 << 20);
        let xl = p(SizeClass::XL).ws_bytes(256 << 20);
        assert_eq!(xl / xs, 16);
        assert_eq!(xl, (256 << 20) / 32);
    }

    #[test]
    fn xorshift_sequence_is_deterministic_and_varied() {
        let mut mb = ModuleBuilder::new("t");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            let st = fb.local(Ty::I64);
            fb.set(st, 0x9E3779B97F4A7C15u64);
            let a = emit_xorshift(fb, st);
            let b = emit_xorshift(fb, st);
            let ne = fb.cmp(sgxs_mir::CmpOp::Ne, a, b);
            fb.ret(Some(ne.into()));
        });
        let m = mb.finish();
        let mut vm = Vm::new(
            &m,
            VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Native)),
        );
        assert_eq!(vm.run("main", &[]).expect_ok(), 1);
    }

    #[test]
    fn fork_join_partitions_cover_range() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let shared = fb.param(2);
                let (lo, hi) = emit_partition(fb, 100u64, tid, nt);
                // Sum my partition's indices into shared[tid].
                let acc = fb.local(Ty::I64);
                fb.set(acc, 0u64);
                fb.count_loop(lo, hi, |fb, i| {
                    let a = fb.get(acc);
                    let s = fb.add(a, i);
                    fb.set(acc, s);
                });
                let slot = fb.gep(shared, tid, 8, 0);
                let v = fb.get(acc);
                fb.store(Ty::I64, slot, v);
                fb.ret(Some(0u64.into()));
            },
        );
        mb.func("main", &[Ty::I64], Some(Ty::I64), |fb| {
            let nt = fb.param(0);
            let buf = fb.intr_ptr("malloc", &[Operand::Imm(64)]);
            fork_join(fb, worker, nt, buf);
            let total = fb.local(Ty::I64);
            fb.set(total, 0u64);
            fb.count_loop(0u64, nt, |fb, i| {
                let slot = fb.gep(buf, i, 8, 0);
                let v = fb.load(Ty::I64, slot);
                let t = fb.get(total);
                let s = fb.add(t, v);
                fb.set(total, s);
            });
            let v = fb.get(total);
            fb.ret(Some(v.into()));
        });
        let m = mb.finish();
        for threads in [1u64, 3, 8] {
            let mut vm = Vm::new(
                &m,
                VmConfig::new(MachineConfig::preset(Preset::Tiny, Mode::Native)),
            );
            install_base(&mut vm, AllocOpts::default());
            assert_eq!(
                vm.run("main", &[threads]).expect_ok(),
                4950,
                "{threads} threads"
            );
        }
    }
}
