#![warn(missing_docs)]

//! Benchmark programs for the SGXBounds reproduction.
//!
//! Every program the paper evaluates is represented by an analogue built on
//! the mini-IR, reproducing its memory and pointer character (see
//! DESIGN.md's substitution table): the full Phoenix 2.0 suite, the 9
//! PARSEC 3.0 programs the paper runs, the 13 SPEC CPU2006 programs, and
//! the four case-study applications plus the RIPE security benchmark.

pub mod apps;
pub mod parsec;
pub mod phoenix;
pub mod simple;
pub mod spec;
pub mod util;

pub use util::{Params, SizeClass, Suite, Workload};

/// All Phoenix + PARSEC workloads (the Fig. 7 set).
pub fn phoenix_parsec() -> Vec<Box<dyn Workload>> {
    let mut v = phoenix::all();
    v.extend(parsec::all());
    v
}

/// Every non-application workload.
pub fn all_benchmarks() -> Vec<Box<dyn Workload>> {
    let mut v = phoenix_parsec();
    v.extend(spec::all());
    v
}

/// Looks up any workload (benchmarks, apps, and the `simple` smoke
/// workload) by name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    if name == "simple" {
        return Some(Box::new(simple::Simple));
    }
    all_benchmarks()
        .into_iter()
        .chain(apps::all())
        .find(|w| w.name() == name)
}
