//! `matrix_multiply`: strided (column-major) reads of a large matrix —
//! cache-unfriendly but page-sequential, so CPU-cache effects dominate and
//! EPC paging does not (paper §6.3 "Matrixmul", Table 3).
//!
//! The full O(n^3) product is intractable under interpretation, so only a
//! fixed band of output rows is computed; every output row still streams
//! the entire `B` matrix column-wise, which is the access pattern the
//! paper's analysis rests on.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Paper Table 3: matrixmul XL working set is 412 MB.
const PAPER_XL: u64 = 412 << 20;
/// Output rows computed (the band).
const ROWS: u64 = 4;

/// The matrix_multiply workload.
pub struct MatrixMultiply;

/// Matrix dimension for the given parameters.
pub fn dim(p: &Params) -> u64 {
    // B dominates the working set: n*n*8 bytes.
    let n = ((p.ws_bytes(PAPER_XL) / 8) as f64).sqrt() as u64;
    n.max(64)
}

impl Workload for MatrixMultiply {
    fn name(&self) -> &'static str {
        "matrix_multiply"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("matrix_multiply");

        // worker(tid, nt, desc): desc = [a, b, c, n]; computes row band
        // rows [tid-partition of ROWS].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let a = fb.load(Ty::Ptr, desc);
                let b_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let b = fb.load(Ty::Ptr, b_a);
                let c_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let c = fb.load(Ty::Ptr, c_a);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let n = fb.load(Ty::I64, n_a);
                let (lo, hi) = emit_partition(fb, ROWS, tid, nt);
                fb.count_loop(lo, hi, |fb, i| {
                    let arow = fb.mul(i, n);
                    fb.count_loop(0u64, n, |fb, j| {
                        let acc = fb.local(Ty::I64);
                        fb.set(acc, 0u64);
                        fb.count_loop(0u64, n, |fb, k| {
                            let ai = fb.add(arow, k);
                            let aa = fb.gep(a, ai, 8, 0);
                            let av = fb.load(Ty::I64, aa);
                            // Column access: B[k*n + j] — the stride.
                            let bk = fb.mul(k, n);
                            let bi = fb.add(bk, j);
                            let ba = fb.gep(b, bi, 8, 0);
                            let bv = fb.load(Ty::I64, ba);
                            let prod = fb.mul(av, bv);
                            let s0 = fb.get(acc);
                            let s1 = fb.add(s0, prod);
                            fb.set(acc, s1);
                        });
                        let ci = fb.add(arow, j);
                        let ca = fb.gep(c, ci, 8, 0);
                        let v = fb.get(acc);
                        fb.store(Ty::I64, ca, v);
                    });
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let a_raw = fb.param(0);
                let b_raw = fb.param(1);
                let n = fb.param(2);
                let nt = fb.param(3);
                let a_bytes = fb.mul(n, ROWS * 8);
                let a = emit_tag_input(fb, a_raw, a_bytes);
                let nn = fb.mul(n, n);
                let b_bytes = fb.mul(nn, 8u64);
                let b = emit_tag_input(fb, b_raw, b_bytes);
                let c_bytes = fb.mul(n, ROWS * 8);
                let c = fb.intr_ptr("malloc", &[c_bytes.into()]);
                let desc = fb.intr_ptr("malloc", &[32u64.into()]);
                fb.store(Ty::Ptr, desc, a);
                let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
                fb.store(Ty::Ptr, d8, b);
                let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
                fb.store(Ty::Ptr, d16, c);
                let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
                fb.store(Ty::I64, d24, n);
                fork_join(fb, worker, nt, desc);
                // Checksum over the output band.
                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                let total = fb.mul(n, ROWS);
                fb.count_loop(0u64, total, |fb, i| {
                    let ca = fb.gep(c, i, 8, 0);
                    let v = fb.load(Ty::I64, ca);
                    let x = fb.get(chk);
                    let s = fb.add(x, v);
                    fb.set(chk, s);
                });
                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = dim(p);
        let mut rng = p.rng();
        let mut a = Vec::with_capacity((ROWS * n * 8) as usize);
        for _ in 0..ROWS * n {
            a.extend_from_slice(&rng.gen_range(0u64..1024).to_le_bytes());
        }
        let mut b = Vec::with_capacity((n * n * 8) as usize);
        for _ in 0..n * n {
            b.extend_from_slice(&rng.gen_range(0u64..1024).to_le_bytes());
        }
        let a_addr = st.stage(vm, &a);
        let b_addr = st.stage(vm, &b);
        vec![a_addr as u64, b_addr as u64, n, p.threads as u64]
    }
}
