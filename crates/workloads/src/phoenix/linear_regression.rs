//! `linear_regression`: one sequential pass computing point sums.
//! Pointer-free and streaming — low overhead for every scheme.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 256 << 20;

/// The linear_regression workload.
pub struct LinearRegression;

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("linear_regression");

        // worker(tid, nt, desc): desc = [points, n, partials].
        // partials: per thread 5 sums (sx, sy, sxx, syy, sxy).
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let points = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let p_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let partials = fb.load(Ty::Ptr, p_a);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                let sx = fb.local(Ty::I64);
                let sy = fb.local(Ty::I64);
                let sxx = fb.local(Ty::I64);
                let syy = fb.local(Ty::I64);
                let sxy = fb.local(Ty::I64);
                for l in [sx, sy, sxx, syy, sxy] {
                    fb.set(l, 0u64);
                }
                fb.count_loop(lo, hi, |fb, i| {
                    let xa = fb.gep(points, i, 8, 0);
                    let xy = fb.load(Ty::I64, xa);
                    // Points are packed as two i32 lanes in one i64.
                    let x = fb.and(xy, 0xFFFF_FFFFu64);
                    let y = fb.lshr(xy, 32u64);
                    let v = fb.get(sx);
                    let s = fb.add(v, x);
                    fb.set(sx, s);
                    let v = fb.get(sy);
                    let s = fb.add(v, y);
                    fb.set(sy, s);
                    let xx = fb.mul(x, x);
                    let v = fb.get(sxx);
                    let s = fb.add(v, xx);
                    fb.set(sxx, s);
                    let yy = fb.mul(y, y);
                    let v = fb.get(syy);
                    let s = fb.add(v, yy);
                    fb.set(syy, s);
                    let xy2 = fb.mul(x, y);
                    let v = fb.get(sxy);
                    let s = fb.add(v, xy2);
                    fb.set(sxy, s);
                });
                let my = fb.gep(partials, tid, 40, 0);
                for (k, l) in [sx, sy, sxx, syy, sxy].into_iter().enumerate() {
                    let v = fb.get(l);
                    let slot = fb.gep_inbounds(my, 0u64, 1, (k * 8) as i64);
                    fb.store(Ty::I64, slot, v);
                }
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            let bytes = fb.mul(n, 8u64);
            let points = emit_tag_input(fb, raw, bytes);
            let pb = fb.mul(nt, 40u64);
            let partials = fb.intr_ptr("calloc", &[pb.into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, points);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, partials);
            fork_join(fb, worker, nt, desc);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let total = fb.mul(nt, 5u64);
            fb.count_loop(0u64, total, |fb, i| {
                let a = fb.gep(partials, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = p.ws_bytes(PAPER_XL) / 8;
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * 8) as usize);
        for _ in 0..n {
            let x = rng.gen_range(0u64..4096);
            let y = rng.gen_range(0u64..4096);
            data.extend_from_slice(&((y << 32) | x).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
