//! `pca`: covariance over an **array of row pointers** — the paper's
//! canonical pointer-intensive benchmark (§6.2: MPX reaches 6.3x because
//! every element access first loads a row pointer, multiplying instructions,
//! branches, and L1 traffic).

use crate::util::{emit_partition, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Paper §6.2: pca working set is 70 MB.
const PAPER_XL: u64 = 70 << 20;
/// Dimensions per row.
pub const DIMS: u64 = 8;

/// The pca workload.
pub struct Pca;

fn rows_for(p: &Params) -> u64 {
    (p.ws_bytes(PAPER_XL) / (DIMS * 8 + 8)).max(64)
}

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("pca");

        // worker(tid, nt, desc): desc = [rows_ptr_array, n, cov, means].
        // Each thread computes the covariance contributions of its row
        // range for all DIMS*(DIMS+1)/2 pairs, accumulating into its own
        // cov stripe.
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let rows = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let cov_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let cov = fb.load(Ty::Ptr, cov_a);
                let my_cov = fb.gep(cov, tid, (DIMS * DIMS * 8) as u32, 0);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                fb.count_loop(lo, hi, |fb, i| {
                    fb.count_loop(0u64, DIMS, |fb, a| {
                        // The row pointer is re-loaded per element, as the
                        // original's compiled inner loop does — this is what
                        // makes pca pointer-intensive (every data access is
                        // preceded by a pointer load, which costs MPX a
                        // bndldx table walk: 6.3x in the paper's Fig. 7).
                        let ra = fb.gep(rows, i, 8, 0);
                        let row = fb.load(Ty::Ptr, ra);
                        let xa = fb.gep(row, a, 8, 0);
                        let xv = fb.load(Ty::I64, xa);
                        fb.count_loop(0u64, DIMS, |fb, b| {
                            let ra2 = fb.gep(rows, i, 8, 0);
                            let row2 = fb.load(Ty::Ptr, ra2);
                            let ya = fb.gep(row2, b, 8, 0);
                            let yv = fb.load(Ty::I64, ya);
                            let prod = fb.mul(xv, yv);
                            let idx = fb.mul(a, DIMS);
                            let idx2 = fb.add(idx, b);
                            let ca = fb.gep(my_cov, idx2, 8, 0);
                            let cur = fb.load(Ty::I64, ca);
                            let s = fb.add(cur, prod);
                            fb.store(Ty::I64, ca, s);
                        });
                    });
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            // Build the array-of-row-pointers from the flat staged
            // input: each row is its own heap object.
            let rp_bytes = fb.mul(n, 8u64);
            let rows = fb.intr_ptr("malloc", &[rp_bytes.into()]);
            let flat_bytes = fb.mul(n, DIMS * 8);
            let flat = crate::util::emit_tag_input(fb, raw, flat_bytes);
            fb.count_loop(0u64, n, |fb, i| {
                let row = fb.intr_ptr("malloc", &[(DIMS * 8).into()]);
                let src = fb.gep(flat, i, (DIMS * 8) as u32, 0);
                fb.intr_void("memcpy", &[row.into(), src.into(), (DIMS * 8).into()]);
                let slot = fb.gep(rows, i, 8, 0);
                fb.store(Ty::Ptr, slot, row);
            });
            let cov_bytes = fb.mul(nt, DIMS * DIMS * 8);
            let cov = fb.intr_ptr("calloc", &[cov_bytes.into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, rows);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, cov);
            fork_join(fb, worker, nt, desc);
            // Reduce to a checksum.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let cells = fb.mul(nt, DIMS * DIMS);
            fb.count_loop(0u64, cells, |fb, i| {
                let a = fb.gep(cov, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = rows_for(p);
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * DIMS * 8) as usize);
        for _ in 0..n * DIMS {
            data.extend_from_slice(&rng.gen_range(0u64..256).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
