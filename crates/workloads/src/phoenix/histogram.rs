//! `histogram`: bucket-count a byte image. Pointer-free, sequential —
//! near-zero overhead for every scheme in the paper (Fig. 7).

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Paper-scale XL working set.
const PAPER_XL: u64 = 256 << 20;

/// The histogram workload.
pub struct Histogram;

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("histogram");

        // worker(tid, nthreads, desc): desc = [input, len, bins].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let inp = fb.load(Ty::Ptr, desc);
                let len_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let len = fb.load(Ty::I64, len_a);
                let bins_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let bins = fb.load(Ty::Ptr, bins_a);
                let (lo, hi) = emit_partition(fb, len, tid, nt);
                let my_bins = fb.gep(bins, tid, 256 * 8, 0);
                fb.count_loop(lo, hi, |fb, i| {
                    let a = fb.gep(inp, i, 1, 0);
                    let b = fb.load(Ty::I8, a);
                    let slot = fb.gep(my_bins, b, 8, 0);
                    let c = fb.load(Ty::I64, slot);
                    let c2 = fb.add(c, 1u64);
                    fb.store(Ty::I64, slot, c2);
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let len = fb.param(1);
            let nt = fb.param(2);
            let inp = emit_tag_input(fb, raw, len);
            let bins_bytes = fb.mul(nt, 256 * 8u64);
            let bins = fb.intr_ptr("calloc", &[bins_bytes.into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, inp);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, len);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, bins);
            fork_join(fb, worker, nt, desc);
            // Merge: checksum = sum over bins of bin_index * count.
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            fb.count_loop(0u64, nt, |fb, t| {
                let tb = fb.gep(bins, t, 256 * 8, 0);
                fb.count_loop(0u64, 256u64, |fb, b| {
                    let slot = fb.gep(tb, b, 8, 0);
                    let c = fb.load(Ty::I64, slot);
                    let w = fb.mul(c, b);
                    let a = fb.get(acc);
                    let s = fb.add(a, w);
                    fb.set(acc, s);
                });
            });
            let v = fb.get(acc);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let len = p.ws_bytes(PAPER_XL);
        let mut data = vec![0u8; len as usize];
        p.rng().fill_bytes(&mut data);
        let addr = st.stage(vm, &data);
        vec![addr as u64, len, p.threads as u64]
    }
}
