//! Phoenix 2.0 benchmark analogues (paper §6.1: all 7 programs).
//!
//! Each kernel reproduces the *memory and pointer character* of its
//! namesake — the property the paper's overheads are functions of — at a
//! scaled working set:
//!
//! | program            | character                                   |
//! |--------------------|---------------------------------------------|
//! | histogram          | sequential byte scan, pointer-free          |
//! | kmeans             | iterative re-scan of the working set        |
//! | linear_regression  | single sequential scan, pointer-free        |
//! | matrix_multiply    | cache-unfriendly strided reads              |
//! | pca                | array-of-row-pointers (pointer-intensive)   |
//! | string_match       | byte scan with rare inner compares          |
//! | word_count         | chained hash table (pointer + alloc heavy)  |

pub mod histogram;
pub mod kmeans;
pub mod linear_regression;
pub mod matrix_multiply;
pub mod pca;
pub mod string_match;
pub mod word_count;

use crate::util::Workload;

/// All seven Phoenix workloads.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(histogram::Histogram),
        Box::new(kmeans::Kmeans),
        Box::new(linear_regression::LinearRegression),
        Box::new(matrix_multiply::MatrixMultiply),
        Box::new(pca::Pca),
        Box::new(string_match::StringMatch),
        Box::new(word_count::WordCount),
    ]
}
