//! `word_count`: tokenize text into a chained hash table — pointer- and
//! allocation-heavy (Fig. 7 shows MPX suffering here like on pca).

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
/// Hash buckets per thread-private table.
const BUCKETS: u64 = 4096;

/// The word_count workload.
pub struct WordCount;

impl Workload for WordCount {
    fn name(&self) -> &'static str {
        "word_count"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("word_count");

        // insert(table, key) -> 0; table is an array of BUCKETS node
        // pointers; node = [key 8][count 8][next 8].
        let insert = mb.func("wc_insert", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
            let table = fb.param(0);
            let key = fb.param(1);
            let h = fb.mul(key, 0x9E3779B97F4A7C15u64);
            let h2 = fb.lshr(h, 40u64);
            let b = fb.and(h2, BUCKETS - 1);
            let head = fb.gep(table, b, 8, 0);
            let cur = fb.local(Ty::Ptr);
            let first = fb.load(Ty::Ptr, head);
            fb.set(cur, first);
            // Walk the chain looking for the key.
            let walk = fb.block();
            let check = fb.block();
            let advance = fb.block();
            let found = fb.block();
            let miss = fb.block();
            let done = fb.block();
            fb.jmp(walk);

            fb.switch_to(walk);
            let c = fb.get(cur);
            let p = fb.and(c, 0xFFFF_FFFFu64); // NULL test on the ptr half.
            let nonnull = fb.cmp(CmpOp::Ne, p, 0u64);
            fb.br(nonnull, check, miss);

            fb.switch_to(check);
            let c = fb.get(cur);
            let k = fb.load(Ty::I64, c);
            let eq = fb.cmp(CmpOp::Eq, k, key);
            fb.br(eq, found, advance);

            fb.switch_to(advance);
            let c = fb.get(cur);
            let next_a = fb.gep_inbounds(c, 0u64, 1, 16);
            let next = fb.load(Ty::Ptr, next_a);
            fb.set(cur, next);
            fb.jmp(walk);

            fb.switch_to(found);
            let c = fb.get(cur);
            let cnt_a = fb.gep_inbounds(c, 0u64, 1, 8);
            let cnt = fb.load(Ty::I64, cnt_a);
            let cnt2 = fb.add(cnt, 1u64);
            fb.store(Ty::I64, cnt_a, cnt2);
            fb.jmp(done);

            fb.switch_to(miss);
            let node = fb.intr_ptr("malloc", &[Operand::Imm(24)]);
            fb.store(Ty::I64, node, key);
            let cnt_a = fb.gep_inbounds(node, 0u64, 1, 8);
            fb.store(Ty::I64, cnt_a, 1u64);
            let next_a = fb.gep_inbounds(node, 0u64, 1, 16);
            let old = fb.load(Ty::Ptr, head);
            fb.store(Ty::Ptr, next_a, old);
            fb.store(Ty::Ptr, head, node);
            fb.jmp(done);

            fb.switch_to(done);
            fb.ret(Some(0u64.into()));
        });

        // worker(tid, nt, desc): desc = [input, nwords, tables].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let inp = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let t_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let tables = fb.load(Ty::Ptr, t_a);
                let my_table_a = fb.gep(tables, tid, 8, 0);
                let my_table = fb.load(Ty::Ptr, my_table_a);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                fb.count_loop(lo, hi, |fb, i| {
                    // Words are pre-tokenized 8-byte stems.
                    let a = fb.gep(inp, i, 8, 0);
                    let w = fb.load(Ty::I64, a);
                    fb.call(insert, &[my_table.into(), w.into()]);
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            let bytes = fb.mul(n, 8u64);
            let inp = emit_tag_input(fb, raw, bytes);
            let tp_bytes = fb.mul(nt, 8u64);
            let tables = fb.intr_ptr("malloc", &[tp_bytes.into()]);
            fb.count_loop(0u64, nt, |fb, t| {
                let tbl = fb.intr_ptr("calloc", &[Operand::Imm(BUCKETS * 8), 1u64.into()]);
                let slot = fb.gep(tables, t, 8, 0);
                fb.store(Ty::Ptr, slot, tbl);
            });
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, inp);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, tables);
            fork_join(fb, worker, nt, desc);
            // Checksum: total distinct nodes and counts per table.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, nt, |fb, t| {
                let slot = fb.gep(tables, t, 8, 0);
                let tbl = fb.load(Ty::Ptr, slot);
                fb.count_loop(0u64, BUCKETS, |fb, b| {
                    let head = fb.gep(tbl, b, 8, 0);
                    let cur = fb.local(Ty::Ptr);
                    let first = fb.load(Ty::Ptr, head);
                    fb.set(cur, first);
                    let walk = fb.block();
                    let body = fb.block();
                    let out = fb.block();
                    fb.jmp(walk);
                    fb.switch_to(walk);
                    let c = fb.get(cur);
                    let p = fb.and(c, 0xFFFF_FFFFu64);
                    let nonnull = fb.cmp(CmpOp::Ne, p, 0u64);
                    fb.br(nonnull, body, out);
                    fb.switch_to(body);
                    let c = fb.get(cur);
                    let cnt_a = fb.gep_inbounds(c, 0u64, 1, 8);
                    let cnt = fb.load(Ty::I64, cnt_a);
                    let x = fb.get(chk);
                    let x2 = fb.add(x, cnt);
                    let x3 = fb.add(x2, 1u64 << 24);
                    fb.set(chk, x3);
                    let next_a = fb.gep_inbounds(c, 0u64, 1, 16);
                    let next = fb.load(Ty::Ptr, next_a);
                    fb.set(cur, next);
                    fb.jmp(walk);
                    fb.switch_to(out);
                });
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = p.ws_bytes(PAPER_XL) / 8;
        let mut rng = p.rng();
        // Zipf-ish vocabulary: 4096 distinct stems, geometric-ish bias.
        let mut data = Vec::with_capacity((n * 8) as usize);
        for _ in 0..n {
            let r: u64 = rng.gen_range(0..4096);
            let stem = (r * r) % 4096 + 1; // Bias toward small ids; never 0.
            data.extend_from_slice(&(0x574F_5244_0000_0000u64 | stem).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
