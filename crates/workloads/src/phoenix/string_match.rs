//! `string_match`: scan a text for a set of encrypted keys — a byte scan
//! with rare inner comparisons. Streaming and pointer-free.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 256 << 20;
/// The needle, 8 bytes matched as one word.
const NEEDLE: u64 = u64::from_le_bytes(*b"SGXBOUND");

/// The string_match workload.
pub struct StringMatch;

impl Workload for StringMatch {
    fn name(&self) -> &'static str {
        "string_match"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("string_match");

        // worker(tid, nt, desc): desc = [input, len, counts].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let inp = fb.load(Ty::Ptr, desc);
                let len_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let len = fb.load(Ty::I64, len_a);
                let cnt_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let counts = fb.load(Ty::Ptr, cnt_a);
                // Work in 8-byte steps; the last partial word is skipped.
                let words = fb.udiv(len, 8u64);
                let (lo, hi) = emit_partition(fb, words, tid, nt);
                let found = fb.local(Ty::I64);
                fb.set(found, 0u64);
                fb.count_loop(lo, hi, |fb, i| {
                    let a = fb.gep(inp, i, 8, 0);
                    let w = fb.load(Ty::I64, a);
                    let eq = fb.cmp(CmpOp::Eq, w, NEEDLE);
                    fb.if_then(eq, |fb| {
                        let f = fb.get(found);
                        let s = fb.add(f, 1u64);
                        fb.set(found, s);
                    });
                    // Cheap per-word "first byte" filter modelling the inner
                    // strcmp of the original: compare low byte too.
                    let b0 = fb.and(w, 0xFFu64);
                    let near = fb.cmp(CmpOp::Eq, b0, NEEDLE & 0xFF);
                    fb.if_then(near, |fb| {
                        let f = fb.get(found);
                        // Count near-misses in the high bits to keep the
                        // checksum sensitive.
                        let s = fb.add(f, 1u64 << 32);
                        fb.set(found, s);
                    });
                });
                let my = fb.gep(counts, tid, 8, 0);
                let f = fb.get(found);
                fb.store(Ty::I64, my, f);
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let len = fb.param(1);
            let nt = fb.param(2);
            let inp = emit_tag_input(fb, raw, len);
            let cb = fb.mul(nt, 8u64);
            let counts = fb.intr_ptr("calloc", &[cb.into(), 1u64.into()]);
            let desc = fb.intr_ptr("malloc", &[24u64.into()]);
            fb.store(Ty::Ptr, desc, inp);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, len);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, counts);
            fork_join(fb, worker, nt, desc);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, nt, |fb, i| {
                let a = fb.gep(counts, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let len = p.ws_bytes(PAPER_XL);
        let mut rng = p.rng();
        let mut data = vec![0u8; len as usize];
        rng.fill(&mut data[..]);
        // Plant some needles at word-aligned offsets.
        let words = len / 8;
        for _ in 0..(words / 4096).max(2) {
            let at = rng.gen_range(0..words) * 8;
            data[at as usize..at as usize + 8].copy_from_slice(&NEEDLE.to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, len, p.threads as u64]
    }
}
