//! `kmeans`: iterative clustering. Re-scans its whole working set every
//! iteration — the paper's canonical EPC-sensitivity benchmark (Fig. 8,
//! Table 3).
//!
//! As in Phoenix, points live behind an **array of point pointers**: every
//! point access first loads the pointer. That pointer array is what MPX
//! spills bounds for — its bounds tables roughly double the working set
//! (the paper's 68 MB -> 127 MB at size M), producing the Fig. 8 spike the
//! moment the inflated set stops fitting the EPC.

use crate::util::{emit_partition, emit_tag_input, fork_join, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

/// Paper Table 3: kmeans XL working set is 270 MB.
const PAPER_XL: u64 = 270 << 20;
/// Clusters.
const K: u64 = 8;
/// Lloyd iterations.
const ITERS: u64 = 3;

/// The kmeans workload.
pub struct Kmeans;

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("kmeans");

        // worker(tid, nthreads, desc): desc = [point_ptrs, n, centroids, acc].
        // acc layout: per thread, K * (sumx, sumy, count).
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let points = fb.load(Ty::Ptr, desc);
                let n_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let n = fb.load(Ty::I64, n_a);
                let c_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let centroids = fb.load(Ty::Ptr, c_a);
                let a_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let acc = fb.load(Ty::Ptr, a_a);
                let my_acc = fb.gep(acc, tid, (K * 24) as u32, 0);
                let (lo, hi) = emit_partition(fb, n, tid, nt);
                fb.count_loop(lo, hi, |fb, i| {
                    // Load the point pointer, then the coordinates.
                    let ppa = fb.gep(points, i, 8, 0);
                    let pp = fb.load(Ty::Ptr, ppa);
                    let px = fb.load(Ty::I64, pp);
                    let pa2 = fb.gep_inbounds(pp, 0u64, 1, 8);
                    let py = fb.load(Ty::I64, pa2);
                    // Find the nearest centroid.
                    let best = fb.local(Ty::I64);
                    let best_d = fb.local(Ty::I64);
                    fb.set(best, 0u64);
                    fb.set(best_d, u64::MAX >> 1);
                    fb.count_loop(0u64, K, |fb, c| {
                        let ca = fb.gep(centroids, c, 16, 0);
                        let cx = fb.load(Ty::I64, ca);
                        let ca2 = fb.gep(centroids, c, 16, 8);
                        let cy = fb.load(Ty::I64, ca2);
                        let dx = fb.sub(px, cx);
                        let dy = fb.sub(py, cy);
                        let dx2 = fb.mul(dx, dx);
                        let dy2 = fb.mul(dy, dy);
                        let d = fb.add(dx2, dy2);
                        let bd = fb.get(best_d);
                        let better = fb.cmp(CmpOp::ULt, d, bd);
                        fb.if_then(better, |fb| {
                            fb.set(best_d, d);
                            fb.set(best, c);
                        });
                    });
                    // Accumulate into my per-thread sums.
                    let b = fb.get(best);
                    let slot = fb.gep(my_acc, b, 24, 0);
                    let sx = fb.load(Ty::I64, slot);
                    let sx2 = fb.add(sx, px);
                    fb.store(Ty::I64, slot, sx2);
                    let slot_y = fb.gep(my_acc, b, 24, 8);
                    let sy = fb.load(Ty::I64, slot_y);
                    let sy2 = fb.add(sy, py);
                    fb.store(Ty::I64, slot_y, sy2);
                    let slot_c = fb.gep(my_acc, b, 24, 16);
                    let sc = fb.load(Ty::I64, slot_c);
                    let sc2 = fb.add(sc, 1u64);
                    fb.store(Ty::I64, slot_c, sc2);
                });
                fb.ret(Some(0u64.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let nt = fb.param(2);
            let bytes = fb.mul(n, 16u64);
            let flat = emit_tag_input(fb, raw, bytes);
            // Build the array of point pointers: each point is its own
            // heap object, as in Phoenix.
            let pb = fb.mul(n, 8u64);
            let points = fb.intr_ptr("malloc", &[pb.into()]);
            fb.count_loop(0u64, n, |fb, i| {
                let pt = fb.intr_ptr("malloc", &[Operand::Imm(16)]);
                let src = fb.gep(flat, i, 16, 0);
                let x = fb.load(Ty::I64, src);
                fb.store(Ty::I64, pt, x);
                let src2 = fb.gep(flat, i, 16, 8);
                let y = fb.load(Ty::I64, src2);
                let dst2 = fb.gep_inbounds(pt, 0u64, 1, 8);
                fb.store(Ty::I64, dst2, y);
                let slot = fb.gep(points, i, 8, 0);
                fb.store(Ty::Ptr, slot, pt);
            });
            let centroids = fb.intr_ptr("malloc", &[Operand::Imm(K * 16)]);
            // Init centroids from the first K points.
            fb.count_loop(0u64, K, |fb, c| {
                let src = fb.gep(flat, c, 16, 0);
                let x = fb.load(Ty::I64, src);
                let src2 = fb.gep(flat, c, 16, 8);
                let y = fb.load(Ty::I64, src2);
                let dst = fb.gep(centroids, c, 16, 0);
                fb.store(Ty::I64, dst, x);
                let dst2 = fb.gep(centroids, c, 16, 8);
                fb.store(Ty::I64, dst2, y);
            });
            let acc_bytes = fb.mul(nt, K * 24);
            let acc = fb.intr_ptr("malloc", &[acc_bytes.into()]);
            let desc = fb.intr_ptr("malloc", &[32u64.into()]);
            fb.store(Ty::Ptr, desc, points);
            let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
            fb.store(Ty::I64, d8, n);
            let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
            fb.store(Ty::Ptr, d16, centroids);
            let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
            fb.store(Ty::Ptr, d24, acc);

            fb.count_loop(0u64, ITERS, |fb, _iter| {
                // Zero the accumulators.
                let ab = fb.mul(nt, K * 24);
                fb.intr_void("memset", &[acc.into(), 0u64.into(), ab.into()]);
                fork_join(fb, worker, nt, desc);
                // Reduce per-thread sums and update centroids.
                fb.count_loop(0u64, K, |fb, c| {
                    let sx = fb.local(Ty::I64);
                    let sy = fb.local(Ty::I64);
                    let cnt = fb.local(Ty::I64);
                    fb.set(sx, 0u64);
                    fb.set(sy, 0u64);
                    fb.set(cnt, 0u64);
                    fb.count_loop(0u64, nt, |fb, t| {
                        let ta = fb.gep(acc, t, (K * 24) as u32, 0);
                        let slot = fb.gep(ta, c, 24, 0);
                        let x = fb.load(Ty::I64, slot);
                        let v = fb.get(sx);
                        let s = fb.add(v, x);
                        fb.set(sx, s);
                        let slot_y = fb.gep(ta, c, 24, 8);
                        let y = fb.load(Ty::I64, slot_y);
                        let v = fb.get(sy);
                        let s = fb.add(v, y);
                        fb.set(sy, s);
                        let slot_c = fb.gep(ta, c, 24, 16);
                        let k = fb.load(Ty::I64, slot_c);
                        let v = fb.get(cnt);
                        let s = fb.add(v, k);
                        fb.set(cnt, s);
                    });
                    let cn = fb.get(cnt);
                    let nonzero = fb.cmp(CmpOp::UGt, cn, 0u64);
                    fb.if_then(nonzero, |fb| {
                        let x = fb.get(sx);
                        let y = fb.get(sy);
                        let c_again = fb.get(cnt);
                        let mx = fb.udiv(x, c_again);
                        let my = fb.udiv(y, c_again);
                        let dst = fb.gep(centroids, c, 16, 0);
                        fb.store(Ty::I64, dst, mx);
                        let dst2 = fb.gep(centroids, c, 16, 8);
                        fb.store(Ty::I64, dst2, my);
                    });
                });
            });

            // Checksum: sum of final centroid coordinates.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, K * 2, |fb, i| {
                let a = fb.gep(centroids, i, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        // 8 B pointer slot + 32 B point chunk per point.
        let n = p.ws_bytes(PAPER_XL) / 40;
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * 16) as usize);
        for _ in 0..n {
            data.extend_from_slice(&rng.gen_range(0u64..1 << 20).to_le_bytes());
            data.extend_from_slice(&rng.gen_range(0u64..1 << 20).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
