//! `astar`: grid pathfinding with heap-allocated search nodes whose
//! pointers spread across bucket lists — one of the three SPEC programs
//! whose bounds tables exhaust enclave memory under MPX (Fig. 11).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

// Sized so the search-node spread reproduces astar's MPX bounds-table
// OOM (Fig. 11): ~4 bytes of BT per node byte exceeds the enclave.
const PAPER_XL: u64 = 1700 << 20;
/// Search node: [cell 8][g 8][next 8].
const NODE: u64 = 24;
/// Cost buckets for the open list.
const BUCKETS: u64 = 512;

/// The astar workload.
pub struct Astar;

impl Workload for Astar {
    fn name(&self) -> &'static str {
        "astar"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("astar");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let dim = fb.param(1);
            let _nt = fb.param(2);
            let cells = fb.mul(dim, dim);
            let grid = emit_tag_input(fb, raw, cells);
            // Dijkstra-ish bucket expansion: visit cells in waves,
            // allocating a node per visited cell and pushing it into a
            // cost bucket (pointer store).
            let visited = fb.intr_ptr("calloc", &[cells.into(), 1u64.into()]);
            let buckets = fb.intr_ptr("calloc", &[Operand::Imm(BUCKETS * 8), 1u64.into()]);
            let expanded = fb.local(Ty::I64);
            fb.set(expanded, 0u64);
            // Seed and frontier cursors kept in a work queue of cell
            // ids; a simple ring buffer on the heap.
            let qcap = fb.add(cells, 1u64);
            let qb = fb.mul(qcap, 8u64);
            let queue = fb.intr_ptr("malloc", &[qb.into()]);
            let qhead = fb.local(Ty::I64);
            let qtail = fb.local(Ty::I64);
            fb.set(qhead, 0u64);
            fb.set(qtail, 1u64);
            fb.store(Ty::I64, queue, 0u64); // Start at cell 0.
            fb.store(Ty::I8, visited, 1u64);

            let head_lt_tail = fb.block();
            let body = fb.block();
            let done = fb.block();
            fb.jmp(head_lt_tail);

            fb.switch_to(head_lt_tail);
            let h = fb.get(qhead);
            let t = fb.get(qtail);
            let more = fb.cmp(CmpOp::ULt, h, t);
            fb.br(more, body, done);

            fb.switch_to(body);
            let h = fb.get(qhead);
            let qa = fb.gep(queue, h, 8, 0);
            let cell = fb.load(Ty::I64, qa);
            let h2 = fb.add(h, 1u64);
            fb.set(qhead, h2);
            // Allocate the search node; push into its cost bucket.
            let node = fb.intr_ptr("malloc", &[Operand::Imm(NODE)]);
            fb.store(Ty::I64, node, cell);
            let ga = fb.gep_inbounds(node, 0u64, 1, 8);
            let e = fb.get(expanded);
            fb.store(Ty::I64, ga, e);
            let bidx = fb.and(cell, BUCKETS - 1);
            let bslot = fb.gep(buckets, bidx, 8, 0);
            let old = fb.load(Ty::Ptr, bslot);
            let na = fb.gep_inbounds(node, 0u64, 1, 16);
            fb.store(Ty::Ptr, na, old);
            fb.store(Ty::Ptr, bslot, node);
            let e2 = fb.add(e, 1u64);
            fb.set(expanded, e2);
            // Expand east and south neighbours if passable.
            for (scale, name) in [(1u64, "east"), (0u64, "south")] {
                let _ = name;
                let step = if scale == 1 {
                    Operand::Imm(1)
                } else {
                    dim.into()
                };
                let nb = fb.add(cell, step);
                let in_range = fb.cmp(CmpOp::ULt, nb, cells);
                fb.if_then(in_range, |fb| {
                    let va = fb.gep(visited, nb, 1, 0);
                    let seen = fb.load(Ty::I8, va);
                    let ga2 = fb.gep(grid, nb, 1, 0);
                    let wall = fb.load(Ty::I8, ga2);
                    let open = fb.cmp(CmpOp::Eq, wall, 0u64);
                    let fresh = fb.cmp(CmpOp::Eq, seen, 0u64);
                    let go = fb.and(open, fresh);
                    fb.if_then(go, |fb| {
                        fb.store(Ty::I8, va, 1u64);
                        let tl = fb.get(qtail);
                        let qa2 = fb.gep(queue, tl, 8, 0);
                        fb.store(Ty::I64, qa2, nb);
                        let tl2 = fb.add(tl, 1u64);
                        fb.set(qtail, tl2);
                    });
                });
            }
            fb.jmp(head_lt_tail);

            fb.switch_to(done);
            let v = fb.get(expanded);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        // Node allocations dominate the working set: ~NODE bytes per open
        // cell; grid sized so most cells are visited.
        let cells = (p.ws_bytes(PAPER_XL) / (NODE + 2)).max(256);
        let dim = (cells as f64).sqrt() as u64;
        let mut rng = p.rng();
        let mut grid = vec![0u8; (dim * dim) as usize];
        for g in grid.iter_mut() {
            *g = if rng.gen_bool(0.12) { 1 } else { 0 };
        }
        grid[0] = 0;
        let addr = st.stage(vm, &grid);
        vec![addr as u64, dim, p.threads as u64]
    }
}
