//! `milc`: lattice QCD — 3x3 matrix products over a large lattice array,
//! FP-dense sequential sweeps.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CastKind, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 256 << 20;
/// f64s per site (a 3x3 real matrix).
const SITE: u64 = 9;

/// The milc workload.
pub struct Milc;

impl Workload for Milc {
    fn name(&self) -> &'static str {
        "milc"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("milc");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let sites = fb.param(1);
            let _nt = fb.param(2);
            let bytes = fb.mul(sites, SITE * 8);
            let lat = emit_tag_input(fb, raw, bytes);
            let acc_slot = fb.slot("acc", 9 * 8);
            let accp = fb.slot_addr(acc_slot);
            for k in 0..9 {
                let a = fb.gep_inbounds(accp, 0u64, 1, k * 8);
                fb.store(Ty::F64, a, fb.fconst(0.0));
            }
            let interior = fb.sub(sites, 1u64);
            fb.count_loop(0u64, interior, |fb, s| {
                let m1 = fb.gep(lat, s, (SITE * 8) as u32, 0);
                let next = fb.add(s, 1u64);
                let m2 = fb.gep(lat, next, (SITE * 8) as u32, 0);
                // acc += m1 * m2 (3x3 real product), unrolled.
                for i in 0..3i64 {
                    for j in 0..3i64 {
                        let mut terms = Vec::new();
                        for k in 0..3i64 {
                            let aa = fb.gep_inbounds(m1, 0u64, 1, (i * 3 + k) * 8);
                            let av = fb.load(Ty::F64, aa);
                            let ba = fb.gep_inbounds(m2, 0u64, 1, (k * 3 + j) * 8);
                            let bv = fb.load(Ty::F64, ba);
                            terms.push(fb.fmul(av, bv));
                        }
                        let s01 = fb.fadd(terms[0], terms[1]);
                        let sum = fb.fadd(s01, terms[2]);
                        let ca = fb.gep_inbounds(accp, 0u64, 1, (i * 3 + j) * 8);
                        let cv = fb.load(Ty::F64, ca);
                        // Keep bounded: acc = acc * 0.5 + sum * 1e-6.
                        let half = fb.fmul(cv, fb.fconst(0.5));
                        let scaled = fb.fmul(sum, fb.fconst(1e-6));
                        let nv = fb.fadd(half, scaled);
                        fb.store(Ty::F64, ca, nv);
                    }
                }
            });
            // Checksum.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            for k in 0..9 {
                let a = fb.gep_inbounds(accp, 0u64, 1, k * 8);
                let v = fb.load(Ty::F64, a);
                let scaled = fb.fmul(v, fb.fconst(1000.0));
                let iv = fb.cast(CastKind::FToSi, scaled);
                let c = fb.get(chk);
                let s = fb.add(c, iv);
                fb.set(chk, s);
            }
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let sites = (p.ws_bytes(PAPER_XL) / (SITE * 8) / 4).max(64);
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((sites * SITE * 8) as usize);
        for _ in 0..sites * SITE {
            data.extend_from_slice(&rng.gen_range(-1.0f64..1.0).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, sites, p.threads as u64]
    }
}
