//! `mcf`: network-simplex style pointer chasing over a large node/arc
//! graph. The paper's poster child for ASan's EPC collapse (Fig. 11: ASan
//! 2.4x from 3,400x more page faults, SGXBounds 1%).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

// SPEC ref mcf peaks around 1.7 GB resident — the largest SPEC working
// set and an MPX bounds-table OOM case in the paper (Fig. 11).
const PAPER_XL: u64 = 1740 << 20;
/// Node record: [potential 8][next ptr 8][arc cost 8][pad 8].
const NODE: u64 = 32;
/// Chase steps per pass.
const PASSES: u64 = 6;

/// The mcf workload.
pub struct Mcf;

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("mcf");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let _nt = fb.param(2);
            let bytes = fb.mul(n, 8u64);
            let perm = emit_tag_input(fb, raw, bytes);
            // Allocate the node pool and thread a random cycle through
            // it using the staged permutation.
            let pool_bytes = fb.mul(n, NODE);
            let pool = fb.intr_ptr("malloc", &[pool_bytes.into()]);
            fb.count_loop(0u64, n, |fb, i| {
                let node = fb.gep(pool, i, NODE as u32, 0);
                fb.store(Ty::I64, node, i);
                let pa = fb.gep(perm, i, 8, 0);
                let succ = fb.load(Ty::I64, pa);
                let succ_node = fb.gep(pool, succ, NODE as u32, 0);
                let na = fb.gep_inbounds(node, 0u64, 1, 8);
                fb.store(Ty::Ptr, na, succ_node);
                let ca = fb.gep_inbounds(node, 0u64, 1, 16);
                let cost = fb.and(succ, 0xFFu64);
                fb.store(Ty::I64, ca, cost);
            });
            // Chase: update potentials along the cycle (random access
            // across the whole pool, EPC-hostile).
            let total = fb.local(Ty::I64);
            fb.set(total, 0u64);
            let cur = fb.local(Ty::Ptr);
            fb.count_loop(0u64, PASSES, |fb, _| {
                let first = fb.gep(pool, 0u64, NODE as u32, 0);
                fb.set(cur, first);
                fb.count_loop(0u64, n, |fb, _| {
                    let c = fb.get(cur);
                    let pot = fb.load(Ty::I64, c);
                    let ca = fb.gep_inbounds(c, 0u64, 1, 16);
                    let cost = fb.load(Ty::I64, ca);
                    let newpot = fb.add(pot, cost);
                    let red = fb.and(newpot, 0xFFFF_FFFFu64);
                    fb.store(Ty::I64, c, red);
                    let t = fb.get(total);
                    let neg = fb.cmp(CmpOp::UGt, cost, 128u64);
                    let t2 = fb.add(t, neg);
                    fb.set(total, t2);
                    let na = fb.gep_inbounds(c, 0u64, 1, 8);
                    let next = fb.load(Ty::Ptr, na);
                    fb.set(cur, next);
                });
            });
            let v = fb.get(total);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / NODE).max(64);
        // A random single-cycle permutation (Sattolo's algorithm) so the
        // chase visits every node in random order.
        let mut rng = p.rng();
        let mut idx: Vec<u64> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..i);
            idx.swap(i, j);
        }
        // succ[idx[k]] = idx[k+1].
        let mut succ = vec![0u64; n as usize];
        for k in 0..n as usize {
            succ[idx[k] as usize] = idx[(k + 1) % n as usize];
        }
        let mut data = Vec::with_capacity((n * 8) as usize);
        for s in &succ {
            data.extend_from_slice(&s.to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
