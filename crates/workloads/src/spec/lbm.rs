//! `lbm`: lattice-Boltzmann streaming — two large arrays, strictly
//! sequential sweeps (memory-bandwidth bound).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 400 << 20;
/// Timesteps.
const STEPS: u64 = 2;

/// The lbm workload.
pub struct Lbm;

impl Workload for Lbm {
    fn name(&self) -> &'static str {
        "lbm"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("lbm");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let cells = fb.param(1);
            let _nt = fb.param(2);
            let bytes = fb.mul(cells, 8u64);
            let src0 = emit_tag_input(fb, raw, bytes);
            let dst0 = fb.intr_ptr("malloc", &[bytes.into()]);
            let src = fb.local(Ty::Ptr);
            let dst = fb.local(Ty::Ptr);
            fb.set(src, src0);
            fb.set(dst, dst0);
            let interior = fb.sub(cells, 2u64);
            fb.count_loop(0u64, STEPS, |fb, _| {
                let s = fb.get(src);
                let d = fb.get(dst);
                fb.count_loop(0u64, interior, |fb, i| {
                    // Stream + collide: 3-point stencil with relaxation.
                    let a0 = fb.gep(s, i, 8, 0);
                    let v0 = fb.load(Ty::I64, a0);
                    let a1 = fb.gep(s, i, 8, 8);
                    let v1 = fb.load(Ty::I64, a1);
                    let a2 = fb.gep(s, i, 8, 16);
                    let v2 = fb.load(Ty::I64, a2);
                    let sum = fb.add(v0, v2);
                    let avg = fb.lshr(sum, 1u64);
                    let diff = fb.sub(avg, v1);
                    let relax = fb.lshr(diff, 2u64);
                    let nv = fb.add(v1, relax);
                    let o = fb.gep(d, i, 8, 8);
                    fb.store(Ty::I64, o, nv);
                });
                let t = fb.get(src);
                let t2 = fb.get(dst);
                fb.set(src, t2);
                fb.set(dst, t);
            });
            // Checksum a stripe.
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let s = fb.get(src);
            let samples = fb.udiv(cells, 64u64);
            fb.count_loop(0u64, samples, |fb, i| {
                let idx = fb.mul(i, 64u64);
                let a = fb.gep(s, idx, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s2 = fb.add(c, v);
                fb.set(chk, s2);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let cells = (p.ws_bytes(PAPER_XL) / 16).max(512);
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((cells * 8) as usize);
        for _ in 0..cells {
            data.extend_from_slice(&rng.gen_range(0u64..1 << 16).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, cells, p.threads as u64]
    }
}
