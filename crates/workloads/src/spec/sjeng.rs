//! `sjeng`: chess-style recursive game-tree search with a transposition
//! table — small working set, integer-dense, branchy.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

/// Board bytes (8x8 of piece codes, padded).
const BOARD: u64 = 64;
/// Transposition table entries.
const TT: u64 = 1 << 14;
/// Root searches at paper XL.
const PAPER_XL_ROOTS: u64 = 1 << 15;

/// The sjeng workload.
pub struct Sjeng;

impl Workload for Sjeng {
    fn name(&self) -> &'static str {
        "sjeng"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("sjeng");

        // search(board, tt, depth, hash) -> score.
        let search = mb.declare(
            "search",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
        );
        mb.define(search, |fb| {
            let board = fb.param(0);
            let tt = fb.param(1);
            let depth = fb.param(2);
            let hash = fb.param(3);
            // Transposition-table probe: entry = [key 8][score 8].
            let slot = fb.and(hash, TT - 1);
            let ea = fb.gep(tt, slot, 16, 0);
            let key = fb.load(Ty::I64, ea);
            let hit = fb.cmp(CmpOp::Eq, key, hash);
            let out = fb.local(Ty::I64);
            fb.set(out, 0u64);
            let hit_bb = fb.block();
            let miss_bb = fb.block();
            let done = fb.block();
            fb.br(hit, hit_bb, miss_bb);

            fb.switch_to(hit_bb);
            let sa = fb.gep(tt, slot, 16, 8);
            let cached = fb.load(Ty::I64, sa);
            fb.set(out, cached);
            fb.jmp(done);

            fb.switch_to(miss_bb);
            // Evaluate: material sum with square weights.
            let score = fb.local(Ty::I64);
            fb.set(score, 0u64);
            fb.count_loop(0u64, BOARD, |fb, sq| {
                let a = fb.gep(board, sq, 1, 0);
                let piece = fb.load(Ty::I8, a);
                let w = fb.add(sq, 1u64);
                let v = fb.mul(piece, w);
                let s = fb.get(score);
                let s2 = fb.add(s, v);
                fb.set(score, s2);
            });
            let leaf = fb.cmp(CmpOp::Eq, depth, 0u64);
            fb.if_else(
                leaf,
                |fb| {
                    let s = fb.get(score);
                    fb.set(out, s);
                },
                |fb| {
                    // Two candidate moves on a stack copy.
                    let cp = fb.slot("child", BOARD as u32);
                    let cpp = fb.slot_addr(cp);
                    fb.intr_void("memcpy", &[cpp.into(), board.into(), BOARD.into()]);
                    let s = fb.get(score);
                    let from = fb.and(s, BOARD - 1);
                    let fa = fb.gep(cpp, from, 1, 0);
                    let pc = fb.load(Ty::I8, fa);
                    fb.store(Ty::I8, fa, 0u64);
                    let to = fb.lshr(s, 6u64);
                    let to2 = fb.and(to, BOARD - 1);
                    let ta = fb.gep(cpp, to2, 1, 0);
                    fb.store(Ty::I8, ta, pc);
                    let d2 = fb.sub(depth, 1u64);
                    let h1 = fb.mul(hash, 0x100000001B3u64);
                    let h2 = fb.xor(h1, s);
                    let r1 = fb
                        .call(
                            search,
                            &[cpp.into(), fb.param(1).into(), d2.into(), h2.into()],
                        )
                        .unwrap();
                    let h3 = fb.add(h2, 0x9E3779B9u64);
                    let r2 = fb
                        .call(
                            search,
                            &[cpp.into(), fb.param(1).into(), d2.into(), h3.into()],
                        )
                        .unwrap();
                    let gt = fb.cmp(CmpOp::UGt, r1, r2);
                    let best = fb.select(gt, r1, r2);
                    fb.set(out, best);
                },
            );
            // Store into the TT.
            let v = fb.get(out);
            fb.store(Ty::I64, ea, hash);
            let sa2 = fb.gep(tt, slot, 16, 8);
            fb.store(Ty::I64, sa2, v);
            fb.jmp(done);

            fb.switch_to(done);
            let v = fb.get(out);
            fb.ret(Some(v.into()));
        });

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let roots = fb.param(1);
            let _nt = fb.param(2);
            let board = emit_tag_input(fb, raw, BOARD);
            let tt = fb.intr_ptr("calloc", &[Operand::Imm(TT * 16), 1u64.into()]);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, roots, |fb, r| {
                let d = fb.and(r, 3u64);
                let h = fb.mul(r, 0x9E3779B97F4A7C15u64);
                let s = fb
                    .call(search, &[board.into(), tt.into(), d.into(), h.into()])
                    .unwrap();
                let c = fb.get(chk);
                let c2 = fb.add(c, s);
                fb.set(chk, c2);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let roots = (PAPER_XL_ROOTS * p.size.factor() / 16 / p.scale).max(16);
        let mut rng = p.rng();
        let mut board = vec![0u8; BOARD as usize];
        for c in board.iter_mut() {
            *c = if rng.gen_bool(0.4) {
                rng.gen_range(1u8..7)
            } else {
                0
            };
        }
        let addr = st.stage(vm, &board);
        vec![addr as u64, roots, p.threads as u64]
    }
}
