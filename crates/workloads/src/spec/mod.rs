//! SPEC CPU2006 analogues — the 13 programs the paper evaluates (§6.7;
//! perlbench, gcc, dealII, omnetpp, povray, and soplex are excluded there
//! too). All single-threaded, like SPEC itself.
//!
//! Memory characters, following the originals:
//!
//! | program    | character                                            |
//! |------------|------------------------------------------------------|
//! | astar      | grid search, node pointers spread over the heap      |
//! | bzip2      | buffer transforms (RLE + move-to-front)               |
//! | gobmk      | small-WS board evaluation, branchy                    |
//! | h264ref    | block motion estimation                               |
//! | hmmer      | Viterbi dynamic programming rows                      |
//! | lbm        | large-array lattice streaming                         |
//! | libquantum | amplitude-array bit kernels                           |
//! | mcf        | pointer-chasing network simplex (EPC thrashing)      |
//! | milc       | small-matrix lattice arithmetic                       |
//! | namd       | particle pairs through neighbour index               |
//! | sjeng      | recursive game-tree search                            |
//! | sphinx3    | GMM scoring sweeps                                    |
//! | xalancbmk  | DOM-tree build + traversal (pointer-dense)           |

pub mod astar;
pub mod bzip2;
pub mod gobmk;
pub mod h264ref;
pub mod hmmer;
pub mod lbm;
pub mod libquantum;
pub mod mcf;
pub mod milc;
pub mod namd;
pub mod sjeng;
pub mod sphinx3;
pub mod xalancbmk;

use crate::util::Workload;

/// The thirteen SPEC workloads.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(astar::Astar),
        Box::new(bzip2::Bzip2),
        Box::new(gobmk::Gobmk),
        Box::new(h264ref::H264ref),
        Box::new(hmmer::Hmmer),
        Box::new(lbm::Lbm),
        Box::new(libquantum::Libquantum),
        Box::new(mcf::Mcf),
        Box::new(milc::Milc),
        Box::new(namd::Namd),
        Box::new(sjeng::Sjeng),
        Box::new(sphinx3::Sphinx3),
        Box::new(xalancbmk::Xalancbmk),
    ]
}
