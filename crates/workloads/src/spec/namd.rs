//! `namd`: molecular-dynamics pair interactions through a neighbour index —
//! FP kernels with indexed gathers.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CastKind, CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 128 << 20;
/// Neighbours per particle.
const NEIGH: u64 = 8;

/// The namd workload.
pub struct Namd;

impl Workload for Namd {
    fn name(&self) -> &'static str {
        "namd"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("namd");
        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let pos_raw = fb.param(0);
                let idx_raw = fb.param(1);
                let n = fb.param(2);
                let _nt = fb.param(3);
                let pos_bytes = fb.mul(n, 24u64);
                let pos = emit_tag_input(fb, pos_raw, pos_bytes);
                let idx_bytes = fb.mul(n, NEIGH * 8);
                let index = emit_tag_input(fb, idx_raw, idx_bytes);
                let energy = fb.local(Ty::I64);
                fb.set(energy, 0u64);
                fb.count_loop(0u64, n, |fb, i| {
                    let pa = fb.gep(pos, i, 24, 0);
                    let x = fb.load(Ty::F64, pa);
                    let pya = fb.gep(pos, i, 24, 8);
                    let y = fb.load(Ty::F64, pya);
                    let pza = fb.gep(pos, i, 24, 16);
                    let z = fb.load(Ty::F64, pza);
                    let row = fb.gep(index, i, (NEIGH * 8) as u32, 0);
                    fb.count_loop(0u64, NEIGH, |fb, k| {
                        let na = fb.gep(row, k, 8, 0);
                        let j = fb.load(Ty::I64, na);
                        let qa = fb.gep(pos, j, 24, 0);
                        let xj = fb.load(Ty::F64, qa);
                        let qya = fb.gep(pos, j, 24, 8);
                        let yj = fb.load(Ty::F64, qya);
                        let qza = fb.gep(pos, j, 24, 16);
                        let zj = fb.load(Ty::F64, qza);
                        let dx = fb.fsub(x, xj);
                        let dy = fb.fsub(y, yj);
                        let dz = fb.fsub(z, zj);
                        let dx2 = fb.fmul(dx, dx);
                        let dy2 = fb.fmul(dy, dy);
                        let dz2 = fb.fmul(dz, dz);
                        let r2a = fb.fadd(dx2, dy2);
                        let r2 = fb.fadd(r2a, dz2);
                        let r2e = fb.fadd(r2, fb.fconst(0.01));
                        // Lennard-Jones-ish: 1/r2 - 1/r2^2 (cheap form).
                        let inv = fb.fdiv(fb.fconst(1.0), r2e);
                        let inv2 = fb.fmul(inv, inv);
                        let e = fb.fsub(inv, inv2);
                        let scaled = fb.fmul(e, fb.fconst(1000.0));
                        let ei = fb.cast(CastKind::FToSi, scaled);
                        let cur = fb.get(energy);
                        let s = fb.add(cur, ei);
                        fb.set(energy, s);
                    });
                });
                let e = fb.get(energy);
                let nonneg = fb.cmp(CmpOp::SGe, e, 0u64);
                let _ = nonneg;
                fb.intr_void("print_i64", &[e.into()]);
                fb.ret(Some(e.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / (24 + NEIGH * 8) / 2).max(64);
        let mut rng = p.rng();
        let mut pos = Vec::with_capacity((n * 24) as usize);
        for _ in 0..n * 3 {
            pos.extend_from_slice(&rng.gen_range(0.0f64..100.0).to_le_bytes());
        }
        let mut idx = Vec::with_capacity((n * NEIGH * 8) as usize);
        for i in 0..n {
            for k in 0..NEIGH {
                // Mostly-local neighbours: spatial locality like cell lists.
                let j = (i + k + rng.gen_range(0..16)) % n;
                idx.extend_from_slice(&j.to_le_bytes());
            }
        }
        let pa = st.stage(vm, &pos);
        let ia = st.stage(vm, &idx);
        vec![pa as u64, ia as u64, n, p.threads as u64]
    }
}
