//! `h264ref`: reference-encoder motion estimation, the single-threaded
//! sibling of the PARSEC `x264` kernel with a denser search.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
const BLK: u64 = 8;
const RADIUS: u64 = 3;

/// The h264ref workload.
pub struct H264ref;

impl Workload for H264ref {
    fn name(&self) -> &'static str {
        "h264ref"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("h264ref");
        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let cur_raw = fb.param(0);
                let ref_raw = fb.param(1);
                let dim = fb.param(2);
                let _nt = fb.param(3);
                let bytes = fb.mul(dim, dim);
                let cur = emit_tag_input(fb, cur_raw, bytes);
                let reff = emit_tag_input(fb, ref_raw, bytes);
                let blocks = fb.udiv(dim, BLK);
                let inner = fb.sub(blocks, 2 * RADIUS);
                // Sample every other block in each dimension to bound the
                // interpreted instruction count; the access pattern per
                // block is unchanged.
                let inner2 = fb.udiv(inner, 2u64);
                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                fb.count_loop(0u64, inner2, |fb, byr| {
                    let byr2 = fb.mul(byr, 2u64);
                    let by = fb.add(byr2, RADIUS);
                    fb.count_loop(0u64, inner2, |fb, bxr| {
                        let bxr2 = fb.mul(bxr, 2u64);
                        let bx = fb.add(bxr2, RADIUS);
                        let best = fb.local(Ty::I64);
                        fb.set(best, u64::MAX >> 1);
                        fb.count_loop(0u64, 2 * RADIUS + 1, |fb, dy| {
                            fb.count_loop(0u64, 2 * RADIUS + 1, |fb, dx| {
                                let sad = fb.local(Ty::I64);
                                fb.set(sad, 0u64);
                                fb.count_loop(0u64, BLK, |fb, row| {
                                    let cy = fb.mul(by, BLK);
                                    let cy2 = fb.add(cy, row);
                                    let coff = fb.mul(cy2, dim);
                                    let cx = fb.mul(bx, BLK);
                                    let cidx = fb.add(coff, cx);
                                    let ca = fb.gep(cur, cidx, 1, 0);
                                    let cw = fb.load(Ty::I64, ca);
                                    let ry0 = fb.add(by, dy);
                                    let ry = fb.sub(ry0, RADIUS);
                                    let ryb = fb.mul(ry, BLK);
                                    let ry2 = fb.add(ryb, row);
                                    let roff = fb.mul(ry2, dim);
                                    let rx0 = fb.add(bx, dx);
                                    let rx = fb.sub(rx0, RADIUS);
                                    let rxb = fb.mul(rx, BLK);
                                    let ridx = fb.add(roff, rxb);
                                    let ra = fb.gep(reff, ridx, 1, 0);
                                    let rw = fb.load(Ty::I64, ra);
                                    let x = fb.xor(cw, rw);
                                    let m = fb.and(x, 0x7F7F_7F7F_7F7F_7F7Fu64);
                                    let s0 = fb.get(sad);
                                    let s1 = fb.add(s0, m);
                                    fb.set(sad, s1);
                                });
                                let sv = fb.get(sad);
                                let bv = fb.get(best);
                                let better = fb.cmp(CmpOp::ULt, sv, bv);
                                fb.if_then(better, |fb| fb.set(best, sv));
                            });
                        });
                        let b = fb.get(best);
                        let folded = fb.and(b, 0xFFFFu64);
                        let c = fb.get(chk);
                        let c2 = fb.add(c, folded);
                        fb.set(chk, c2);
                    });
                });
                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let per_frame = p.ws_bytes(PAPER_XL) / 2;
        let dim = (((per_frame as f64).sqrt() as u64) / BLK * BLK).max(64);
        let mut rng = p.rng();
        let mut cur = vec![0u8; (dim * dim) as usize];
        rng.fill_bytes(&mut cur);
        let mut reff = cur.clone();
        reff.rotate_left((2 * dim + 5) as usize);
        let a = st.stage(vm, &cur);
        let b = st.stage(vm, &reff);
        vec![a as u64, b as u64, dim, p.threads as u64]
    }
}
