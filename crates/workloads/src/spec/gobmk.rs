//! `gobmk`: Go position evaluation — a small working set, deep branchy
//! recursion over board copies on the stack.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Board cells (19x19 rounded up).
const BOARD: u64 = 368;
/// Positions evaluated at XL paper scale.
const PAPER_XL_EVALS: u64 = 1 << 17;

/// The gobmk workload.
pub struct Gobmk;

impl Workload for Gobmk {
    fn name(&self) -> &'static str {
        "gobmk"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("gobmk");

        // evaluate(board, depth) -> score: copies the board to a stack
        // slot, plays a deterministic move, recurses.
        let eval = mb.declare("evaluate", &[Ty::Ptr, Ty::I64], Some(Ty::I64));
        mb.define(eval, |fb| {
            let board = fb.param(0);
            let depth = fb.param(1);
            let my = fb.slot("board_copy", BOARD as u32);
            let mp = fb.slot_addr(my);
            fb.intr_void("memcpy", &[mp.into(), board.into(), BOARD.into()]);
            // Score: liberties-ish = sum of empty neighbours east of stones.
            let score = fb.local(Ty::I64);
            fb.set(score, 0u64);
            fb.count_loop(0u64, BOARD - 1, |fb, i| {
                let a = fb.gep(mp, i, 1, 0);
                let v = fb.load(Ty::I8, a);
                let stone = fb.cmp(CmpOp::Ne, v, 0u64);
                fb.if_then(stone, |fb| {
                    let ea = fb.gep(mp, i, 1, 1);
                    let e = fb.load(Ty::I8, ea);
                    let free = fb.cmp(CmpOp::Eq, e, 0u64);
                    let s = fb.get(score);
                    let s2 = fb.add(s, free);
                    fb.set(score, s2);
                });
            });
            let leaf = fb.cmp(CmpOp::Eq, depth, 0u64);
            let out = fb.local(Ty::I64);
            fb.if_else(
                leaf,
                |fb| {
                    let s = fb.get(score);
                    fb.set(out, s);
                },
                |fb| {
                    // Play a move at a score-dependent cell, recurse twice
                    // (alpha-beta's two branches).
                    let s = fb.get(score);
                    let at = fb.urem(s, BOARD);
                    let ma = fb.gep(mp, at, 1, 0);
                    fb.store(Ty::I8, ma, 1u64);
                    let d2 = fb.sub(depth, 1u64);
                    let a = fb.call(eval, &[mp.into(), d2.into()]).unwrap();
                    let at2 = fb.add(at, 7u64);
                    let at3 = fb.urem(at2, BOARD);
                    let mb2 = fb.gep(mp, at3, 1, 0);
                    fb.store(Ty::I8, mb2, 2u64);
                    let b = fb.call(eval, &[mp.into(), d2.into()]).unwrap();
                    let gt = fb.cmp(CmpOp::UGt, a, b);
                    let best = fb.select(gt, a, b);
                    fb.set(out, best);
                },
            );
            let v = fb.get(out);
            fb.ret(Some(v.into()));
        });

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let evals = fb.param(1);
            let _nt = fb.param(2);
            let board = emit_tag_input(fb, raw, BOARD);
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            fb.count_loop(0u64, evals, |fb, i| {
                let d = fb.and(i, 3u64);
                let s = fb.call(eval, &[board.into(), d.into()]).unwrap();
                let c = fb.get(chk);
                let c2 = fb.add(c, s);
                fb.set(chk, c2);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let evals = (PAPER_XL_EVALS * p.size.factor() / 16 / p.scale).max(16);
        let mut rng = p.rng();
        let mut board = vec![0u8; BOARD as usize];
        for c in board.iter_mut() {
            *c = if rng.gen_bool(0.3) {
                rng.gen_range(1u8..3)
            } else {
                0
            };
        }
        let addr = st.stage(vm, &board);
        vec![addr as u64, evals, p.threads as u64]
    }
}
