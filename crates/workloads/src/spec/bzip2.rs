//! `bzip2`: buffer-transform compression passes (run-length encoding and a
//! move-to-front pass). Array-heavy, modest pointer use.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 160 << 20;

/// The bzip2 workload.
pub struct Bzip2;

impl Workload for Bzip2 {
    fn name(&self) -> &'static str {
        "bzip2"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("bzip2");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let len = fb.param(1);
            let _nt = fb.param(2);
            let inp = emit_tag_input(fb, raw, len);
            let out = fb.intr_ptr("malloc", &[len.into()]);
            // Pass 1: RLE into out; count emitted bytes.
            let emitted = fb.local(Ty::I64);
            let run = fb.local(Ty::I64);
            let prev = fb.local(Ty::I64);
            fb.set(emitted, 0u64);
            fb.set(run, 0u64);
            fb.set(prev, 256u64); // Sentinel.
            fb.count_loop(0u64, len, |fb, i| {
                let a = fb.gep(inp, i, 1, 0);
                let b = fb.load(Ty::I8, a);
                let pv = fb.get(prev);
                let same = fb.cmp(CmpOp::Eq, b, pv);
                let rv = fb.get(run);
                let short = fb.cmp(CmpOp::ULt, rv, 255u64);
                let cont = fb.and(same, short);
                fb.if_else(
                    cont,
                    |fb| {
                        let r = fb.get(run);
                        let r2 = fb.add(r, 1u64);
                        fb.set(run, r2);
                    },
                    |fb| {
                        let e = fb.get(emitted);
                        let oa = fb.gep(out, e, 1, 0);
                        fb.store(Ty::I8, oa, b);
                        let e2 = fb.add(e, 1u64);
                        fb.set(emitted, e2);
                        fb.set(run, 0u64);
                    },
                );
                fb.set(prev, b);
            });
            // Pass 2: move-to-front over the RLE output using a 256-byte
            // table in a fixed stack slot.
            let mtf = fb.slot("mtf", 256);
            let tp = fb.slot_addr(mtf);
            fb.count_loop(0u64, 256u64, |fb, i| {
                let a = fb.gep(tp, i, 1, 0);
                fb.store(Ty::I8, a, i);
            });
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let e = fb.get(emitted);
            fb.count_loop(0u64, e, |fb, i| {
                let oa = fb.gep(out, i, 1, 0);
                let b = fb.load(Ty::I8, oa);
                // Find b's rank in the table (linear scan, like the
                // byte-wise MTF of the original).
                let rank = fb.local(Ty::I64);
                fb.set(rank, 0u64);
                let find = fb.block();
                let step = fb.block();
                let found = fb.block();
                fb.jmp(find);
                fb.switch_to(find);
                let r = fb.get(rank);
                let ta = fb.gep(tp, r, 1, 0);
                let tv = fb.load(Ty::I8, ta);
                let eq = fb.cmp(CmpOp::Eq, tv, b);
                fb.br(eq, found, step);
                fb.switch_to(step);
                let r = fb.get(rank);
                let r2 = fb.add(r, 1u64);
                fb.set(rank, r2);
                fb.jmp(find);
                fb.switch_to(found);
                // Move to front: shift [0, rank) up by one.
                let r = fb.get(rank);
                let shift = fb.local(Ty::I64);
                fb.set(shift, r);
                let shl = fb.block();
                let shb = fb.block();
                let shdone = fb.block();
                fb.jmp(shl);
                fb.switch_to(shl);
                let s = fb.get(shift);
                let nz = fb.cmp(CmpOp::UGt, s, 0u64);
                fb.br(nz, shb, shdone);
                fb.switch_to(shb);
                let s = fb.get(shift);
                let sm1 = fb.sub(s, 1u64);
                let src = fb.gep(tp, sm1, 1, 0);
                let v = fb.load(Ty::I8, src);
                let dst = fb.gep(tp, s, 1, 0);
                fb.store(Ty::I8, dst, v);
                fb.set(shift, sm1);
                fb.jmp(shl);
                fb.switch_to(shdone);
                fb.store(Ty::I8, tp, b);
                let c = fb.get(chk);
                let r2 = fb.get(rank);
                let c2 = fb.add(c, r2);
                fb.set(chk, c2);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            let _ = Operand::Imm(0);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let len = p.ws_bytes(PAPER_XL) / 4;
        let mut rng = p.rng();
        // Compressible data: runs + a small alphabet (keeps MTF scans
        // short, as in real text).
        let mut data = Vec::with_capacity(len as usize);
        while (data.len() as u64) < len {
            let b = rng.gen_range(0u8..16);
            let run = rng.gen_range(1usize..10);
            data.extend(std::iter::repeat_n(b, run));
        }
        data.truncate(len as usize);
        let addr = st.stage(vm, &data);
        vec![addr as u64, len, p.threads as u64]
    }
}
