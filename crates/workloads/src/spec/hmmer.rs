//! `hmmer`: profile-HMM Viterbi — dynamic programming over per-row arrays,
//! sequential and compute-dense.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 64 << 20;
/// Profile length (DP row width).
const STATES: u64 = 128;

/// The hmmer workload.
pub struct Hmmer;

impl Workload for Hmmer {
    fn name(&self) -> &'static str {
        "hmmer"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("hmmer");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let seqlen = fb.param(1);
            let _nt = fb.param(2);
            let seq = emit_tag_input(fb, raw, seqlen);
            let row_bytes = STATES * 8;
            let prev = fb.intr_ptr("calloc", &[row_bytes.into(), 1u64.into()]);
            let cur = fb.intr_ptr("calloc", &[row_bytes.into(), 1u64.into()]);
            let rows = fb.local(Ty::Ptr);
            let rows2 = fb.local(Ty::Ptr);
            fb.set(rows, prev);
            fb.set(rows2, cur);
            let best = fb.local(Ty::I64);
            fb.set(best, 0u64);
            fb.count_loop(0u64, seqlen, |fb, i| {
                let sa = fb.gep(seq, i, 1, 0);
                let sym = fb.load(Ty::I8, sa);
                let p = fb.get(rows);
                let c = fb.get(rows2);
                fb.count_loop(0u64, STATES, |fb, s| {
                    // match = prev[s-1] + emit(sym, s); stay = prev[s].
                    let sm1 = fb.sub(s, 1u64);
                    let sm1c = fb.and(sm1, STATES - 1);
                    let ma = fb.gep(p, sm1c, 8, 0);
                    let m = fb.load(Ty::I64, ma);
                    let mix = fb.xor(sym, s);
                    let emit = fb.and(mix, 0x3Fu64);
                    let mscore = fb.add(m, emit);
                    let ia = fb.gep(p, s, 8, 0);
                    let stay = fb.load(Ty::I64, ia);
                    let stay2 = fb.add(stay, 1u64);
                    let gt = fb.cmp(CmpOp::UGt, mscore, stay2);
                    let v = fb.select(gt, mscore, stay2);
                    let decay = fb.lshr(v, 12u64);
                    let v2 = fb.sub(v, decay);
                    let ca = fb.gep(c, s, 8, 0);
                    fb.store(Ty::I64, ca, v2);
                    let b = fb.get(best);
                    let better = fb.cmp(CmpOp::UGt, v2, b);
                    fb.if_then(better, |fb| fb.set(best, v2));
                });
                // Swap rows.
                let t = fb.get(rows);
                let t2 = fb.get(rows2);
                fb.set(rows, t2);
                fb.set(rows2, t);
            });
            let v = fb.get(best);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        // Compute-bound: sequence length scales work; WS stays small like
        // the original (two DP rows + the sequence).
        let seqlen = (p.ws_bytes(PAPER_XL) / 512).max(256);
        let mut rng = p.rng();
        let mut seq = vec![0u8; seqlen as usize];
        for c in seq.iter_mut() {
            *c = rng.gen_range(0u8..20);
        }
        let addr = st.stage(vm, &seq);
        vec![addr as u64, seqlen, p.threads as u64]
    }
}
