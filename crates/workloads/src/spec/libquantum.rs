//! `libquantum`: quantum register simulation — gate sweeps over a large
//! amplitude array with bit-pattern indexing.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
/// Gates applied.
const GATES: u64 = 12;

/// The libquantum workload.
pub struct Libquantum;

impl Workload for Libquantum {
    fn name(&self) -> &'static str {
        "libquantum"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("libquantum");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1); // Amplitudes (power of two).
            let _nt = fb.param(2);
            let bytes = fb.mul(n, 8u64);
            let amps = emit_tag_input(fb, raw, bytes);
            fb.count_loop(0u64, GATES, |fb, g| {
                // CNOT-like: for each basis state with bit g set, swap
                // amplitude with the state with bit (g+1) toggled —
                // expressed as an in-place butterfly.
                let bit = fb.and(g, 15u64);
                let mask = fb.shl(1u64, bit);
                fb.count_loop(0u64, n, |fb, i| {
                    let hit = fb.and(i, mask);
                    let is_set = fb.cmp(CmpOp::Ne, hit, 0u64);
                    fb.if_then(is_set, |fb| {
                        let j = fb.xor(i, mask);
                        let ai = fb.gep(amps, i, 8, 0);
                        let vi = fb.load(Ty::I64, ai);
                        let aj = fb.gep(amps, j, 8, 0);
                        let vj = fb.load(Ty::I64, aj);
                        let s = fb.add(vi, vj);
                        let d = fb.sub(vi, vj);
                        let s2 = fb.lshr(s, 1u64);
                        let d2 = fb.lshr(d, 1u64);
                        fb.store(Ty::I64, ai, s2);
                        fb.store(Ty::I64, aj, d2);
                    });
                });
            });
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let samples = fb.udiv(n, 32u64);
            fb.count_loop(0u64, samples, |fb, i| {
                let idx = fb.mul(i, 32u64);
                let a = fb.gep(amps, idx, 8, 0);
                let v = fb.load(Ty::I64, a);
                let c = fb.get(chk);
                let s = fb.add(c, v);
                fb.set(chk, s);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / 8 / 3).next_power_of_two().max(512);
        let mut rng = p.rng();
        let mut data = Vec::with_capacity((n * 8) as usize);
        for _ in 0..n {
            data.extend_from_slice(&rng.gen_range(0u64..1 << 20).to_le_bytes());
        }
        let addr = st.stage(vm, &data);
        vec![addr as u64, n, p.threads as u64]
    }
}
