//! `xalancbmk`: XML transformation — builds a DOM-like tree of
//! heap-allocated nodes and repeatedly traverses it. Pointer-dense; one of
//! the three SPEC programs that OOM under MPX in the paper (Fig. 11).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

// Sized so the DOM-node spread reproduces xalancbmk's MPX OOM (Fig. 11).
const PAPER_XL: u64 = 1700 << 20;
/// Node: [tag 8][first_child 8][next_sibling 8][value 8].
const NODE: u64 = 32;
/// Traversal passes.
const PASSES: u64 = 2;

/// The xalancbmk workload.
pub struct Xalancbmk;

impl Workload for Xalancbmk {
    fn name(&self) -> &'static str {
        "xalancbmk"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("xalancbmk");

        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let n = fb.param(1);
            let _nt = fb.param(2);
            let tags_bytes = fb.mul(n, 1u64);
            let tags = emit_tag_input(fb, raw, tags_bytes);

            // Build the "DOM": nodes pushed as children of a rolling
            // window of parents, emulating nesting. Parent stack on
            // the heap.
            let root = fb.intr_ptr("calloc", &[Operand::Imm(NODE), 1u64.into()]);
            let stack = fb.intr_ptr("malloc", &[Operand::Imm(64 * 8)]);
            fb.store(Ty::Ptr, stack, root);
            let depth = fb.local(Ty::I64);
            fb.set(depth, 0u64);
            fb.count_loop(0u64, n, |fb, i| {
                let ta = fb.gep(tags, i, 1, 0);
                let tag = fb.load(Ty::I8, ta);
                let node = fb.intr_ptr("malloc", &[Operand::Imm(NODE)]);
                fb.store(Ty::I64, node, tag);
                let va = fb.gep_inbounds(node, 0u64, 1, 24);
                fb.store(Ty::I64, va, i);
                // Link as first child of the current parent.
                let d = fb.get(depth);
                let pa = fb.gep(stack, d, 8, 0);
                let parent = fb.load(Ty::Ptr, pa);
                let fc_a = fb.gep_inbounds(parent, 0u64, 1, 8);
                let old_child = fb.load(Ty::Ptr, fc_a);
                let sib_a = fb.gep_inbounds(node, 0u64, 1, 16);
                fb.store(Ty::Ptr, sib_a, old_child);
                fb.store(Ty::Ptr, fc_a, node);
                // Open/close elements based on the tag byte.
                let opens = fb.cmp(CmpOp::ULt, tag, 96u64);
                let can_push = fb.cmp(CmpOp::ULt, d, 62u64);
                let push = fb.and(opens, can_push);
                fb.if_else(
                    push,
                    |fb| {
                        let d = fb.get(depth);
                        let d2 = fb.add(d, 1u64);
                        let sa = fb.gep(stack, d2, 8, 0);
                        fb.store(Ty::Ptr, sa, node);
                        fb.set(depth, d2);
                    },
                    |fb| {
                        let d = fb.get(depth);
                        let can_pop = fb.cmp(CmpOp::UGt, d, 0u64);
                        fb.if_then(can_pop, |fb| {
                            let d = fb.get(depth);
                            let d2 = fb.sub(d, 1u64);
                            fb.set(depth, d2);
                        });
                    },
                );
            });

            // Transform: repeated DFS traversals accumulating a digest
            // (explicit stack; every step chases node pointers).
            let chk = fb.local(Ty::I64);
            fb.set(chk, 0u64);
            let work = fb.intr_ptr("malloc", &[(1u64 << 16).into()]);
            fb.count_loop(0u64, PASSES, |fb, _| {
                let top = fb.local(Ty::I64);
                fb.set(top, 1u64);
                fb.store(Ty::Ptr, work, root);
                let loop_bb = fb.block();
                let body = fb.block();
                let done = fb.block();
                fb.jmp(loop_bb);
                fb.switch_to(loop_bb);
                let t = fb.get(top);
                let more = fb.cmp(CmpOp::UGt, t, 0u64);
                fb.br(more, body, done);
                fb.switch_to(body);
                let t = fb.get(top);
                let t2 = fb.sub(t, 1u64);
                fb.set(top, t2);
                let wa = fb.gep(work, t2, 8, 0);
                let node = fb.load(Ty::Ptr, wa);
                let tag = fb.load(Ty::I64, node);
                let va = fb.gep_inbounds(node, 0u64, 1, 24);
                let val = fb.load(Ty::I64, va);
                let mix = fb.mul(tag, 31u64);
                let mix2 = fb.add(mix, val);
                let c = fb.get(chk);
                let c2 = fb.add(c, mix2);
                fb.set(chk, c2);
                // Push child and sibling (bounded by the work buffer).
                for off in [8i64, 16] {
                    let la = fb.gep_inbounds(node, 0u64, 1, off);
                    let link = fb.load(Ty::Ptr, la);
                    let lp = fb.and(link, 0xFFFF_FFFFu64);
                    let nonnull = fb.cmp(CmpOp::Ne, lp, 0u64);
                    let t3 = fb.get(top);
                    let fits = fb.cmp(CmpOp::ULt, t3, 8190u64);
                    let go = fb.and(nonnull, fits);
                    fb.if_then(go, |fb| {
                        let t4 = fb.get(top);
                        let sa = fb.gep(work, t4, 8, 0);
                        fb.store(Ty::Ptr, sa, link);
                        let t5 = fb.add(t4, 1u64);
                        fb.set(top, t5);
                    });
                }
                fb.jmp(loop_bb);
                fb.switch_to(done);
            });
            let v = fb.get(chk);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let n = (p.ws_bytes(PAPER_XL) / (NODE + 1)).max(64);
        let mut rng = p.rng();
        let mut tags = vec![0u8; n as usize];
        rng.fill(&mut tags[..]);
        let addr = st.stage(vm, &tags);
        vec![addr as u64, n, p.threads as u64]
    }
}
