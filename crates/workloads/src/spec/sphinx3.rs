//! `sphinx3`: acoustic scoring — GMM log-likelihood sweeps over frames,
//! FP-dense with medium working set.

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::Rng;
use sgxs_mir::{CastKind, CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

const PAPER_XL: u64 = 96 << 20;
/// Feature dimensions.
const DIMS: u64 = 8;
/// Gaussians in the mixture.
const GAUSS: u64 = 64;

/// The sphinx3 workload.
pub struct Sphinx3;

impl Workload for Sphinx3 {
    fn name(&self) -> &'static str {
        "sphinx3"
    }

    fn suite(&self) -> Suite {
        Suite::Spec
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("sphinx3");
        mb.func(
            "main",
            &[Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let frames_raw = fb.param(0);
                let model_raw = fb.param(1);
                let nframes = fb.param(2);
                let _nt = fb.param(3);
                let fbytes = fb.mul(nframes, DIMS * 8);
                let frames = emit_tag_input(fb, frames_raw, fbytes);
                let model = emit_tag_input(fb, model_raw, GAUSS * DIMS * 2 * 8);
                let chk = fb.local(Ty::I64);
                fb.set(chk, 0u64);
                fb.count_loop(0u64, nframes, |fb, f| {
                    let feat = fb.gep(frames, f, (DIMS * 8) as u32, 0);
                    let best = fb.local(Ty::I64);
                    fb.set(best, u64::MAX >> 1);
                    fb.count_loop(0u64, GAUSS, |fb, g| {
                        let mv = fb.gep(model, g, (DIMS * 2 * 8) as u32, 0);
                        let dist = fb.local(Ty::F64);
                        fb.set(dist, fb.fconst(0.0));
                        fb.count_loop(0u64, DIMS, |fb, d| {
                            let xa = fb.gep(feat, d, 8, 0);
                            let x = fb.load(Ty::F64, xa);
                            let ma = fb.gep(mv, d, 8, 0);
                            let mu = fb.load(Ty::F64, ma);
                            let va = fb.gep(mv, d, 8, (DIMS * 8) as i64);
                            let w = fb.load(Ty::F64, va);
                            let diff = fb.fsub(x, mu);
                            let sq = fb.fmul(diff, diff);
                            let weighted = fb.fmul(sq, w);
                            let cur = fb.get(dist);
                            let s = fb.fadd(cur, weighted);
                            fb.set(dist, s);
                        });
                        let dv = fb.get(dist);
                        let scaled = fb.fmul(dv, fb.fconst(64.0));
                        let di = fb.cast(CastKind::FToSi, scaled);
                        let bv = fb.get(best);
                        let better = fb.cmp(CmpOp::ULt, di, bv);
                        fb.if_then(better, |fb| fb.set(best, di));
                    });
                    let b = fb.get(best);
                    let c = fb.get(chk);
                    let c2 = fb.add(c, b);
                    fb.set(chk, c2);
                });
                let v = fb.get(chk);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let nframes = (p.ws_bytes(PAPER_XL) / (DIMS * 8) / 16).max(32);
        let mut rng = p.rng();
        let mut frames = Vec::with_capacity((nframes * DIMS * 8) as usize);
        for _ in 0..nframes * DIMS {
            frames.extend_from_slice(&rng.gen_range(-4.0f64..4.0).to_le_bytes());
        }
        let mut model = Vec::with_capacity((GAUSS * DIMS * 2 * 8) as usize);
        for _ in 0..GAUSS * DIMS {
            model.extend_from_slice(&rng.gen_range(-4.0f64..4.0).to_le_bytes());
        }
        for _ in 0..GAUSS * DIMS {
            model.extend_from_slice(&rng.gen_range(0.1f64..2.0).to_le_bytes());
        }
        let fa = st.stage(vm, &frames);
        let ma = st.stage(vm, &model);
        vec![fa as u64, ma as u64, nframes, p.threads as u64]
    }
}
