//! `apache` analogue: a threaded HTTP server with APR-style per-request
//! memory pools allocated page-granular via `mmap` — the allocation pattern
//! behind the paper's Apache findings (Fig. 13b): per-client megabyte-scale
//! pools bloat MPX's bounds metadata, and SGXBounds' +4 bytes push each
//! page-aligned pool request into one extra page (+50% memory, §7).
//!
//! Also hosts the Heartbleed reproduction (§7): a heartbeat handler that
//! trusts the attacker-supplied payload length.

use crate::util::{emit_tag_input, fork_join, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

/// Served page size at paper scale (the paper's Nginx page is 200 KB;
/// Apache serves the same content here).
const PAPER_PAGE: u64 = 100 << 10;
/// Request pool size (APR default page-multiple).
const REQ_POOL: u64 = 8192;

/// The apache workload.
#[derive(Default)]
pub struct Apache {
    /// Concurrent client threads override (Fig. 13 sweeps this).
    pub clients_override: Option<u32>,
    /// Requests override.
    pub requests_override: Option<u64>,
}

impl Workload for Apache {
    fn name(&self) -> &'static str {
        "apache"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, p: &Params) -> Module {
        let conn_pool_bytes = (1u64 << 20) / p.scale.max(1); // ~1 MB per client.
        let mut mb = ModuleBuilder::new("apache");

        // worker(tid, nt, desc): desc = [content, content_len, nreq, lock_cell].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let _tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let content = fb.load(Ty::Ptr, desc);
                let cl_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let content_len = fb.load(Ty::I64, cl_a);
                let nr_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let nreq_total = fb.load(Ty::I64, nr_a);
                let lock_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let my_reqs = fb.udiv(nreq_total, nt);
                // Per-connection pool: lives for the whole connection.
                let conn = fb.intr_ptr("mmap", &[Operand::Imm(conn_pool_bytes)]);
                let served = fb.local(Ty::I64);
                fb.set(served, 0u64);
                fb.count_loop(0u64, my_reqs, |fb, r| {
                    // Accept under the global mutex (Apache's accept lock).
                    fb.intr_void("mutex_lock", &[lock_a.into()]);
                    fb.intr_void("mutex_unlock", &[lock_a.into()]);
                    // Per-request APR pool: page-aligned mmap.
                    let pool = fb.intr_ptr("mmap", &[Operand::Imm(REQ_POOL)]);
                    // Write response headers into the pool.
                    fb.count_loop(0u64, 16u64, |fb, h| {
                        let a = fb.gep(pool, h, 8, 0);
                        let v = fb.add(h, 0x4854_5450u64); // "HTTP"-ish.
                        fb.store(Ty::I64, a, v);
                    });
                    // Record request metadata pointers in the connection
                    // pool (pointer stores -> MPX bndstx spread).
                    let slot_i = fb.urem(r, conn_pool_bytes / 8 - 1);
                    let slot = fb.gep(conn, slot_i, 8, 0);
                    fb.store(Ty::Ptr, slot, pool);
                    // Copy the page body through the pool buffer in 4 KB
                    // chunks (APR bucket brigade).
                    let buf = fb.gep_inbounds(pool, 0u64, 1, 256);
                    let chunks = fb.udiv(content_len, 4096u64);
                    fb.count_loop(0u64, chunks, |fb, c| {
                        let off = fb.mul(c, 4096u64);
                        let src = fb.gep(content, off, 1, 0);
                        fb.intr_void("memcpy", &[buf.into(), src.into(), 4096u64.into()]);
                    });
                    fb.intr_void("munmap", &[pool.into()]);
                    let s = fb.get(served);
                    let s2 = fb.add(s, 1u64);
                    fb.set(served, s2);
                });
                fb.intr_void("munmap", &[conn.into()]);
                let s = fb.get(served);
                fb.ret(Some(s.into()));
            },
        );

        mb.func(
            "main",
            &[Ty::Ptr, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let raw = fb.param(0);
                let content_len = fb.param(1);
                let nreq = fb.param(2);
                let clients = fb.param(3);
                let content = emit_tag_input(fb, raw, content_len);
                let desc = fb.intr_ptr("malloc", &[Operand::Imm(40)]);
                fb.store(Ty::Ptr, desc, content);
                let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
                fb.store(Ty::I64, d8, content_len);
                let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
                fb.store(Ty::I64, d16, nreq);
                fork_join(fb, worker, clients, desc);
                fb.intr_void("print_i64", &[nreq.into()]);
                fb.ret(Some(nreq.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let content_len = (PAPER_PAGE / p.scale.max(1)).max(4096) / 4096 * 4096;
        let mut content = vec![0u8; content_len as usize];
        p.rng().fill_bytes(&mut content);
        let addr = st.stage(vm, &content);
        let clients = self.clients_override.unwrap_or(p.threads).max(1) as u64;
        let nreq = self.requests_override.unwrap_or(clients * 96);
        vec![addr as u64, content_len, nreq, clients]
    }
}

/// Per-request server module (see [`crate::apps::server`]): apache flavour
/// — every request allocates an APR-style pool, copies the request bytes
/// through it (bucket-brigade double copy), and frees it on the way out.
/// The extra per-request allocation is the chaos tier's richest
/// allocator-fault surface; the trusted length on the second copy is the
/// Heartbleed-shaped overflow into the fixed buffer.
pub fn server_module() -> Module {
    use crate::apps::server::*;
    let mut mb = ModuleBuilder::new("apache_server");
    let state = mb.global_zeroed("state", STATE_SLOTS * 8);

    mb.func("setup", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
        let raw = fb.param(0);
        let len = fb.param(1);
        let inp = emit_tag_input(fb, raw, len);
        let buf = fb.intr_ptr("malloc", &[(REQ_BUF as u64).into()]);
        let can_a = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        let can_b = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        for can in [can_a, can_b] {
            fb.count_loop(0u64, CANARY_BYTES as u64, |fb, i| {
                let a = fb.gep(can, i, 1, 0);
                fb.store(Ty::I8, a, CANARY_PATTERN as u64);
            });
        }
        let st = fb.global_addr(state);
        for (slot, v) in [(0u32, inp), (8, buf), (16, can_a), (24, can_b)] {
            let a = fb.add(st, slot as u64);
            fb.store(Ty::I64, a, v);
        }
        fb.ret(Some(0u64.into()));
    });

    mb.func(
        "handle",
        &[Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let r = fb.param(0);
            let len = fb.param(1);
            let scratch = fb.param(2);
            let st = fb.global_addr(state);
            let inp = fb.load(Ty::I64, st);
            let bufp = fb.add(st, 8u64);
            let buf = fb.load(Ty::I64, bufp);
            // Per-request APR pool: sized for the claimed length plus headers,
            // freed at request end. Connection scratch rides in the same pool.
            let pool_sz = fb.add(len, scratch);
            let pool_sz = fb.add(pool_sz, 64u64);
            let pool = fb.intr_ptr("malloc", &[pool_sz.into()]);
            // First copy: request bytes into the pool (in bounds — the pool is
            // sized from the claimed length).
            let base = fb.mul(r, 13u64);
            fb.count_loop(0u64, len, |fb, i| {
                let k = fb.add(base, i);
                let k = fb.and(k, (INPUT_BYTES - 1) as u64);
                let src = fb.gep(inp, k, 1, 0);
                let b = fb.load(Ty::I8, src);
                let dst = fb.gep(pool, i, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            // Second copy: pool into the fixed request buffer with the claimed
            // length still trusted — the overflow.
            fb.count_loop(0u64, len, |fb, i| {
                let src = fb.gep(pool, i, 1, 0);
                let b = fb.load(Ty::I8, src);
                let dst = fb.gep(buf, i, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            fb.intr_void("free", &[pool.into()]);
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            fb.count_loop(0u64, 32u64, |fb, i| {
                let a = fb.gep(buf, i, 1, 0);
                let b = fb.load(Ty::I8, a);
                let t = fb.get(acc);
                let s = fb.add(t, b);
                fb.set(acc, s);
            });
            let cp = fb.add(st, STATE_COUNT);
            let c = fb.load(Ty::I64, cp);
            let c2 = fb.add(c, 1u64);
            fb.store(Ty::I64, cp, c2);
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        },
    );
    mb.finish()
}

/// The Heartbleed reproduction (§7): `main` returns 1 when secret bytes
/// leaked into the heartbeat response, 0 when the reply is clean.
pub struct Heartbleed;

/// Actual heartbeat payload bytes.
pub const HB_PAYLOAD: u64 = 16;
/// Attacker-claimed payload length.
pub const HB_CLAIMED: u64 = 1024;

impl Workload for Heartbleed {
    fn name(&self) -> &'static str {
        "heartbleed"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("heartbleed");
        mb.func("main", &[], Some(Ty::I64), |fb| {
            // The heartbeat payload buffer, then (adjacent on the heap) a
            // buffer of private key material.
            let payload = fb.intr_ptr("malloc", &[Operand::Imm(HB_PAYLOAD)]);
            fb.count_loop(0u64, HB_PAYLOAD, |fb, i| {
                let a = fb.gep(payload, i, 1, 0);
                fb.store(Ty::I8, a, 0x41u64); // 'A'.
            });
            let secret = fb.intr_ptr("malloc", &[Operand::Imm(256)]);
            fb.count_loop(0u64, 256u64, |fb, i| {
                let a = fb.gep(secret, i, 1, 0);
                fb.store(Ty::I8, a, 0x53u64); // 'S' = secret material.
            });
            // The bug: an inline copy loop (OpenSSL's compiled memcpy) with
            // the attacker-claimed length. Under boundless memory the
            // out-of-bounds reads return zeroes, so the reply carries no
            // secret — exactly the paper's §7 observation.
            let resp = fb.intr_ptr("malloc", &[Operand::Imm(HB_CLAIMED + 64)]);
            fb.count_loop(0u64, HB_CLAIMED, |fb, i| {
                let src = fb.gep(payload, i, 1, 0);
                let b = fb.load(Ty::I8, src);
                let dst = fb.gep(resp, i, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            // Scan the response for secret bytes.
            let leaked = fb.local(Ty::I64);
            fb.set(leaked, 0u64);
            fb.count_loop(0u64, HB_CLAIMED, |fb, i| {
                let a = fb.gep(resp, i, 1, 0);
                let b = fb.load(Ty::I8, a);
                let is_secret = fb.cmp(CmpOp::Eq, b, 0x53u64);
                fb.if_then(is_secret, |fb| fb.set(leaked, 1u64));
            });
            let v = fb.get(leaked);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, _vm: &mut Vm<'_>, _st: &mut Stager, _p: &Params) -> Vec<u64> {
        vec![]
    }
}
