//! `nginx` analogue: a single-threaded event server with pre-allocated,
//! reused buffers and minimal copying (paper Fig. 13c: the smarter memory
//! policy is why MPX fares better here than on Apache), plus the
//! CVE-2013-2028 chunked-transfer stack overflow (§7).

use crate::util::{emit_tag_input, Params, Suite, Workload};
use rand::RngCore;
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Ty, Vm};
use sgxs_rt::Stager;

/// Served page at paper scale: 200 KB (§7).
const PAPER_PAGE: u64 = 200 << 10;

/// The nginx workload.
#[derive(Default)]
pub struct Nginx {
    /// Client count override: nginx itself stays single-threaded; clients
    /// only set the request volume.
    pub clients_override: Option<u32>,
    /// Requests override.
    pub requests_override: Option<u64>,
}

impl Workload for Nginx {
    fn name(&self) -> &'static str {
        "nginx"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("nginx");
        mb.func("main", &[Ty::Ptr, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let page_len = fb.param(1);
            let nreq = fb.param(2);
            let page = emit_tag_input(fb, raw, page_len);
            // Buffers allocated once at startup, reused per request.
            let hdr_buf = fb.intr_ptr("malloc", &[512u64.into()]);
            let out_buf = fb.intr_ptr("malloc", &[page_len.into()]);
            let sock_buf = fb.intr_ptr("malloc", &[page_len.into()]);
            let served = fb.local(Ty::I64);
            fb.set(served, 0u64);
            fb.count_loop(0u64, nreq, |fb, r| {
                // Parse a small header (reused buffer).
                fb.count_loop(0u64, 32u64, |fb, h| {
                    let a = fb.gep(hdr_buf, h, 8, 0);
                    let v = fb.xor(r, h);
                    fb.store(Ty::I64, a, v);
                });
                // Copy the page twice: into the response buffer, then
                // into the "socket/syscall" buffer (the paper's §7
                // double-copy through SCONE's syscall thread).
                fb.intr_void("memcpy", &[out_buf.into(), page.into(), page_len.into()]);
                fb.intr_void(
                    "memcpy",
                    &[sock_buf.into(), out_buf.into(), page_len.into()],
                );
                let s = fb.get(served);
                let s2 = fb.add(s, 1u64);
                fb.set(served, s2);
            });
            let v = fb.get(served);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let page_len = (PAPER_PAGE / p.scale.max(1)).max(2048);
        let mut page = vec![0u8; page_len as usize];
        p.rng().fill_bytes(&mut page);
        let addr = st.stage(vm, &page);
        let clients = self.clients_override.unwrap_or(p.threads).max(1) as u64;
        let nreq = self.requests_override.unwrap_or(clients * 64);
        vec![addr as u64, page_len, nreq]
    }
}

/// Per-request server module (see [`crate::apps::server`] for the layout
/// contract): nginx flavour — the request buffer and connection scratch are
/// allocated once at setup and reused for every request, single copy from
/// the input into the fixed chunk buffer (the CVE-2013-2028 shape, but
/// driven one `handle` call per request so the resil driver can isolate
/// crashes).
pub fn server_module() -> Module {
    use crate::apps::server::*;
    let mut mb = ModuleBuilder::new("nginx_server");
    let state = mb.global_zeroed("state", STATE_SLOTS * 8);

    mb.func("setup", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
        let raw = fb.param(0);
        let len = fb.param(1);
        let inp = emit_tag_input(fb, raw, len);
        let buf = fb.intr_ptr("malloc", &[(REQ_BUF as u64).into()]);
        let can_a = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        let can_b = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        for can in [can_a, can_b] {
            fb.count_loop(0u64, CANARY_BYTES as u64, |fb, i| {
                let a = fb.gep(can, i, 1, 0);
                fb.store(Ty::I8, a, CANARY_PATTERN as u64);
            });
        }
        let st = fb.global_addr(state);
        for (slot, v) in [(0u32, inp), (8, buf), (16, can_a), (24, can_b)] {
            let a = fb.add(st, slot as u64);
            fb.store(Ty::I64, a, v);
        }
        fb.ret(Some(0u64.into()));
    });

    mb.func(
        "handle",
        &[Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let r = fb.param(0);
            let len = fb.param(1);
            let scratch = fb.param(2);
            let st = fb.global_addr(state);
            let inp = fb.load(Ty::I64, st);
            let bufp = fb.add(st, 8u64);
            let buf = fb.load(Ty::I64, bufp);
            // Connection scratch: fresh per request — the chaos tier's
            // allocator-fault surface.
            let conn = fb.intr_ptr("malloc", &[scratch.into()]);
            fb.store(Ty::I8, conn, 1u64);
            // Parse a small header into a reused stack buffer.
            let hdr = fb.slot("hdr", 64);
            let hp = fb.slot_addr(hdr);
            fb.count_loop(0u64, 8u64, |fb, h| {
                let a = fb.gep(hp, h, 8, 0);
                let v = fb.xor(r, h);
                fb.store(Ty::I64, a, v);
            });
            // The bug: the chunk length is trusted; one copy input -> buffer.
            let base = fb.mul(r, 13u64);
            fb.count_loop(0u64, len, |fb, i| {
                let k = fb.add(base, i);
                let k = fb.and(k, (INPUT_BYTES - 1) as u64);
                let src = fb.gep(inp, k, 1, 0);
                let b = fb.load(Ty::I8, src);
                let dst = fb.gep(buf, i, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            fb.intr_void("free", &[conn.into()]);
            // Digest over the response head + bump the served counter.
            let acc = fb.local(Ty::I64);
            fb.set(acc, 0u64);
            fb.count_loop(0u64, 32u64, |fb, i| {
                let a = fb.gep(buf, i, 1, 0);
                let b = fb.load(Ty::I8, a);
                let t = fb.get(acc);
                let s = fb.add(t, b);
                fb.set(acc, s);
            });
            let cp = fb.add(st, STATE_COUNT);
            let c = fb.load(Ty::I64, cp);
            let c2 = fb.add(c, 1u64);
            fb.store(Ty::I64, cp, c2);
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        },
    );
    mb.finish()
}

/// CVE-2013-2028 reproduction: a chunked-transfer request with a forged
/// huge chunk size drives a copy loop past a fixed stack buffer. `main`
/// returns the number of requests served after the attack (boundless mode
/// drops the request and keeps serving; fail-stop schemes trap).
pub struct NginxCve2013_2028;

/// The fixed stack buffer being overflowed.
pub const STACK_BUF: u64 = 128;
/// Attacker chunk size.
pub const EVIL_LEN: u64 = 4096;

impl Workload for NginxCve2013_2028 {
    fn name(&self) -> &'static str {
        "nginx_cve_2013_2028"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("nginx_cve");

        // handle_chunked(req, len) -> bytes consumed: the vulnerable
        // function with the fixed stack buffer.
        let handler = mb.func("handle_chunked", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
            let req = fb.param(0);
            let len = fb.param(1);
            let buf = fb.slot("chunk_buf", STACK_BUF as u32);
            let bp = fb.slot_addr(buf);
            // The bug: the chunk length is trusted.
            fb.count_loop(0u64, len, |fb, i| {
                let src = fb.gep(req, i, 1, 0);
                let b = fb.load(Ty::I8, src);
                let dst = fb.gep(bp, i, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            fb.ret(Some(len.into()));
        });

        mb.func("main", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let nreq = fb.param(1);
            let req = emit_tag_input(fb, raw, EVIL_LEN);
            let served = fb.local(Ty::I64);
            fb.set(served, 0u64);
            fb.count_loop(0u64, nreq, |fb, r| {
                // The first request is the attack; the rest are benign.
                let evil = fb.cmp(CmpOp::Eq, r, 0u64);
                let len = fb.select(evil, EVIL_LEN, 64u64);
                fb.call(handler, &[req.into(), len.into()]);
                let s = fb.get(served);
                let s2 = fb.add(s, 1u64);
                fb.set(served, s2);
            });
            let v = fb.get(served);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let mut req = vec![0x42u8; EVIL_LEN as usize];
        p.rng().fill_bytes(&mut req[..64]);
        let addr = st.stage(vm, &req);
        vec![addr as u64, 8]
    }
}
