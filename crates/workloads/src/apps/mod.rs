//! Case-study applications (paper §7 and Fig. 1/13) plus the RIPE security
//! benchmark (Table 4).

pub mod apache;
pub mod memcached;
pub mod nginx;
pub mod ripe;
pub mod sqlite;

use crate::util::Workload;

/// The four server/database case studies (RIPE is driven separately by the
/// harness because its output is a detection matrix, not a runtime).
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(sqlite::Sqlite::default()),
        Box::new(memcached::Memcached::default()),
        Box::new(apache::Apache::default()),
        Box::new(nginx::Nginx::default()),
    ]
}
