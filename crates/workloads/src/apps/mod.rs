//! Case-study applications (paper §7 and Fig. 1/13) plus the RIPE security
//! benchmark (Table 4).

pub mod apache;
pub mod memcached;
pub mod nginx;
pub mod ripe;
pub mod sqlite;

use crate::util::Workload;

/// The four server/database case studies (RIPE is driven separately by the
/// harness because its output is a detection matrix, not a runtime).
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(sqlite::Sqlite::default()),
        Box::new(memcached::Memcached::default()),
        Box::new(apache::Apache::default()),
        Box::new(nginx::Nginx::default()),
    ]
}

/// Shared layout of the per-request *server modules* (the resilience tier's
/// request-level crash-isolation drivers in `sgxs-resil`).
///
/// Each server app exposes a `server_module()` with two entries the driver
/// invokes separately — the whole point is that one `vm.run` == one request,
/// so a trap is naturally scoped to the request that caused it:
///
/// * `setup(raw_input, input_len) -> 0` — allocates the long-lived server
///   state: the request buffer under attack plus two *canary* objects
///   allocated immediately after it, filled with [`CANARY_PATTERN`]. Tagged
///   pointers to everything land in the state global ([`mir::GlobalId`]`(0)`)
///   so the host can locate the canaries and check them for cross-object
///   corruption after the run.
/// * `handle(req_index, req_len, scratch_bytes) -> digest` — serves one
///   request: allocates `scratch_bytes` of connection scratch (the chaos
///   tier's allocator-fault surface), then copies `req_len` request bytes
///   into the fixed buffer *trusting the attacker-controlled length* — the
///   CVE-2013-2028/CVE-2011-4971 pattern. A length above the buffer size
///   overflows toward the canaries.
pub mod server {
    /// Fixed per-request buffer every handler copies into.
    pub const REQ_BUF: u32 = 256;
    /// Size of each canary object adjacent to the request buffer.
    pub const CANARY_BYTES: u32 = 128;
    /// Byte pattern the canaries are filled with at setup.
    pub const CANARY_PATTERN: u8 = 0x5A;
    /// Staged input region size (power of two: handlers mask indices).
    pub const INPUT_BYTES: u32 = 4096;
    /// Attack request length: overflows [`REQ_BUF`] far enough to cross the
    /// allocator's size-class rounding (a 256-byte object occupies a
    /// 384-byte chunk) and smash the first canary outright plus the head of
    /// the second.
    pub const EVIL_LEN: u64 = 640;
    /// Largest benign request length (memcached prepends an 8-byte key, so
    /// benign lengths must leave that much slack).
    pub const BENIGN_MAX: u64 = 200;
    /// State-global slot indices (8 bytes each): input, request buffer,
    /// canary A, canary B, requests handled.
    pub const STATE_SLOTS: u32 = 5;
    /// Byte offset of the canary-A slot inside the state global.
    pub const STATE_CANARY_A: u64 = 16;
    /// Byte offset of the canary-B slot inside the state global.
    pub const STATE_CANARY_B: u64 = 24;
    /// Byte offset of the served-request counter inside the state global.
    pub const STATE_COUNT: u64 = 32;
}
