//! RIPE-style security benchmark (paper §6.6, Table 4).
//!
//! RIPE originally fires 850 attack combinations; on the paper's native
//! testbed 46 survive, and inside SCONE/SGX only 16 remain (shellcode
//! attacks die because SGX faults the `int` instruction, leaving
//! code-pointer overwrites). This module generates those **16 viable
//! configurations**: overflow location x target kind x overflow technique.
//!
//! An attack *succeeds* when the program's indirect call lands on the
//! forbidden `shell` function (returns [`SHELL_MAGIC`]); it is *prevented*
//! when the protection scheme traps first.

use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty};

/// Attacks RIPE fires successfully on the paper's native (non-SGX) setup.
pub const NATIVE_VIABLE: usize = 46;
/// Attacks remaining under SCONE/SGX (shellcode filtered by the enclave).
pub const SGX_VIABLE: usize = 16;

/// Value returned by `main` when the attack captured control flow.
pub const SHELL_MAGIC: u64 = 0x5AFE;

/// Size of the vulnerable buffer.
const BUF: u64 = 16;

/// Where the vulnerable buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Stack slot.
    Stack,
    /// Heap allocation.
    Heap,
    /// Zero-initialized global.
    Bss,
    /// Initialized global.
    Data,
}

/// What the overflow overwrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A function pointer in a *separate, adjacent* object — crossing the
    /// object boundary, which bounds checkers see.
    AdjacentFuncPtr,
    /// A function pointer in the *same struct* as the buffer — invisible
    /// to whole-object-granularity schemes (ASan, SGXBounds, MPX without
    /// bounds narrowing).
    InStructFuncPtr,
}

/// How the overflow is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// In-function indexed stores (classic stack smashing) — visible to
    /// MPX because the buffer's bounds are still in registers.
    DirectLocal,
    /// Byte-walk loop in the same function.
    ByteWalkLocal,
    /// Copy loop inside a helper function taking the buffer as a pointer
    /// parameter — MPX loses the bounds at the call boundary.
    HelperFunction,
    /// `memcpy` from an attacker-controlled source — caught only by
    /// checking libc wrappers (SGXBounds, ASan).
    LibcMemcpy,
}

/// One attack configuration.
#[derive(Debug, Clone, Copy)]
pub struct AttackConfig {
    /// Stable id (0..16).
    pub id: usize,
    /// Buffer location.
    pub location: Location,
    /// Overwrite target.
    pub target: Target,
    /// Overflow technique.
    pub technique: Technique,
}

impl AttackConfig {
    /// Human-readable label.
    pub fn label(&self) -> String {
        format!("{:?}/{:?}/{:?}", self.location, self.target, self.technique)
    }
}

/// The 16 SGX-viable configurations: stack attacks use the two local
/// techniques (the classic smashing forms RIPE deploys there); the other
/// locations attack through helpers and libc, as RIPE's heap/BSS/data
/// payload paths do.
pub fn all_attacks() -> Vec<AttackConfig> {
    let mut v = Vec::with_capacity(16);
    let mut id = 0;
    for target in [Target::AdjacentFuncPtr, Target::InStructFuncPtr] {
        for technique in [Technique::DirectLocal, Technique::ByteWalkLocal] {
            v.push(AttackConfig {
                id,
                location: Location::Stack,
                target,
                technique,
            });
            id += 1;
        }
    }
    for location in [Location::Heap, Location::Bss, Location::Data] {
        for target in [Target::AdjacentFuncPtr, Target::InStructFuncPtr] {
            for technique in [Technique::HelperFunction, Technique::LibcMemcpy] {
                v.push(AttackConfig {
                    id,
                    location,
                    target,
                    technique,
                });
                id += 1;
            }
        }
    }
    debug_assert_eq!(v.len(), SGX_VIABLE);
    v
}

/// Builds the attack program for one configuration.
///
/// `main` returns [`SHELL_MAGIC`] when the hijack succeeded, 0 otherwise.
pub fn build_attack(cfg: &AttackConfig) -> Module {
    let mut mb = ModuleBuilder::new(format!("ripe_{}", cfg.id));

    // The benign and forbidden indirect-call targets.
    let benign = mb.func("benign", &[], Some(Ty::I64), |fb| {
        fb.ret(Some(0u64.into()));
    });
    let shell = mb.func("shell", &[], Some(Ty::I64), |fb| {
        fb.ret(Some(Operand::Imm(SHELL_MAGIC)));
    });

    // Helper used by the HelperFunction technique: byte-walks `total`
    // bytes into `dst`, planting `value` in the final 8 — the callee has no
    // idea of dst's bounds (only its pointer), which is where disjoint
    // metadata schemes lose track.
    let helper = mb.func(
        "overflow_helper",
        &[Ty::Ptr, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let dst = fb.param(0);
            let value = fb.param(1);
            let total = fb.param(2);
            fb.count_loop(0u64, total, |fb, i| {
                let a = fb.gep(dst, i, 1, 0);
                let from_end = fb.sub(total, i);
                let in_tail = fb.cmp(CmpOp::ULe, from_end, 8u64);
                let tail_idx = fb.sub(8u64, from_end);
                let shift = fb.mul(tail_idx, 8u64);
                let vb = fb.lshr(value, shift);
                let sb = fb.and(vb, 0xFFu64);
                let fill = fb.select(in_tail, sb, 0x41u64);
                fb.store(Ty::I8, a, fill);
            });
            fb.ret(Some(0u64.into()));
        },
    );

    // Globals for Bss/Data configurations. Layout: buffer first, then the
    // (separate) funcptr holder right after — or one combined struct for
    // the in-struct case.
    let (g_buf, g_fp) = match (cfg.location, cfg.target) {
        (Location::Bss, Target::AdjacentFuncPtr) => {
            let b = mb.global_zeroed("vuln_buf", BUF as u32);
            let f = mb.global_zeroed("func_ptr", 8);
            (Some(b), Some(f))
        }
        (Location::Bss, Target::InStructFuncPtr) => {
            let b = mb.global_zeroed("vuln_struct", (BUF + 8) as u32);
            (Some(b), None)
        }
        (Location::Data, Target::AdjacentFuncPtr) => {
            let b = mb.global("vuln_buf", BUF as u32, &[1, 2, 3, 4]);
            let f = mb.global("func_ptr", 8, &[0; 8]);
            (Some(b), Some(f))
        }
        (Location::Data, Target::InStructFuncPtr) => {
            let b = mb.global("vuln_struct", (BUF + 8) as u32, &[1, 2, 3, 4]);
            (Some(b), None)
        }
        _ => (None, None),
    };

    let cfg = *cfg;
    mb.func("main", &[], Some(Ty::I64), |fb| {
        // Materialize the buffer and the function-pointer cell.
        let (buf, fp_cell) = match (cfg.location, cfg.target) {
            (Location::Stack, Target::AdjacentFuncPtr) => {
                // The funcptr slot is declared FIRST so it lands above the
                // buffer (slots are carved downward), making the upward
                // overflow reach it.
                let fps = fb.slot("func_ptr", 8);
                let bs = fb.slot("vuln_buf", BUF as u32);
                let fp = fb.slot_addr(fps);
                let b = fb.slot_addr(bs);
                (b, fp)
            }
            (Location::Stack, Target::InStructFuncPtr) => {
                let s = fb.slot("vuln_struct", (BUF + 8) as u32);
                let b = fb.slot_addr(s);
                let fp = fb.gep_inbounds(b, 0u64, 1, BUF as i64);
                (b, fp)
            }
            (Location::Heap, Target::AdjacentFuncPtr) => {
                let b = fb.intr_ptr("malloc", &[Operand::Imm(BUF)]);
                let fp = fb.intr_ptr("malloc", &[Operand::Imm(8)]);
                (b, fp)
            }
            (Location::Heap, Target::InStructFuncPtr) => {
                let b = fb.intr_ptr("malloc", &[Operand::Imm(BUF + 8)]);
                let fp = fb.gep_inbounds(b, 0u64, 1, BUF as i64);
                (b, fp)
            }
            (_, Target::AdjacentFuncPtr) => {
                let b = fb.global_addr(g_buf.expect("global configured"));
                let fp = fb.global_addr(g_fp.expect("global configured"));
                (b, fp)
            }
            (_, Target::InStructFuncPtr) => {
                let b = fb.global_addr(g_buf.expect("global configured"));
                let fp = fb.gep_inbounds(b, 0u64, 1, BUF as i64);
                (b, fp)
            }
        };

        // Initialize the function pointer to the benign target.
        let benign_addr = fb.func_addr(benign);
        fb.store(Ty::Ptr, fp_cell, benign_addr);

        // The attacker's goal: write shell's code address over the cell.
        // Distance from the buffer to the cell (attacker knowledge).
        let fp_raw = fb.and(fp_cell, 0xFFFF_FFFFu64);
        let buf_raw = fb.and(buf, 0xFFFF_FFFFu64);
        let delta = fb.sub(fp_raw, buf_raw);
        let total = fb.add(delta, 8u64);
        let shell_addr = fb.func_addr(shell);

        match cfg.technique {
            Technique::DirectLocal => {
                // Contiguous 8-byte stores; the final store plants the
                // shell address.
                let words = fb.udiv(total, 8u64);
                fb.count_loop(0u64, words, |fb, w| {
                    let off = fb.mul(w, 8u64);
                    let a = fb.gep(buf, off, 1, 0);
                    let last = fb.sub(words, 1u64);
                    let is_last = fb.cmp(CmpOp::Eq, w, last);
                    let fill = fb.select(is_last, shell_addr, 0x4141414141414141u64);
                    fb.store(Ty::I64, a, fill);
                });
            }
            Technique::ByteWalkLocal => {
                // Byte-by-byte walk writing the shell address into the
                // final 8 bytes.
                fb.count_loop(0u64, total, |fb, i| {
                    let a = fb.gep(buf, i, 1, 0);
                    let from_end = fb.sub(total, i);
                    let in_tail = fb.cmp(CmpOp::ULe, from_end, 8u64);
                    let tail_idx0 = fb.sub(8u64, from_end);
                    let shift = fb.mul(tail_idx0, 8u64);
                    let sbyte = fb.lshr(shell_addr, shift);
                    let sb = fb.and(sbyte, 0xFFu64);
                    let fill = fb.select(in_tail, sb, 0x41u64);
                    fb.store(Ty::I8, a, fill);
                });
            }
            Technique::HelperFunction => {
                // The whole overflow happens inside the callee, which only
                // receives the buffer pointer.
                fb.call(helper, &[buf.into(), shell_addr.into(), total.into()]);
            }
            Technique::LibcMemcpy => {
                // memcpy from an attacker-built payload on the heap.
                let payload = fb.intr_ptr("malloc", &[total.into()]);
                let words = fb.udiv(total, 8u64);
                fb.count_loop(0u64, words, |fb, w| {
                    let a = fb.gep(payload, w, 8, 0);
                    let last = fb.sub(words, 1u64);
                    let is_last = fb.cmp(CmpOp::Eq, w, last);
                    let fill = fb.select(is_last, shell_addr, 0x4141414141414141u64);
                    fb.store(Ty::I64, a, fill);
                });
                fb.intr_void("memcpy", &[buf.into(), payload.into(), total.into()]);
            }
        }

        // Dispatch through the (possibly clobbered) function pointer.
        let target = fb.load(Ty::Ptr, fp_cell);
        let r = fb.call_indirect(target, &[], Some(Ty::I64)).unwrap();
        fb.intr_void("print_i64", &[r.into()]);
        fb.ret(Some(r.into()));
    });
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_sixteen_configurations() {
        let a = all_attacks();
        assert_eq!(a.len(), SGX_VIABLE);
        let stack = a.iter().filter(|c| c.location == Location::Stack).count();
        assert_eq!(stack, 4);
        let instruct = a
            .iter()
            .filter(|c| c.target == Target::InStructFuncPtr)
            .count();
        assert_eq!(instruct, 8);
    }
}
