//! `memcached` analogue: slab allocation + chained hash table, driven by a
//! memaslap-style get/set mix from concurrent clients (paper Fig. 13a).
//!
//! Items are carved out of megabyte-scale slabs, so SGXBounds adds only 4
//! bytes per *slab* (71.6 -> 71.8 MB in the paper), while the working set
//! itself exceeds the EPC and dominates performance.

use crate::util::{emit_xorshift, fork_join, Params, Suite, Workload};
use sgxs_mir::{CmpOp, Module, ModuleBuilder, Operand, Ty, Vm};
use sgxs_rt::Stager;

/// Paper's memcached working set: 71.6 MB.
const PAPER_XL: u64 = 72 << 20;
/// Hash buckets.
const BUCKETS: u64 = 16384;
/// Item header: [key 8][next 8]; data follows.
const ITEM_HDR: u64 = 16;

/// The memcached workload.
#[derive(Default)]
pub struct Memcached {
    /// Concurrent client threads override (Fig. 13 sweeps this).
    pub clients_override: Option<u32>,
    /// Requests override.
    pub requests_override: Option<u64>,
}

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, p: &Params) -> Module {
        let item_size = 1024 / p.scale.clamp(1, 16) + 64; // Scaled item payload.
        let slab_bytes = (1u64 << 20) / p.scale.max(1); // Scaled 1 MB slabs.
        let mut mb = ModuleBuilder::new("memcached");

        // worker(tid, nt, desc): desc = [table, slab_state, nreq, nkeys].
        // slab_state = [current_slab 8][offset 8][lock 8][item_size 8][slab_bytes 8].
        let worker = mb.func(
            "worker",
            &[Ty::I64, Ty::I64, Ty::Ptr],
            Some(Ty::I64),
            |fb| {
                let tid = fb.param(0);
                let nt = fb.param(1);
                let desc = fb.param(2);
                let table = fb.load(Ty::Ptr, desc);
                let ss_a = fb.gep_inbounds(desc, 0u64, 1, 8);
                let slab = fb.load(Ty::Ptr, ss_a);
                let nr_a = fb.gep_inbounds(desc, 0u64, 1, 16);
                let nreq_total = fb.load(Ty::I64, nr_a);
                let nk_a = fb.gep_inbounds(desc, 0u64, 1, 24);
                let nkeys = fb.load(Ty::I64, nk_a);
                let my_reqs = fb.udiv(nreq_total, nt);
                let isz_a = fb.gep_inbounds(slab, 0u64, 1, 24);
                let item_sz = fb.load(Ty::I64, isz_a);
                let rng = fb.local(Ty::I64);
                let seed0 = fb.mul(tid, 0x9E3779B97F4A7C15u64);
                let seed = fb.add(seed0, 1u64);
                fb.set(rng, seed);
                let hits = fb.local(Ty::I64);
                fb.set(hits, 0u64);
                fb.count_loop(0u64, my_reqs, |fb, _| {
                    let r = emit_xorshift(fb, rng);
                    let key0 = fb.lshr(r, 16u64);
                    let key1 = fb.urem(key0, nkeys);
                    let key = fb.add(key1, 1u64); // Never 0.
                    let kind = fb.and(r, 15u64);
                    let is_set = fb.cmp(CmpOp::ULt, kind, 2u64); // ~12% sets.
                    let h = fb.mul(key, 0x100000001B3u64);
                    let h2 = fb.lshr(h, 24u64);
                    let b = fb.and(h2, BUCKETS - 1);
                    let head = fb.gep(table, b, 8, 0);
                    // All table/slab mutation under the cache lock (memcached
                    // uses a global cache_lock in this era).
                    let lock_a = fb.gep_inbounds(slab, 0u64, 1, 16);
                    fb.intr_void("mutex_lock", &[lock_a.into()]);
                    // Chain lookup.
                    let cur = fb.local(Ty::Ptr);
                    let first = fb.load(Ty::Ptr, head);
                    fb.set(cur, first);
                    let found = fb.local(Ty::Ptr);
                    fb.set(found, 0u64);
                    let walk = fb.block();
                    let test = fb.block();
                    let nextb = fb.block();
                    let hitb = fb.block();
                    let out = fb.block();
                    fb.jmp(walk);
                    fb.switch_to(walk);
                    let c = fb.get(cur);
                    let cp = fb.and(c, 0xFFFF_FFFFu64);
                    let nonnull = fb.cmp(CmpOp::Ne, cp, 0u64);
                    fb.br(nonnull, test, out);
                    fb.switch_to(test);
                    let c = fb.get(cur);
                    let k = fb.load(Ty::I64, c);
                    let eq = fb.cmp(CmpOp::Eq, k, key);
                    fb.br(eq, hitb, nextb);
                    fb.switch_to(nextb);
                    let c = fb.get(cur);
                    let na = fb.gep_inbounds(c, 0u64, 1, 8);
                    let nx = fb.load(Ty::Ptr, na);
                    fb.set(cur, nx);
                    fb.jmp(walk);
                    fb.switch_to(hitb);
                    let c = fb.get(cur);
                    fb.set(found, c);
                    fb.jmp(out);
                    fb.switch_to(out);

                    let f = fb.get(found);
                    let fp = fb.and(f, 0xFFFF_FFFFu64);
                    let have = fb.cmp(CmpOp::Ne, fp, 0u64);
                    fb.if_else(
                        have,
                        |fb| {
                            // GET hit (or SET overwrite): touch the data.
                            let f = fb.get(found);
                            let da = fb.gep_inbounds(f, 0u64, 1, ITEM_HDR as i64);
                            fb.if_else(
                                is_set,
                                |fb| {
                                    // Rewrite payload.
                                    let words = fb.udiv(item_sz, 8u64);
                                    fb.count_loop(0u64, words, |fb, w| {
                                        let a = fb.gep(da, w, 8, 0);
                                        let v = fb.xor(key, w);
                                        fb.store(Ty::I64, a, v);
                                    });
                                },
                                |fb| {
                                    // Read a sample of the payload.
                                    let words = fb.udiv(item_sz, 64u64);
                                    fb.count_loop(0u64, words, |fb, w| {
                                        let a = fb.gep(da, w, 64, 0);
                                        let v = fb.load(Ty::I64, a);
                                        let hh = fb.get(hits);
                                        let masked = fb.and(v, 1u64);
                                        let h2 = fb.add(hh, masked);
                                        fb.set(hits, h2);
                                    });
                                },
                            );
                            let hh = fb.get(hits);
                            let h2 = fb.add(hh, 1u64);
                            fb.set(hits, h2);
                        },
                        |fb| {
                            // Miss: carve a new item from the slab.
                            fb.if_then(is_set, |fb| {
                                let off_a = fb.gep_inbounds(slab, 0u64, 1, 8);
                                let off = fb.load(Ty::I64, off_a);
                                let need = fb.add(item_sz, ITEM_HDR);
                                let sb_a = fb.gep_inbounds(slab, 0u64, 1, 32);
                                let slab_sz = fb.load(Ty::I64, sb_a);
                                let end = fb.add(off, need);
                                let fits = fb.cmp(CmpOp::ULe, end, slab_sz);
                                fb.if_then(fits, |fb| {
                                    let cs_a = fb.load(Ty::Ptr, slab);
                                    let item = fb.gep(cs_a, off, 1, 0);
                                    fb.store(Ty::I64, item, key);
                                    let na = fb.gep_inbounds(item, 0u64, 1, 8);
                                    let old = fb.load(Ty::Ptr, head);
                                    fb.store(Ty::Ptr, na, old);
                                    fb.store(Ty::Ptr, head, item);
                                    let off2 = fb.add(off, need);
                                    let off_a2 = fb.gep_inbounds(slab, 0u64, 1, 8);
                                    fb.store(Ty::I64, off_a2, off2);
                                    // Initialize payload.
                                    let da = fb.gep_inbounds(item, 0u64, 1, ITEM_HDR as i64);
                                    let words = fb.udiv(item_sz, 8u64);
                                    fb.count_loop(0u64, words, |fb, w| {
                                        let a = fb.gep(da, w, 8, 0);
                                        let v = fb.add(key, w);
                                        fb.store(Ty::I64, a, v);
                                    });
                                });
                            });
                        },
                    );
                    let lock_a2 = fb.gep_inbounds(slab, 0u64, 1, 16);
                    fb.intr_void("mutex_unlock", &[lock_a2.into()]);
                });
                let h = fb.get(hits);
                fb.ret(Some(h.into()));
            },
        );

        let slab_bytes_c = slab_bytes;
        let item_size_c = item_size;
        mb.func(
            "main",
            &[Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let nreq = fb.param(0);
                let nkeys = fb.param(1);
                let clients = fb.param(2);
                let nslabs = fb.param(3);
                let table = fb.intr_ptr("calloc", &[Operand::Imm(BUCKETS * 8), 1u64.into()]);
                // Slab state; the slab pointer rotates through pre-allocated
                // slabs as they fill (a simplification of slabclass reuse:
                // we pre-size the cache to its steady state).
                let state = fb.intr_ptr("calloc", &[Operand::Imm(48), 1u64.into()]);
                let first_slab = fb.intr_ptr("malloc", &[Operand::Imm(slab_bytes_c)]);
                fb.store(Ty::Ptr, state, first_slab);
                let isz_a = fb.gep_inbounds(state, 0u64, 1, 24);
                fb.store(Ty::I64, isz_a, item_size_c);
                let sb_a = fb.gep_inbounds(state, 0u64, 1, 32);
                let total = fb.mul(nslabs, slab_bytes_c);
                fb.store(Ty::I64, sb_a, total);
                // Pre-allocate the remaining slabs contiguously (mmap-like
                // growth): model as one big allocation so carving stays
                // in-bounds under every scheme.
                let multi = fb.cmp(CmpOp::UGt, nslabs, 1u64);
                fb.if_then(multi, |fb| {
                    let rest = fb.sub(total, slab_bytes_c);
                    let _more = fb.intr_ptr("malloc", &[rest.into()]);
                    // The first allocation is extended in place in our
                    // simplified slab model: re-point the slab base at a
                    // fresh contiguous region covering `total` bytes.
                    let big = fb.intr_ptr("malloc", &[total.into()]);
                    fb.store(Ty::Ptr, state, big);
                });
                let desc = fb.intr_ptr("malloc", &[Operand::Imm(32)]);
                fb.store(Ty::Ptr, desc, table);
                let d8 = fb.gep_inbounds(desc, 0u64, 1, 8);
                fb.store(Ty::Ptr, d8, state);
                let d16 = fb.gep_inbounds(desc, 0u64, 1, 16);
                fb.store(Ty::I64, d16, nreq);
                let d24 = fb.gep_inbounds(desc, 0u64, 1, 24);
                fb.store(Ty::I64, d24, nkeys);
                fork_join(fb, worker, clients, desc);
                let v = fb.load(Ty::I64, d16);
                fb.intr_void("print_i64", &[v.into()]);
                fb.ret(Some(v.into()));
            },
        );
        mb.finish()
    }

    fn stage(&self, _vm: &mut Vm<'_>, _st: &mut Stager, p: &Params) -> Vec<u64> {
        let item_size = 1024 / p.scale.clamp(1, 16) + 64;
        let slab_bytes = (1u64 << 20) / p.scale.max(1);
        let ws = p.ws_bytes(PAPER_XL);
        let nslabs = (ws / slab_bytes).max(2);
        let nkeys = ws / (item_size + ITEM_HDR) / 2;
        let clients = self.clients_override.unwrap_or(p.threads) as u64;
        let nreq = self
            .requests_override
            .unwrap_or_else(|| (nkeys * 4).max(1024));
        vec![nreq, nkeys.max(16), clients.max(1), nslabs]
    }
}

/// Per-request server module (see [`crate::apps::server`]): memcached
/// flavour — the fixed buffer is a slab *item* holding an 8-byte key
/// followed by the value bytes, and the canaries are the adjacent items in
/// the slab. `handle` is a binary-protocol SET that trusts the
/// attacker-controlled body length (the CVE-2011-4971 shape), so an
/// oversized value runs off the item into its slab neighbours.
pub fn server_module() -> Module {
    use crate::apps::server::*;
    let mut mb = ModuleBuilder::new("memcached_server");
    let state = mb.global_zeroed("state", STATE_SLOTS * 8);

    mb.func("setup", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
        let raw = fb.param(0);
        let len = fb.param(1);
        let inp = crate::util::emit_tag_input(fb, raw, len);
        // Three consecutive slab items: the victim and its two neighbours.
        let item = fb.intr_ptr("malloc", &[(REQ_BUF as u64).into()]);
        let can_a = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        let can_b = fb.intr_ptr("malloc", &[(CANARY_BYTES as u64).into()]);
        for can in [can_a, can_b] {
            fb.count_loop(0u64, CANARY_BYTES as u64, |fb, i| {
                let a = fb.gep(can, i, 1, 0);
                fb.store(Ty::I8, a, CANARY_PATTERN as u64);
            });
        }
        let st = fb.global_addr(state);
        for (slot, v) in [(0u32, inp), (8, item), (16, can_a), (24, can_b)] {
            let a = fb.add(st, slot as u64);
            fb.store(Ty::I64, a, v);
        }
        fb.ret(Some(0u64.into()));
    });

    mb.func(
        "handle",
        &[Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let r = fb.param(0);
            let len = fb.param(1);
            let scratch = fb.param(2);
            let st = fb.global_addr(state);
            let inp = fb.load(Ty::I64, st);
            let itemp = fb.add(st, 8u64);
            let item = fb.load(Ty::I64, itemp);
            // Connection read buffer, fresh per request.
            let conn = fb.intr_ptr("malloc", &[scratch.into()]);
            fb.store(Ty::I8, conn, 1u64);
            // SET: write the 8-byte key, then the value with the trusted body
            // length, after the key.
            let key = fb.mul(r, 0x9E37_79B9u64);
            fb.store(Ty::I64, item, key);
            let base = fb.mul(r, 13u64);
            fb.count_loop(0u64, len, |fb, i| {
                let k = fb.add(base, i);
                let k = fb.and(k, (INPUT_BYTES - 1) as u64);
                let src = fb.gep(inp, k, 1, 0);
                let b = fb.load(Ty::I8, src);
                let off = fb.add(i, 8u64);
                let dst = fb.gep(item, off, 1, 0);
                fb.store(Ty::I8, dst, b);
            });
            fb.intr_void("free", &[conn.into()]);
            // GET it back: digest the key and the value head.
            let acc = fb.local(Ty::I64);
            let k0 = fb.load(Ty::I64, item);
            fb.set(acc, k0);
            fb.count_loop(0u64, 24u64, |fb, i| {
                let off = fb.add(i, 8u64);
                let a = fb.gep(item, off, 1, 0);
                let b = fb.load(Ty::I8, a);
                let t = fb.get(acc);
                let s = fb.add(t, b);
                fb.set(acc, s);
            });
            let cp = fb.add(st, STATE_COUNT);
            let c = fb.load(Ty::I64, cp);
            let c2 = fb.add(c, 1u64);
            fb.store(Ty::I64, cp, c2);
            let v = fb.get(acc);
            fb.ret(Some(v.into()));
        },
    );
    mb.finish()
}

/// CVE-2011-4971 reproduction (§7): a `process_bin_sasl_auth`-style handler
/// trusts an attacker-controlled (effectively negative) body length and
/// copies it into a fixed item buffer.
///
/// `main` returns the number of requests fully served. Fail-stop schemes
/// trap on the first out-of-bounds byte. Under boundless memory the copy's
/// stores are redirected so nothing is corrupted, but — as the paper
/// observed — the program then spins in its retry logic: the run ends with
/// the instruction budget exhausted rather than a crash, reproducing the
/// §7 "infinite loop due to a subsequent bug in the program's logic".
pub struct MemcachedCve2011_4971;

/// Item buffer size.
pub const CVE_ITEM: u64 = 256;
/// Attacker-claimed body length (a casted negative value).
pub const CVE_CLAIMED: u64 = 1 << 22;

impl Workload for MemcachedCve2011_4971 {
    fn name(&self) -> &'static str {
        "memcached_cve_2011_4971"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn build(&self, _p: &Params) -> Module {
        let mut mb = ModuleBuilder::new("memcached_cve");

        // handle(req, len) -> bytes stored (0 on internal failure).
        let handler = mb.func(
            "handle_sasl_auth",
            &[Ty::Ptr, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let req = fb.param(0);
                let len = fb.param(1);
                let item = fb.intr_ptr("malloc", &[Operand::Imm(CVE_ITEM)]);
                // The bug: `len` comes straight off the wire.
                fb.count_loop(0u64, len, |fb, i| {
                    let src = fb.gep(req, i, 1, 0);
                    let b = fb.load(Ty::I8, src);
                    let dst = fb.gep(item, i, 1, 0);
                    fb.store(Ty::I8, dst, b);
                });
                // "Verify" the stored item; under boundless redirection the
                // tail reads back zeroes, the verification fails, and the
                // daemon retries forever — the paper's observed hang.
                let last = fb.sub(len, 1u64);
                let va = fb.gep(item, last, 1, 0);
                let tail = fb.load(Ty::I8, va);
                let ok = fb.cmp(CmpOp::Ne, tail, 0u64);
                let r = fb.select(ok, len, 0u64);
                fb.intr_void("free", &[item.into()]);
                fb.ret(Some(r.into()));
            },
        );

        mb.func("main", &[Ty::Ptr, Ty::I64], Some(Ty::I64), |fb| {
            let raw = fb.param(0);
            let nreq = fb.param(1);
            let req = crate::util::emit_tag_input(fb, raw, CVE_CLAIMED);
            let served = fb.local(Ty::I64);
            fb.set(served, 0u64);
            fb.count_loop(0u64, nreq, |fb, r| {
                let evil = fb.cmp(CmpOp::Eq, r, 0u64);
                let len = fb.select(evil, CVE_CLAIMED, 64u64);
                // Retry loop: keep handling until the handler reports
                // success (the subsequent-logic bug).
                let again = fb.block();
                let done_req = fb.block();
                fb.jmp(again);
                fb.switch_to(again);
                let stored = fb.call(handler, &[req.into(), len.into()]).unwrap();
                let ok = fb.cmp(CmpOp::UGt, stored, 0u64);
                fb.br(ok, done_req, again);
                fb.switch_to(done_req);
                let s = fb.get(served);
                let s2 = fb.add(s, 1u64);
                fb.set(served, s2);
            });
            let v = fb.get(served);
            fb.intr_void("print_i64", &[v.into()]);
            fb.ret(Some(v.into()));
        });
        mb.finish()
    }

    fn stage(&self, vm: &mut Vm<'_>, st: &mut Stager, p: &Params) -> Vec<u64> {
        let mut req = vec![0x42u8; CVE_CLAIMED as usize];
        let mut rng = p.rng();
        use rand::RngCore;
        rng.fill_bytes(&mut req[..64]);
        for b in req.iter_mut().take(64) {
            *b |= 1; // Benign requests must pass the tail check.
        }
        let addr = st.stage(vm, &req);
        vec![addr as u64, 4]
    }
}
